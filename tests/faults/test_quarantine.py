"""Quarantine semantics through evaluator, selector, and tuner.

The chain the paper's §4 requires: a configuration that crashes the
engine is *discarded, not propagated* -- the evaluator marks it failed
while preserving partial progress, the selector excludes it from every
later round, and the tuner degrades to the default configuration when
nothing survives, never raising mid-tune.
"""

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.selector import ConfigurationSelector
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.hardware import HardwareSpec
from repro.db.postgres import PostgresEngine
from repro.errors import (
    ConfigurationRejectedError,
    LLMError,
    LLMTimeoutError,
)
from repro.faults import (
    ENGINE_QUERY_CRASH,
    LLM_TRANSIENT,
    FaultPlan,
    FaultyLLMClient,
)
from repro.llm.client import LLMClient
from repro.llm.mock import SimulatedLLM

#: Chosen (see git history) so the crash lands on the *third* query in
#: plan order: two queries complete before the candidate is quarantined.
PARTIAL_CRASH_PLAN = FaultPlan(seed=6, density=0.2, sites={ENGINE_QUERY_CRASH})


def make_engine(catalog, plan=None):
    engine = PostgresEngine(catalog, HardwareSpec(memory_gb=61.0, cores=8))
    if plan is not None:
        engine.install_faults(plan)
    return engine


def candidate(name="c1", work_mem=64 << 20):
    return Configuration(name=name, settings={"work_mem": work_mem})


class TestEvaluatorQuarantine:
    def test_crash_quarantines_and_preserves_progress(self, tiny_catalog, tiny_workload):
        engine = make_engine(tiny_catalog, PARTIAL_CRASH_PLAN)
        evaluator = ConfigurationEvaluator(engine, cluster_seed=0)
        meta = ConfigMeta()
        evaluator.evaluate(candidate(), list(tiny_workload.queries), 1e9, meta)
        assert meta.failed
        assert not meta.is_complete
        # Partial progress survives the fault (Alg. 2 resumability):
        # the two queries that finished before the crash stay recorded.
        assert meta.completed_queries == {"by_country", "join_all"}
        assert meta.time > 0.0
        # The failure record carries the replay pair.
        assert "engine.query_crash" in meta.failure
        assert "seed=6" in meta.failure

    def test_failure_never_propagates(self, tiny_catalog, tiny_workload):
        engine = make_engine(
            tiny_catalog, FaultPlan(seed=0, density=1.0, sites={ENGINE_QUERY_CRASH})
        )
        evaluator = ConfigurationEvaluator(engine, cluster_seed=0)
        meta = ConfigMeta()
        # Must not raise, whatever the density.
        evaluator.evaluate(candidate(), list(tiny_workload.queries), 1e9, meta)
        assert meta.failed

    def test_quarantined_config_never_reevaluated(self, tiny_catalog, tiny_workload):
        engine = make_engine(tiny_catalog, PARTIAL_CRASH_PLAN)
        evaluator = ConfigurationEvaluator(engine, cluster_seed=0)
        meta = ConfigMeta()
        config = candidate()
        evaluator.evaluate(config, list(tiny_workload.queries), 1e9, meta)
        assert meta.failed
        clock_after_fault = engine.clock.now
        evaluator.evaluate(config, list(tiny_workload.queries), 1e9, meta)
        assert engine.clock.now == clock_after_fault

    def test_indexes_dropped_after_fault(self, tiny_catalog, tiny_workload):
        engine = make_engine(tiny_catalog, PARTIAL_CRASH_PLAN)
        evaluator = ConfigurationEvaluator(engine, cluster_seed=0)
        from repro.db.indexes import Index

        config = Configuration(
            name="c1",
            settings={"work_mem": 64 << 20},
            indexes=[Index("users", ("country",))],
        )
        before = {index.key for index in engine.indexes}
        meta = ConfigMeta()
        evaluator.evaluate(config, list(tiny_workload.queries), 1e9, meta)
        # Whether or not the evaluation faulted, the physical design is
        # restored so other candidates start from a clean slate.
        assert {index.key for index in engine.indexes} == before

    def test_reject_error_is_typed(self):
        meta = ConfigMeta(failed=True, failure="query crashed [site=...]")
        error = meta.reject_error()
        assert isinstance(error, ConfigurationRejectedError)
        assert "query crashed" in str(error)


class TestSelectorQuarantine:
    def _select(self, catalog, workload, plan, configs):
        engine = make_engine(catalog, plan)
        evaluator = ConfigurationEvaluator(engine, cluster_seed=0)
        selector = ConfigurationSelector(
            engine, evaluator, initial_timeout=0.5, alpha=2.0
        )
        return selector.select(list(workload.queries), configs)

    def test_failed_candidate_excluded_best_survives(
        self, tiny_catalog, tiny_workload
    ):
        configs = [candidate("crashy", 64 << 20), candidate("safe", 32 << 20)]
        selection = self._select(
            tiny_catalog, tiny_workload, PARTIAL_CRASH_PLAN, configs
        )
        assert selection.meta["crashy"].failed
        assert not selection.meta["safe"].failed
        assert selection.best.config is not None
        assert selection.best.config.name == "safe"
        assert selection.best.time < float("inf")

    def test_all_candidates_fail_returns_none_not_raise(
        self, tiny_catalog, tiny_workload
    ):
        plan = FaultPlan(seed=0, density=1.0, sites={ENGINE_QUERY_CRASH})
        configs = [candidate("a", 64 << 20), candidate("b", 8 << 20)]
        selection = self._select(tiny_catalog, tiny_workload, plan, configs)
        assert selection.best.config is None
        assert all(meta.failed for meta in selection.meta.values())


class GarbageLLM(LLMClient):
    """Replies with prose only -- nothing parseable."""

    model = "garbage"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        return self._make_response(
            prompt, "I am sorry, I cannot recommend a configuration."
        )


class DeadLLM(LLMClient):
    model = "dead"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        raise LLMTimeoutError("injected: provider never answers")


class TestTunerDegradation:
    OPTIONS = LambdaTuneOptions(
        token_budget=200, initial_timeout=0.5, alpha=2.0, seed=9
    )

    def _tune(self, catalog, workload, llm, plan=None):
        engine = make_engine(catalog, plan)
        llm.sleep = lambda seconds: None
        tuner = LambdaTune(engine, llm, self.OPTIONS)
        return tuner.tune(list(workload.queries)), tuner

    def test_garbage_scripts_fall_back_to_default(self, tiny_catalog, tiny_workload):
        result, tuner = self._tune(tiny_catalog, tiny_workload, GarbageLLM())
        assert result.extras["fallback"] is True
        assert result.best_config.name == "default-config"
        assert result.best_time < float("inf")
        # Every sample was dropped with a typed parse rejection.
        assert len(tuner.last_dropped_samples) == self.OPTIONS.num_configs
        assert all(
            "no valid commands" in reason
            for _, reason in tuner.last_dropped_samples
        )
        assert result.extras["dropped_samples"] == tuner.last_dropped_samples

    def test_every_candidate_crashing_falls_back(self, tiny_catalog, tiny_workload):
        # Density 1.0 on query crashes kills every LLM candidate *and*
        # the default configuration: the tuner must still return the
        # default as the only applicable recommendation, never raise.
        plan = FaultPlan(seed=0, density=1.0, sites={ENGINE_QUERY_CRASH})
        result, _ = self._tune(tiny_catalog, tiny_workload, SimulatedLLM(), plan)
        assert result.extras["fallback"] is True
        assert result.best_config.name == "default-config"
        assert result.best_time == float("inf")
        assert result.extras["failed_configs"]

    def test_unreachable_provider_raises_llm_error(self, tiny_catalog, tiny_workload):
        with pytest.raises(LLMError):
            self._tune(tiny_catalog, tiny_workload, DeadLLM())

    def test_transient_llm_faults_are_invisible_in_the_result(
        self, tiny_catalog, tiny_workload
    ):
        plan = FaultPlan(
            seed=11, density=1.0, sites={LLM_TRANSIENT}, max_transient=2
        )
        flaky = FaultyLLMClient(SimulatedLLM(), plan)
        faulted, tuner = self._tune(tiny_catalog, tiny_workload, flaky)
        clean, _ = self._tune(tiny_catalog, tiny_workload, SimulatedLLM())
        assert not tuner.last_dropped_samples
        assert faulted.best_config.name == clean.best_config.name
        assert repr(faulted.best_time) == repr(clean.best_time)
        assert faulted.extras["fallback"] is False
