"""FaultyLLMClient corruption + the client retry/backoff policy."""

import pytest

from repro.errors import (
    LLMError,
    LLMRateLimitError,
    LLMTimeoutError,
    LLMTransientError,
)
from repro.faults import (
    LLM_MALFORMED,
    LLM_OUT_OF_RANGE,
    LLM_TRANSIENT,
    LLM_TRUNCATE,
    LLM_UNKNOWN_KNOB,
    FaultPlan,
    FaultyLLMClient,
)
from repro.llm import LLMClient, backoff_jitter

SCRIPT = (
    "ALTER SYSTEM SET shared_buffers = '4GB';\n"
    "ALTER SYSTEM SET work_mem = '64MB';\n"
    "CREATE INDEX ON people (country);\n"
)


class StaticLLM(LLMClient):
    """Always returns the same well-formed script."""

    model = "static"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        return self._make_response(prompt, SCRIPT)


class AlwaysTimingOut(LLMClient):
    model = "dead"

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, *, temperature=0.7, seed=0):
        self.calls += 1
        raise LLMTimeoutError("injected: provider never answers")


def _silence(client):
    client.sleep = lambda seconds: None
    return client


class TestTransientFaults:
    def test_raises_then_succeeds(self):
        plan = FaultPlan(seed=7, density=1.0, sites={LLM_TRANSIENT}, max_transient=3)
        client = FaultyLLMClient(StaticLLM(), plan)
        failures = plan.transient_count(LLM_TRANSIENT, "sample-0")
        assert failures >= 1
        for attempt in range(failures):
            expected = LLMTimeoutError if attempt % 2 == 0 else LLMRateLimitError
            with pytest.raises(expected):
                client.complete("prompt", seed=0)
        response = client.complete("prompt", seed=0)
        assert response.text == SCRIPT

    def test_transient_errors_are_retryable_type(self):
        assert issubclass(LLMTimeoutError, LLMTransientError)
        assert issubclass(LLMRateLimitError, LLMTransientError)
        assert issubclass(LLMTransientError, LLMError)

    def test_error_message_carries_replay_label(self):
        plan = FaultPlan(seed=11, density=1.0, sites={LLM_TRANSIENT})
        client = FaultyLLMClient(StaticLLM(), plan)
        with pytest.raises(LLMTransientError, match=r"seed=11.*llm\.transient"):
            client.complete("prompt", seed=4)

    def test_retry_loop_absorbs_injected_transients(self):
        # max_transient=2 keeps failures within the default retry budget.
        plan = FaultPlan(seed=7, density=1.0, sites={LLM_TRANSIENT}, max_transient=2)
        client = _silence(FaultyLLMClient(StaticLLM(), plan))
        response = client.complete_with_retry("prompt", seed=0)
        assert response.text == SCRIPT


class TestRetryPolicy:
    def test_backoff_sleeps_are_deterministic(self):
        client = AlwaysTimingOut()
        recorded = []
        client.sleep = recorded.append
        with pytest.raises(LLMError, match="giving up after 5 attempts"):
            client.complete_with_retry("prompt", seed=3)
        assert client.calls == client.max_retries + 1
        expected = [
            min(client.backoff_cap, client.backoff_base * 2**attempt)
            * backoff_jitter(3, attempt)
            for attempt in range(client.max_retries)
        ]
        assert recorded == expected

    def test_exhaustion_raises_terminal_error_chained(self):
        client = _silence(AlwaysTimingOut())
        with pytest.raises(LLMError) as excinfo:
            client.complete_with_retry("prompt", seed=0)
        assert not isinstance(excinfo.value, LLMTransientError)
        assert isinstance(excinfo.value.__cause__, LLMTimeoutError)

    def test_jitter_bounds_and_determinism(self):
        for seed in range(10):
            for attempt in range(5):
                factor = backoff_jitter(seed, attempt)
                assert 0.5 <= factor < 1.5
                assert factor == backoff_jitter(seed, attempt)

    def test_terminal_error_not_retried(self):
        class Broken(LLMClient):
            def __init__(self):
                self.calls = 0

            def complete(self, prompt, *, temperature=0.7, seed=0):
                self.calls += 1
                raise LLMError("terminal: bad API key")

        client = _silence(Broken())
        with pytest.raises(LLMError, match="bad API key"):
            client.complete_with_retry("prompt")
        assert client.calls == 1


class TestCorruptions:
    def _corrupted(self, site, seed=0):
        plan = FaultPlan(seed=5, density=1.0, sites={site})
        client = FaultyLLMClient(StaticLLM(), plan)
        return client.complete("prompt", seed=seed).text

    def test_corruption_is_deterministic(self):
        for site in (LLM_TRUNCATE, LLM_UNKNOWN_KNOB, LLM_OUT_OF_RANGE, LLM_MALFORMED):
            assert self._corrupted(site) == self._corrupted(site)

    def test_truncate_shortens_script(self):
        text = self._corrupted(LLM_TRUNCATE)
        assert len(text) < len(SCRIPT)
        assert SCRIPT.startswith(text)

    def test_unknown_knob_spliced_in(self):
        assert "quantum_flux_capacity" in self._corrupted(LLM_UNKNOWN_KNOB)

    def test_out_of_range_value_spliced_in(self):
        text = self._corrupted(LLM_OUT_OF_RANGE)
        assert text.count("shared_buffers") == 2

    def test_garble_damages_syntax(self):
        text = self._corrupted(LLM_MALFORMED)
        assert text != SCRIPT

    def test_no_fault_returns_inner_response_unchanged(self):
        plan = FaultPlan(seed=5, density=0.0)
        client = FaultyLLMClient(StaticLLM(), plan)
        assert client.complete("prompt", seed=0).text == SCRIPT

    def test_corruption_varies_with_sampling_seed(self):
        plan = FaultPlan(seed=5, density=0.5, sites={LLM_TRUNCATE})
        client = FaultyLLMClient(StaticLLM(), plan)
        texts = {client.complete("prompt", seed=s).text for s in range(12)}
        assert len(texts) > 1
