"""Chaos suite: randomized fault plans against the full tuning loop.

For ≥20 distinct fault seeds × fault densities × serial/parallel
selection, the tuner must

- always terminate and return an *applicable* configuration,
- never re-run a query already completed for a candidate (Algorithm 2
  resumability, fault or no fault),
- produce byte-identical results in serial and parallel modes under the
  same :class:`FaultPlan`.

Every assertion message embeds ``repr(plan)`` -- the ``(seed, site)``
pair needed to replay a failing case exactly via
``FaultPlan.single_site`` -- so a red test is a reproducible bug report.
"""

import pytest

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.postgres import PostgresEngine
from repro.faults import ENGINE_QUERY_CRASH, FaultPlan, FaultyLLMClient
from repro.llm.mock import SimulatedLLM

#: ≥20 distinct fault seeds (acceptance criterion); density and worker
#: count cycle with the seed so the matrix covers light mishaps through
#: catastrophic storms without a cross-product blow-up.
CHAOS_SEEDS = list(range(24))
DENSITIES = (0.05, 0.15, 0.4)


def chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, density=DENSITIES[seed % len(DENSITIES)])


def fingerprint(result):
    """Bit-exact identity of a TuningResult (floats via repr)."""
    meta = result.extras.get("meta", {})
    return (
        repr(result.best_time),
        result.best_config.name if result.best_config else None,
        tuple(
            (
                name,
                repr(m.time),
                m.is_complete,
                repr(m.index_time),
                m.failed,
                m.failure,
                tuple(sorted(m.completed_queries)),
            )
            for name, m in sorted(meta.items())
        ),
        tuple((repr(p.time), repr(p.best_time)) for p in result.trace),
        result.extras.get("rounds"),
        result.extras.get("fallback"),
        tuple(result.extras.get("failed_configs", ())),
        tuple(result.extras.get("dropped_samples", ())),
    )


def chaos_tune(workload, plan, *, workers=0, executor="thread", llm_faults=True):
    """One full tune with the plan installed engine- and LLM-side."""
    options = LambdaTuneOptions(
        token_budget=400,
        initial_timeout=0.5,
        alpha=2.0,
        seed=9,
        workers=workers,
        executor=executor,
    )
    engine = PostgresEngine(workload.catalog)
    engine.install_faults(plan)
    llm = SimulatedLLM()
    if llm_faults:
        llm = FaultyLLMClient(llm, plan)
        llm.sleep = lambda seconds: None
    tuner = LambdaTune(engine, llm, options)
    return tuner.tune(list(workload.queries))


def assert_applicable(result, plan, workload):
    """The recommended configuration must apply on a healthy engine."""
    config = result.best_config
    assert config is not None, f"no configuration returned; replay: {plan!r}"
    clean = PostgresEngine(workload.catalog)
    config.apply_settings(clean)  # must not raise
    for index in config.indexes:
        index.validate(workload.catalog)


@pytest.fixture()
def no_rerun_guard(monkeypatch):
    """Fail the test if any evaluation re-runs a completed query."""
    original = ConfigurationEvaluator.evaluate

    def checked(self, config, queries, timeout, meta):
        overlap = {query.name for query in queries} & meta.completed_queries
        assert not overlap, (
            f"re-ran completed queries {sorted(overlap)} for {config.name}"
        )
        return original(self, config, queries, timeout, meta)

    monkeypatch.setattr(ConfigurationEvaluator, "evaluate", checked)


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tuner_survives_and_paths_agree(self, tpch, seed, no_rerun_guard):
        plan = chaos_plan(seed)
        workers = 2 if seed % 2 else 4
        serial = chaos_tune(tpch, plan, workers=0)
        assert_applicable(serial, plan, tpch)
        parallel = chaos_tune(tpch, plan, workers=workers, executor="thread")
        assert fingerprint(serial) == fingerprint(parallel), (
            f"serial/parallel divergence (workers={workers}); replay: {plan!r}"
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:6])
    def test_chaos_runs_are_reproducible(self, tpch, seed):
        plan = chaos_plan(seed)
        first = chaos_tune(tpch, plan)
        second = chaos_tune(tpch, plan)
        assert fingerprint(first) == fingerprint(second), (
            f"non-deterministic chaos run; replay: {plan!r}"
        )

    def test_engine_only_storm_on_tiny_workload(self, tiny_workload, no_rerun_guard):
        # High-density engine faults without LLM corruption: the LLM
        # pool is healthy, every candidate crashes, fallback engages.
        plan = FaultPlan(seed=1, density=0.9, sites={ENGINE_QUERY_CRASH})
        result = chaos_tune(tiny_workload, plan, llm_faults=False)
        assert result.best_config is not None, f"replay: {plan!r}"
        assert result.extras["failed_configs"], f"replay: {plan!r}"


class TestForcedCrashAcceptance:
    """The ISSUE's acceptance scenario, pinned to an exact plan.

    ``FaultPlan(seed=0, density=0.02, sites={engine.query_crash})``
    crashes the two candidates that would otherwise win the TPC-H tune;
    the tuner must quarantine them and return the best survivor, with
    identical fingerprints in serial and workers=4 parallel modes.
    """

    PLAN = FaultPlan(seed=0, density=0.02, sites={ENGINE_QUERY_CRASH})

    def test_quarantines_crashed_candidate_returns_best_survivor(self, tpch):
        clean = chaos_tune(tpch, FaultPlan(seed=0, density=0.0), llm_faults=False)
        faulted = chaos_tune(tpch, self.PLAN, llm_faults=False)
        failed = faulted.extras["failed_configs"]
        assert failed, f"expected ≥1 quarantined candidate; replay: {self.PLAN!r}"
        # The no-fault winner is among the crashed candidates, so the
        # tuner had to fall back to the best *surviving* configuration.
        assert clean.best_config.name in failed
        assert faulted.best_config is not None
        assert faulted.best_config.name not in failed
        assert faulted.best_time < float("inf")
        assert faulted.extras["fallback"] is False

    def test_serial_and_parallel_fingerprints_identical(self, tpch):
        serial = chaos_tune(tpch, self.PLAN, llm_faults=False)
        threads = chaos_tune(
            tpch, self.PLAN, workers=4, executor="thread", llm_faults=False
        )
        procs = chaos_tune(
            tpch, self.PLAN, workers=4, executor="process", llm_faults=False
        )
        assert fingerprint(serial) == fingerprint(threads), (
            f"thread divergence; replay: {self.PLAN!r}"
        )
        assert fingerprint(serial) == fingerprint(procs), (
            f"process divergence; replay: {self.PLAN!r}"
        )


class TestReplayability:
    def test_single_site_plan_reproduces_the_same_quarantines(self, tpch):
        # A chaos failure prints (seed, site); rebuilding via
        # single_site must quarantine a superset of the same candidates
        # (density 1.0 only adds faults at the same keys).
        original = FaultPlan(seed=0, density=0.02, sites={ENGINE_QUERY_CRASH})
        replay = FaultPlan.single_site(0, ENGINE_QUERY_CRASH, density=0.02)
        first = chaos_tune(tpch, original, llm_faults=False)
        second = chaos_tune(tpch, replay, llm_faults=False)
        assert fingerprint(first) == fingerprint(second)
