"""FaultPlan determinism, pickling, and replay guarantees."""

import pickle

import pytest

from repro.errors import ReproError
from repro.faults import (
    ALL_SITES,
    ENGINE_QUERY_CRASH,
    LLM_TRUNCATE,
    FaultDecision,
    FaultPlan,
)

KEYS = [f"query:q{i}|{sig:016x}" for i in range(40) for sig in (0, 123456789)]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        one = FaultPlan(seed=13, density=0.3)
        two = FaultPlan(seed=13, density=0.3)
        for site in sorted(ALL_SITES):
            for key in KEYS:
                assert one.fires(site, key) == two.fires(site, key)
                assert one.decide(site, key) == two.decide(site, key)
                assert one.transient_count(site, key) == two.transient_count(
                    site, key
                )

    def test_different_seeds_differ(self):
        one = FaultPlan(seed=1, density=0.5)
        two = FaultPlan(seed=2, density=0.5)
        decisions_one = [one.fires(ENGINE_QUERY_CRASH, key) for key in KEYS]
        decisions_two = [two.fires(ENGINE_QUERY_CRASH, key) for key in KEYS]
        assert decisions_one != decisions_two

    def test_decisions_are_order_independent(self):
        plan = FaultPlan(seed=4, density=0.4)
        forward = [plan.fires(ENGINE_QUERY_CRASH, key) for key in KEYS]
        backward = [
            plan.fires(ENGINE_QUERY_CRASH, key) for key in reversed(KEYS)
        ]
        assert forward == list(reversed(backward))

    def test_density_is_monotone(self):
        # The unit draw per key is fixed; raising the density can only
        # add faults, never move or remove them -- the property that
        # makes a density-1.0 single_site replay a superset.
        low = FaultPlan(seed=9, density=0.1)
        high = FaultPlan(seed=9, density=0.7)
        for key in KEYS:
            if low.fires(ENGINE_QUERY_CRASH, key):
                assert high.fires(ENGINE_QUERY_CRASH, key)


class TestValidation:
    def test_density_bounds(self):
        with pytest.raises(ReproError):
            FaultPlan(seed=0, density=1.5)
        with pytest.raises(ReproError):
            FaultPlan(seed=0, density=-0.1)

    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(seed=0, sites={"engine.made_up"})

    def test_negative_transient_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(seed=0, max_transient=-1)


class TestSites:
    def test_disabled_site_never_fires(self):
        plan = FaultPlan(seed=3, density=1.0, sites={ENGINE_QUERY_CRASH})
        assert all(plan.fires(ENGINE_QUERY_CRASH, key) for key in KEYS)
        assert not any(plan.fires(LLM_TRUNCATE, key) for key in KEYS)
        assert plan.decide(LLM_TRUNCATE, KEYS[0]) is None

    def test_site_density_override(self):
        plan = FaultPlan(
            seed=3, density=0.0, site_density={ENGINE_QUERY_CRASH: 1.0}
        )
        assert all(plan.fires(ENGINE_QUERY_CRASH, key) for key in KEYS)
        assert not any(plan.fires(LLM_TRUNCATE, key) for key in KEYS)


class TestPickle:
    def test_round_trip_equality_and_decisions(self):
        plan = FaultPlan(
            seed=21,
            density=0.25,
            sites={ENGINE_QUERY_CRASH, LLM_TRUNCATE},
            site_density={LLM_TRUNCATE: 0.9},
            max_transient=5,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        for key in KEYS:
            assert clone.decide(ENGINE_QUERY_CRASH, key) == plan.decide(
                ENGINE_QUERY_CRASH, key
            )
            assert clone.transient_count(LLM_TRUNCATE, key) == plan.transient_count(
                LLM_TRUNCATE, key
            )


class TestReplay:
    def test_single_site_reproduces_fired_faults(self):
        original = FaultPlan(seed=17, density=0.3)
        replay = FaultPlan.single_site(17, ENGINE_QUERY_CRASH)
        for key in KEYS:
            decision = original.decide(ENGINE_QUERY_CRASH, key)
            if decision is None:
                continue
            replayed = replay.decide(ENGINE_QUERY_CRASH, key)
            assert replayed == decision

    def test_decision_label_carries_replay_pair(self):
        decision = FaultDecision(
            site=ENGINE_QUERY_CRASH, key="query:q1|00", seed=17, magnitude=0.5
        )
        label = decision.describe()
        assert "seed=17" in label
        assert "engine.query_crash" in label
        assert "query:q1|00" in label


class TestTransientCount:
    def test_bounded_by_max_transient(self):
        plan = FaultPlan(seed=5, density=1.0, max_transient=3)
        counts = {plan.transient_count(ENGINE_QUERY_CRASH, key) for key in KEYS}
        assert counts <= {1, 2, 3}
        assert counts  # density 1.0: every key fires

    def test_zero_when_not_fired(self):
        plan = FaultPlan(seed=5, density=0.0)
        assert all(
            plan.transient_count(ENGINE_QUERY_CRASH, key) == 0 for key in KEYS
        )
