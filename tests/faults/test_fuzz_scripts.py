"""Seeded fuzzing of configuration-script parsing.

Scripts rendered by :mod:`repro.llm.scripts` are deterministically
mutated -- truncated, garbled, spliced with junk -- and fed through
:func:`parse_config_script`.  The contract: parsing either succeeds
(dropping unusable lines into ``rejected``) or raises a *typed* error
(:class:`ConfigurationError` / :class:`KnobError` family) -- never a
bare ``ValueError`` / ``KeyError`` / ``IndexError`` crash.  Every case
is reproducible from the printed seed.
"""

import random

import pytest

from repro.core.config import parse_config_script
from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.postgres import PostgresEngine
from repro.errors import ConfigurationError, ConfigurationRejectedError
from repro.faults import LLM_SITES, FaultPlan, FaultyLLMClient
from repro.llm.mock import SimulatedLLM
from repro.llm.scripts import render_script

FUZZ_SEEDS = list(range(40))

JUNK_LINES = (
    "Here is my recommendation:",
    "ALTER SYSTEM SET  = ;",
    "SET GLOBAL innodb_buffer_pool_size = banana;",
    "CREATE INDEX ON  ()",
    "CREATE INDEX i ON users ()",
    "ALTER SYSTEM SET shared_buffers = '999999999GB';",
    "ALTER SYSTEM SET not_a_knob = 42;",
    "```sql",
    "SET work_mem = -17;",
    "CREATE INDEX ix ON no_such_table (no_such_column);",
)


@pytest.fixture(scope="module")
def engine():
    from repro.db.catalog import Catalog, Column

    catalog = Catalog("fuzz")
    catalog.add_table(
        "users",
        10_000,
        [
            Column("user_id", 4, is_primary_key=True),
            Column("country", 2, 50),
        ],
    )
    return PostgresEngine(catalog, HardwareSpec(memory_gb=61.0, cores=8))


def base_script(rng: random.Random) -> str:
    settings = {
        "shared_buffers": rng.choice([1 << 30, 4 << 30, 16 << 30]),
        "work_mem": rng.choice([4 << 20, 64 << 20, 1 << 30]),
        "effective_io_concurrency": rng.randint(1, 512),
        "checkpoint_completion_target": round(rng.uniform(0.1, 0.9), 2),
    }
    indexes = [Index("users", ("country",))] if rng.random() < 0.5 else []
    return render_script(
        "postgres", settings, indexes, commentary="-- fuzzed configuration"
    )


def mutate(text: str, rng: random.Random) -> str:
    """Apply 1-4 random corruptions, seeded and replayable."""
    for _ in range(rng.randint(1, 4)):
        choice = rng.randrange(7)
        if choice == 0 and text:  # truncate mid-byte
            text = text[: rng.randrange(len(text))]
        elif choice == 1:  # splice junk lines anywhere
            lines = text.split("\n")
            lines.insert(rng.randint(0, len(lines)), rng.choice(JUNK_LINES))
            text = "\n".join(lines)
        elif choice == 2 and text:  # delete a random slice
            start = rng.randrange(len(text))
            text = text[:start] + text[start + rng.randint(1, 20):]
        elif choice == 3:  # garble operators
            text = text.replace("=", rng.choice(["", "~", "= ="]), 1)
        elif choice == 4 and text:  # flip a random character
            pos = rng.randrange(len(text))
            text = text[:pos] + chr(rng.randint(32, 126)) + text[pos + 1:]
        elif choice == 5:  # duplicate a line
            lines = text.split("\n")
            if lines:
                lines.insert(
                    rng.randrange(len(lines) + 1), rng.choice(lines)
                )
            text = "\n".join(lines)
        else:  # prose wrapping (LLM chatter)
            text = f"Sure! Try this:\n```\n{text}\n```\nHope that helps."
    return text


class TestFuzzedParsing:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_only_typed_errors_escape(self, engine, seed):
        rng = random.Random(seed)
        for case in range(5):
            text = mutate(base_script(rng), rng)
            for strict in (False, True):
                try:
                    config = parse_config_script(
                        text,
                        engine.knob_space,
                        engine.catalog,
                        name=f"fuzz-{seed}-{case}",
                        strict=strict,
                    )
                except ConfigurationError:
                    continue  # typed rejection is a valid outcome
                except Exception as error:  # noqa: BLE001 -- the point
                    pytest.fail(
                        f"untyped {type(error).__name__} escaped parsing "
                        f"(seed={seed}, case={case}): {error}\n"
                        f"script:\n{text}"
                    )
                # Whatever survived must be applicable as-is.
                config.apply_settings(engine)
                for index in config.indexes:
                    index.validate(engine.catalog)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:10])
    def test_strict_empty_parse_raises_rejected(self, engine, seed):
        rng = random.Random(1000 + seed)
        prose = " ".join(
            rng.choice(["tune", "your", "database", "carefully", "please"])
            for _ in range(rng.randint(3, 30))
        )
        with pytest.raises(ConfigurationRejectedError):
            parse_config_script(
                prose, engine.knob_space, engine.catalog, strict=True
            )
        # Non-strict parsing of the same prose returns an empty config.
        config = parse_config_script(prose, engine.knob_space, engine.catalog)
        assert config.is_empty

    def test_pure_junk_rejects_every_line(self, engine):
        text = "\n".join(JUNK_LINES)
        config = parse_config_script(text, engine.knob_space, engine.catalog)
        assert not config.settings
        assert not config.indexes
        assert config.rejected  # diagnostics retained


class TestFaultyClientOutput:
    """Corruptions produced by FaultyLLMClient parse without crashes."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:20])
    def test_corrupted_llm_scripts_parse_or_reject(self, engine, seed):
        plan = FaultPlan(seed=seed, density=0.8, sites=LLM_SITES)
        client = FaultyLLMClient(SimulatedLLM(), plan)
        prompt = (
            "Recommend a postgres configuration.\n"
            "memory: 61GB\ncores: 8\n"
            "users.user_id: users.country\n"
        )
        for sample in range(5):
            try:
                response = client.complete(prompt, seed=sample)
            except ConfigurationError:  # pragma: no cover - not expected
                continue
            except Exception as error:
                from repro.errors import LLMError

                assert isinstance(error, LLMError), (
                    f"untyped LLM failure (seed={seed}, sample={sample}): "
                    f"{type(error).__name__}: {error}"
                )
                continue
            try:
                parse_config_script(
                    response.text, engine.knob_space, engine.catalog, strict=True
                )
            except ConfigurationError:
                continue
            except Exception as error:  # noqa: BLE001
                pytest.fail(
                    f"untyped {type(error).__name__} from corrupted script "
                    f"(seed={seed}, sample={sample}): {error}"
                )
