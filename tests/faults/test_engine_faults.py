"""Engine-level fault hooks: crashes, interruptions, I/O storms, OOM.

Every test drives the *public* engine API (``execute``,
``create_index``) with a single-site :class:`FaultPlan` installed and
checks the contract documented in ``repro.faults``: partial work is
charged to the clock, no state mutation survives a fault, every raised
error carries its ``(seed, site, key)`` replay label, and with no plan
installed the hooks are invisible.
"""

import pytest

from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.postgres import PostgresEngine
from repro.errors import EngineFaultError, TransientEngineError
from repro.faults import (
    ENGINE_INDEX_INTERRUPT,
    ENGINE_IO_TRANSIENT,
    ENGINE_OOM,
    ENGINE_QUERY_CRASH,
    FaultPlan,
)

QUERY = "SELECT count(*) FROM users WHERE country = 'US'"


def fresh_engine(tiny_catalog, plan=None):
    engine = PostgresEngine(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))
    if plan is not None:
        engine.install_faults(plan)
    return engine


class TestNoPlan:
    def test_hooks_default_off(self, tiny_catalog):
        engine = fresh_engine(tiny_catalog)
        assert engine.fault_plan is None
        result = engine.execute(QUERY)
        assert result.complete

    def test_install_and_remove(self, tiny_catalog):
        plan = FaultPlan(seed=1, density=1.0, sites={ENGINE_QUERY_CRASH})
        engine = fresh_engine(tiny_catalog, plan)
        assert engine.fault_plan is plan
        engine.install_faults(None)
        assert engine.execute(QUERY).complete

    def test_zero_density_plan_is_inert(self, tiny_catalog):
        baseline = fresh_engine(tiny_catalog).execute(QUERY)
        engine = fresh_engine(tiny_catalog, FaultPlan(seed=1, density=0.0))
        result = engine.execute(QUERY)
        assert result.complete
        assert result.execution_time == baseline.execution_time


class TestQueryCrash:
    PLAN = FaultPlan(seed=8, density=1.0, sites={ENGINE_QUERY_CRASH})

    def test_crash_raises_with_replay_label(self, tiny_catalog):
        engine = fresh_engine(tiny_catalog, self.PLAN)
        with pytest.raises(EngineFaultError) as excinfo:
            engine.execute(QUERY)
        error = excinfo.value
        assert error.site == ENGINE_QUERY_CRASH
        assert error.seed == 8
        assert error.key is not None and error.key.startswith("query:")
        # The replay pair is embedded in the message itself, so a bare
        # traceback is enough to reproduce the fault.
        assert "site='engine.query_crash'" in str(error)
        assert "seed=8" in str(error)

    def test_crash_charges_partial_runtime(self, tiny_catalog):
        full = fresh_engine(tiny_catalog).execute(QUERY).execution_time
        engine = fresh_engine(tiny_catalog, self.PLAN)
        before = engine.clock.now
        with pytest.raises(EngineFaultError):
            engine.execute(QUERY)
        sunk = engine.clock.now - before
        # The crash lands mid-query: some work was done, but less than a
        # complete execution.
        assert 0.0 <= sunk < full

    def test_timeout_shields_the_crash(self, tiny_catalog):
        # If the caller's timeout would fire before the crash point, the
        # caller sees an ordinary incomplete execution -- the serial and
        # speculative paths must agree on which queries even *can* crash.
        engine = fresh_engine(tiny_catalog, self.PLAN)
        probe = fresh_engine(tiny_catalog)
        seconds = probe.execute(QUERY).execution_time
        key = f"query:by_country|{engine.config_signature:016x}"
        sunk = seconds * self.PLAN.magnitude(ENGINE_QUERY_CRASH, key)
        timeout = sunk * 0.5
        result = engine.execute(QUERY, timeout=timeout)
        assert not result.complete
        assert result.execution_time == timeout

    def test_crash_depends_on_configuration(self, tiny_catalog):
        # Keys fold in the config signature: the same query may crash
        # under one candidate and survive under another (paper §4).
        plan = FaultPlan(seed=8, density=0.5, sites={ENGINE_QUERY_CRASH})
        outcomes = set()
        for work_mem in (4 << 20, 8 << 20, 16 << 20, 64 << 20, 256 << 20):
            engine = fresh_engine(tiny_catalog, plan)
            engine.set_many({"work_mem": work_mem})
            try:
                engine.execute(QUERY)
                outcomes.add((work_mem, "ok"))
            except EngineFaultError:
                outcomes.add((work_mem, "crash"))
        assert {kind for _, kind in outcomes} == {"ok", "crash"}

    def test_determinism_across_engines(self, tiny_catalog):
        plan = FaultPlan(seed=4, density=0.5, sites={ENGINE_QUERY_CRASH})

        def run():
            engine = fresh_engine(tiny_catalog, plan)
            log = []
            for name in ("by_country", "join_all", "kind_filter"):
                sql = {
                    "by_country": QUERY,
                    "join_all": "SELECT count(*) FROM users u, events e "
                    "WHERE u.user_id = e.user_id2",
                    "kind_filter": "SELECT count(*) FROM events WHERE kind = 'x'",
                }[name]
                try:
                    log.append(repr(engine.execute(sql).execution_time))
                except EngineFaultError as error:
                    log.append(f"crash:{error.key}")
            return log, repr(engine.clock.now)

        assert run() == run()


class TestIndexInterrupt:
    PLAN = FaultPlan(seed=6, density=1.0, sites={ENGINE_INDEX_INTERRUPT})

    def test_interrupt_leaves_no_index_behind(self, tiny_catalog):
        engine = fresh_engine(tiny_catalog, self.PLAN)
        index = Index("users", ("country",))
        before = engine.clock.now
        with pytest.raises(EngineFaultError) as excinfo:
            engine.create_index(index)
        assert excinfo.value.site == ENGINE_INDEX_INTERRUPT
        assert index.key not in {i.key for i in engine.indexes}
        # The partial build still cost clock time.
        assert engine.clock.now >= before

    def test_interrupted_build_charges_less_than_full(self, tiny_catalog):
        clean = fresh_engine(tiny_catalog)
        full = clean.create_index(Index("users", ("country",)))
        engine = fresh_engine(tiny_catalog, self.PLAN)
        before = engine.clock.now
        with pytest.raises(EngineFaultError):
            engine.create_index(Index("users", ("country",)))
        assert engine.clock.now - before < full


class TestTransientIO:
    def test_retries_inflate_runtime_only(self, tiny_catalog):
        # Within the engine's internal retry budget the query completes;
        # each retry costs io_retry_seconds of extra runtime.
        plan = FaultPlan(
            seed=2, density=1.0, sites={ENGINE_IO_TRANSIENT}, max_transient=2
        )
        baseline = fresh_engine(tiny_catalog).execute(QUERY).execution_time
        engine = fresh_engine(tiny_catalog, plan)
        key = f"query:by_country|{engine.config_signature:016x}"
        retries = plan.transient_count(ENGINE_IO_TRANSIENT, key)
        assert 1 <= retries <= engine.max_io_retries
        result = engine.execute(QUERY)
        assert result.complete
        expected = baseline + retries * engine.io_retry_seconds
        assert result.execution_time == pytest.approx(expected)

    def test_storm_exceeding_budget_raises_transient_error(self, tiny_catalog):
        plan = FaultPlan(
            seed=2, density=1.0, sites={ENGINE_IO_TRANSIENT}, max_transient=12
        )
        engine = fresh_engine(tiny_catalog, plan)
        key = f"query:by_country|{engine.config_signature:016x}"
        assert plan.transient_count(ENGINE_IO_TRANSIENT, key) > engine.max_io_retries
        with pytest.raises(TransientEngineError) as excinfo:
            engine.execute(QUERY)
        assert excinfo.value.site == ENGINE_IO_TRANSIENT
        assert issubclass(TransientEngineError, EngineFaultError)


class TestOOM:
    PLAN = FaultPlan(seed=3, density=1.0, sites={ENGINE_OOM})

    OVERSUBSCRIBED = {
        "shared_buffers": int(61.0 * (1 << 30) * 0.9),
        "work_mem": int(61.0 * (1 << 30) * 0.25),
        "max_parallel_workers_per_gather": 8,
    }

    def test_no_oom_under_sane_memory_settings(self, tiny_catalog):
        engine = fresh_engine(tiny_catalog, self.PLAN)
        assert engine.runtime_env().swap_factor <= engine.oom_swap_threshold
        assert engine.execute(QUERY).complete

    def test_oom_kill_when_memory_oversubscribed(self, tiny_catalog):
        engine = fresh_engine(tiny_catalog, self.PLAN)
        engine.set_many(self.OVERSUBSCRIBED)
        assert engine.runtime_env().swap_factor > engine.oom_swap_threshold
        with pytest.raises(EngineFaultError) as excinfo:
            engine.execute(QUERY)
        assert excinfo.value.site == ENGINE_OOM
        assert "out of memory" in str(excinfo.value)

    def test_oom_site_disabled_is_harmless(self, tiny_catalog):
        plan = FaultPlan(seed=3, density=1.0, sites={ENGINE_INDEX_INTERRUPT})
        engine = fresh_engine(tiny_catalog, plan)
        engine.set_many(self.OVERSUBSCRIBED)
        assert engine.execute(QUERY).complete


class TestForkInheritance:
    def test_fork_copies_the_plan(self, tiny_catalog):
        plan = FaultPlan(seed=5, density=0.3)
        engine = fresh_engine(tiny_catalog, plan)
        fork = engine.fork()
        assert fork.fault_plan is plan
