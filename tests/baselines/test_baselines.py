"""Baseline tuner tests against the tiny workload."""

import math

import pytest

from repro.baselines import (
    DB2Advisor,
    DBBertTuner,
    DexterAdvisor,
    GPTunerTuner,
    LlamaTuneTuner,
    ParamTreeTuner,
    UDOTuner,
)
from repro.baselines.base import measure_configuration, offline_workload_time
from repro.baselines.dexter import candidate_indexes
from repro.db.indexes import Index


BUDGET = 120.0


class TestMeasureConfiguration:
    def test_complete_measurement(self, pg_engine, tiny_workload):
        completed, total = measure_configuration(
            pg_engine, list(tiny_workload.queries), {"work_mem": "64MB"}
        )
        assert completed
        assert total > 0
        assert pg_engine.clock.now >= total  # includes restart time

    def test_trial_timeout_aborts(self, pg_engine, tiny_workload):
        completed, total = measure_configuration(
            pg_engine,
            list(tiny_workload.queries),
            {"shared_buffers": "58GB", "work_mem": "8GB"},
            trial_timeout=0.5,
        )
        assert not completed
        assert math.isinf(total)

    def test_invalid_settings_fail_gracefully(self, pg_engine, tiny_workload):
        completed, total = measure_configuration(
            pg_engine, list(tiny_workload.queries), {"work_mem": "garbage"}
        )
        assert not completed

    def test_trial_indexes_dropped(self, pg_engine, tiny_workload):
        measure_configuration(
            pg_engine,
            list(tiny_workload.queries),
            {},
            [Index("events", ("user_id2",))],
        )
        assert pg_engine.indexes == []

    def test_offline_measure_is_clock_free(self, pg_engine, tiny_workload):
        before_config = pg_engine.config
        time = offline_workload_time(
            pg_engine,
            list(tiny_workload.queries),
            {"work_mem": "1GB"},
            [Index("events", ("user_id2",))],
        )
        assert time > 0
        assert pg_engine.clock.now == 0.0
        assert pg_engine.config == before_config


class TestSearchTuners:
    @pytest.mark.parametrize(
        "tuner_class", [UDOTuner, DBBertTuner, GPTunerTuner, LlamaTuneTuner]
    )
    def test_tuner_produces_valid_result(
        self, tuner_class, pg_engine, tiny_workload
    ):
        tuner = tuner_class(seed=0, trial_timeout=30.0)
        result = tuner.tune(tiny_workload, pg_engine, BUDGET)
        assert result.tuner == tuner.name
        assert result.configs_evaluated > 0
        assert result.tuning_seconds >= BUDGET * 0.5
        assert math.isfinite(result.best_time)
        assert result.best_config is not None

    @pytest.mark.parametrize(
        "tuner_class", [UDOTuner, DBBertTuner, GPTunerTuner, LlamaTuneTuner]
    )
    def test_tuner_deterministic_per_seed(
        self, tuner_class, tiny_catalog, tiny_workload
    ):
        from repro.db.postgres import PostgresEngine

        results = []
        for _ in range(2):
            engine = PostgresEngine(tiny_catalog)
            tuner = tuner_class(seed=3, trial_timeout=30.0)
            results.append(tuner.tune(tiny_workload, engine, 60.0))
        assert results[0].best_time == results[1].best_time
        assert results[0].configs_evaluated == results[1].configs_evaluated

    def test_tuner_improves_over_default(self, pg_engine, tiny_workload):
        default_time = sum(
            pg_engine.estimate_seconds(q) for q in tiny_workload.queries
        )
        tuner = GPTunerTuner(seed=0, trial_timeout=30.0)
        result = tuner.tune(tiny_workload, pg_engine, BUDGET)
        assert result.best_time <= default_time * 1.05

    def test_udo_can_tune_indexes(self, pg_engine, tiny_workload):
        tuner = UDOTuner(seed=1, trial_timeout=30.0, tune_indexes=True)
        result = tuner.tune(tiny_workload, pg_engine, BUDGET)
        assert result.best_config is not None

    def test_udo_index_tuning_can_be_disabled(self, pg_engine, tiny_workload):
        tuner = UDOTuner(seed=1, trial_timeout=30.0, tune_indexes=False)
        result = tuner.tune(tiny_workload, pg_engine, 60.0)
        assert result.best_config.indexes == []

    def test_mysql_supported(self, mysql_engine, tiny_workload):
        tuner = DBBertTuner(seed=0, trial_timeout=60.0)
        result = tuner.tune(tiny_workload, mysql_engine, BUDGET)
        assert math.isfinite(result.best_time)


class TestParamTree:
    def test_single_trial(self, pg_engine, tiny_workload):
        result = ParamTreeTuner(seed=0).tune(tiny_workload, pg_engine, BUDGET)
        assert result.configs_evaluated == 1

    def test_only_optimizer_constants_touched(self, pg_engine, tiny_workload):
        result = ParamTreeTuner(seed=0).tune(tiny_workload, pg_engine, BUDGET)
        allowed = {
            "seq_page_cost", "random_page_cost", "cpu_tuple_cost",
            "cpu_index_tuple_cost", "cpu_operator_cost",
        }
        assert set(result.best_config.settings) <= allowed

    def test_mysql_degenerates_to_default_run(self, mysql_engine, tiny_workload):
        result = ParamTreeTuner(seed=0).tune(tiny_workload, mysql_engine, BUDGET)
        assert result.configs_evaluated == 1
        assert result.best_config.settings == {}


class TestIndexAdvisors:
    def test_candidates_from_predicates(self, tiny_workload):
        candidates = candidate_indexes(tiny_workload)
        names = {index.name for index in candidates}
        assert "idx_events_user_id2" in names
        assert "idx_users_country" in names

    def test_dexter_reduces_cost(self, pg_engine, tiny_workload):
        recommendation = DexterAdvisor().recommend(tiny_workload, pg_engine)
        assert recommendation.final_cost <= recommendation.initial_cost
        assert pg_engine.clock.now == 0.0  # advisory only

    def test_dexter_respects_max_indexes(self, pg_engine, tiny_workload):
        recommendation = DexterAdvisor(max_indexes=1).recommend(
            tiny_workload, pg_engine
        )
        assert len(recommendation.indexes) <= 1

    def test_db2advis_respects_space_budget(self, pg_engine, tiny_workload):
        advisor = DB2Advisor(space_budget_fraction=0.2)
        recommendation = advisor.recommend(tiny_workload, pg_engine)
        total_size = sum(
            index.size_bytes(pg_engine.catalog)
            for index in recommendation.indexes
        )
        assert total_size <= pg_engine.catalog.total_size_bytes * 0.2 + 1

    def test_db2advis_improvement_non_negative(self, pg_engine, tiny_workload):
        recommendation = DB2Advisor().recommend(tiny_workload, pg_engine)
        assert recommendation.improvement >= 0.0

    def test_advisors_on_tpch(self, tpch):
        from repro.db.postgres import PostgresEngine

        engine = PostgresEngine(tpch.catalog)
        dexter = DexterAdvisor().recommend(tpch, engine)
        assert dexter.improvement > 0.2  # indexes matter on TPC-H
        assert all(
            engine.catalog.has_table(index.table) for index in dexter.indexes
        )
