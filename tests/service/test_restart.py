"""Crash-restart chaos suite: kill the server anywhere, lose nothing.

The acceptance bar (ISSUE 8): for ≥8 seeds, a server killed at *any*
injected checkpoint -- every journal durability boundary, which
includes mid-round ``update_folded`` events -- and restarted over the
same root must

- finish every job with a result byte-identical to an uninterrupted
  run (fingerprints compare floats via ``repr``), and
- never re-execute a query its journal already recorded as completed
  (``no_rerun_guard`` enforces this for whole sweeps).

Checkpoints are injected two ways: *offline* truncation of the journal
to every prefix (the same technique the session suite proved out, here
driven through full server recovery), and *live* kills raised from the
server's ``crash_probe`` at a chosen append ordinal, leaving abandoned
lease files behind exactly as ``kill -9`` would.

Also here: journal-directory hygiene (torn tails resumed, zero-event
husks restarted fresh) and the double-resume protections
(:class:`~repro.session.JournalLease`).
"""

from __future__ import annotations

import json
import shutil
import time

import pytest

from repro.errors import JournalLockedError, ServerKilledError
from repro.faults import FaultPlan
from repro.service import JobClient
from repro.session import JournalLease
from repro.session.discover import register_owner, retire_owner
from tests.service.conftest import (
    fingerprint,
    job_options,
    make_server,
    reference_result,
)

SEEDS = list(range(8))


def served_once(root, workload, options, *, fault_plan=None, workers=1):
    """One uninterrupted run through a server; (job_id, result)."""
    with make_server(
        root, workers=workers, workload_resolver={workload.name: workload}
    ) as server:
        job_id = JobClient(server).submit(
            workload, options=options, fault_plan=fault_plan
        )
        result = server.result(job_id, timeout=120.0)
    return job_id, result


def crash_root(base, full_root, job_id, journal_text, tag):
    """A service root left behind by a crash: spec + partial journal."""
    root = base / f"crash-{tag}"
    (root / "jobs").mkdir(parents=True)
    (root / "journals").mkdir(parents=True)
    shutil.copy(
        full_root / "jobs" / f"{job_id}.job", root / "jobs" / f"{job_id}.job"
    )
    (root / "journals" / f"{job_id}.journal").write_text(journal_text)
    return root


def recover(root, workload, job_id, *, expect_resumed=True):
    """Restart a server over ``root``; return the job's result."""
    with make_server(
        root, workload_resolver={workload.name: workload}
    ) as server:
        result = server.result(job_id, timeout=120.0)
        status = server.status(job_id)
    assert status["resumed"] == expect_resumed, (
        "recovery misclassified the journal"
    )
    return result


def restart_sweep(tmp_path, workload, *, seed, workers, executor, plan=None):
    """Crash the service at every journal boundary; recover; compare."""
    options = job_options(seed, workers=workers, executor=executor)
    reference = reference_result(workload, options=options, fault_plan=plan)

    full_root = tmp_path / "full"
    job_id, served = served_once(full_root, workload, options, fault_plan=plan)
    assert fingerprint(served) == fingerprint(reference), (
        f"service layer changed the result (seed={seed}, executor={executor})"
    )

    journal = full_root / "journals" / f"{job_id}.journal"
    lines = journal.read_text().splitlines(keepends=True)
    assert len(lines) >= 8, "journal suspiciously short for a full tune"
    kinds = [json.loads(line)["kind"] for line in lines]
    for boundary in range(1, len(lines) + 1):
        root = crash_root(
            tmp_path, full_root, job_id, "".join(lines[:boundary]), boundary
        )
        # The final boundary is the intact journal: recovery must hand
        # back the recorded result without re-driving the job.
        resumed = recover(
            root, workload, job_id, expect_resumed=boundary < len(lines)
        )
        assert fingerprint(resumed) == fingerprint(reference), (
            f"restart diverged at boundary {boundary}/{len(lines)} "
            f"(after {kinds[boundary - 1]!r}; seed={seed}, "
            f"workers={workers}, executor={executor}, plan={plan!r})"
        )


class TestRestartSweep:
    """Offline crash at every boundary, every seed -- the acceptance bar."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_executor(self, tiny_workload, tmp_path, seed, no_rerun_guard):
        restart_sweep(
            tmp_path, tiny_workload, seed=seed, workers=0, executor="serial"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SEEDS)
    def test_thread_executor(self, tiny_workload, tmp_path, seed, no_rerun_guard):
        restart_sweep(
            tmp_path,
            tiny_workload,
            seed=seed,
            workers=2 + seed % 3,
            executor="thread",
        )

    def test_thread_executor_smoke(self, tiny_workload, tmp_path, no_rerun_guard):
        # Tier-1 keeps one threaded sweep; the full 8-seed set is `slow`.
        restart_sweep(
            tmp_path, tiny_workload, seed=3, workers=3, executor="thread"
        )


class TestChaosRestartSweep:
    """The same sweep with a PR-3 fault plan riding in the job spec."""

    @pytest.mark.parametrize(
        "seed,density,executor",
        [(0, 0.15, "serial"), (2, 0.4, "serial"), (5, 0.15, "thread")],
    )
    def test_restart_under_faults(
        self, tiny_workload, tmp_path, seed, density, executor, no_rerun_guard
    ):
        plan = FaultPlan(seed=seed, density=density)
        restart_sweep(
            tmp_path,
            tiny_workload,
            seed=seed,
            workers=0 if executor == "serial" else 3,
            executor=executor,
            plan=plan,
        )

    def test_fault_plan_rides_the_spec(self, tiny_workload, tmp_path):
        # The plan reaches a recovered job from the journal header, via
        # a spec file round-trip -- no in-memory state involved.
        plan = FaultPlan(seed=2, density=0.4)
        options = job_options(2)
        reference = reference_result(
            tiny_workload, options=options, fault_plan=plan
        )
        assert (
            reference.extras["failed_configs"]
            or reference.extras["dropped_samples"]
        ), "plan injected no faults; chaos sweep is vacuous"
        full_root = tmp_path / "full"
        job_id, _ = served_once(
            full_root, tiny_workload, options, fault_plan=plan
        )
        journal = full_root / "journals" / f"{job_id}.journal"
        lines = journal.read_text().splitlines(keepends=True)
        root = crash_root(
            tmp_path, full_root, job_id, "".join(lines[: len(lines) // 2]), "f"
        )
        resumed = recover(root, tiny_workload, job_id)
        assert fingerprint(resumed) == fingerprint(reference)


def wait_for_workers(server, timeout=30.0):
    deadline = time.monotonic() + timeout
    while any(thread.is_alive() for thread in server._threads):
        assert time.monotonic() < deadline, "worker did not die"
        time.sleep(0.005)


class TestLiveKill:
    """In-flight ``kill -9`` via the crash probe, then restart."""

    @pytest.mark.parametrize("kill_at", [1, 3, 7, 15])
    def test_kill_midflight_then_recover(
        self, service_root, tiny_workload, kill_at, no_rerun_guard
    ):
        options = job_options(6)
        reference = reference_result(tiny_workload, options=options)

        def probe(job_id, appends):
            if appends >= kill_at:
                raise ServerKilledError(f"chaos kill at append {appends}")

        server = make_server(service_root, crash_probe=probe)
        server.start()
        job_id = JobClient(server).submit(tiny_workload, options=options)
        wait_for_workers(server)  # the probe killed the worker
        server.kill()
        assert server.killed
        # kill -9 semantics: the dead server still believes the job is
        # running, and its lease file is abandoned on disk.
        assert server.status(job_id)["state"] == "running"
        lock = service_root / "journals" / f"{job_id}.journal.lock"
        assert lock.exists(), "kill must abandon the lease, not release it"

        # kill_at=1 dies before the first append: zero durable events,
        # so recovery restarts the job fresh rather than resuming it.
        result = recover(
            service_root, tiny_workload, job_id, expect_resumed=kill_at > 1
        )
        assert fingerprint(result) == fingerprint(reference)
        assert not lock.exists(), "recovery should break the stale lease"

    def test_finished_jobs_survive_a_kill_untouched(
        self, service_root, tiny_workload
    ):
        # Jobs 1+2 complete; job 3 dies mid-flight.  After restart, the
        # finished journals must be byte-untouched (recovered as done,
        # not re-driven) and the third resumed to the right answer.
        options = [job_options(seed) for seed in (0, 1, 2)]
        references = [
            reference_result(tiny_workload, options=opts) for opts in options
        ]
        victim = {}

        def probe(job_id, appends):
            if job_id == victim.get("id") and appends >= 5:
                raise ServerKilledError("chaos")

        server = make_server(service_root, crash_probe=probe)
        server.start()
        client = JobClient(server)
        first = client.submit(tiny_workload, options=options[0])
        second = client.submit(tiny_workload, options=options[1])
        client.result(first, timeout=120.0)
        client.result(second, timeout=120.0)
        victim["id"] = client.submit(tiny_workload, options=options[2])
        wait_for_workers(server)
        server.kill()

        journals = service_root / "journals"
        before = {
            job_id: (journals / f"{job_id}.journal").read_bytes()
            for job_id in (first, second)
        }
        with make_server(
            service_root, workload_resolver={"tiny": tiny_workload}
        ) as restarted:
            results = [
                restarted.result(job_id, timeout=120.0)
                for job_id in (first, second, victim["id"])
            ]
            assert not restarted.status(first)["resumed"]
            assert restarted.status(victim["id"])["resumed"]
        for job_id, expected in zip((first, second), before.items()):
            assert (journals / f"{job_id}.journal").read_bytes() == expected[1]
        for result, reference in zip(results, references):
            assert fingerprint(result) == fingerprint(reference)


class TestJournalHygiene:
    def test_torn_tail_resumed_not_skipped(
        self, tmp_path, tiny_workload, no_rerun_guard
    ):
        options = job_options(4)
        reference = reference_result(tiny_workload, options=options)
        full_root = tmp_path / "full"
        job_id, _ = served_once(full_root, tiny_workload, options)
        lines = (
            (full_root / "journals" / f"{job_id}.journal")
            .read_text()
            .splitlines(keepends=True)
        )
        torn = "".join(lines[:9]) + lines[9][: len(lines[9]) // 2]
        root = crash_root(tmp_path, full_root, job_id, torn, "torn")
        resumed = recover(root, tiny_workload, job_id)
        assert fingerprint(resumed) == fingerprint(reference)

    def test_zero_event_husk_restarted_fresh(self, tmp_path, tiny_workload):
        # A journal holding only a torn partial line has no intact
        # header: recovery must discard it and run from scratch, not
        # fail or append garbage after garbage.
        options = job_options(5)
        reference = reference_result(tiny_workload, options=options)
        full_root = tmp_path / "full"
        job_id, _ = served_once(full_root, tiny_workload, options)
        first = (
            (full_root / "journals" / f"{job_id}.journal")
            .read_text()
            .splitlines(keepends=True)[0]
        )
        root = crash_root(
            tmp_path, full_root, job_id, first[: len(first) // 2], "husk"
        )
        with make_server(
            root, workload_resolver={"tiny": tiny_workload}
        ) as server:
            result = server.result(job_id, timeout=120.0)
            assert not server.status(job_id)["resumed"]
        assert fingerprint(result) == fingerprint(reference)


class TestDoubleResumeProtection:
    def test_lease_is_exclusive_in_process(self, tmp_path):
        register_owner("srv-a")
        register_owner("srv-b")
        try:
            journal = tmp_path / "j.journal"
            lease = JournalLease.acquire(journal, owner_token="srv-a")
            # A second worker -- same or different server object -- must
            # not adopt the journal while the lease is held.
            with pytest.raises(JournalLockedError):
                JournalLease.acquire(journal, owner_token="srv-a")
            with pytest.raises(JournalLockedError):
                JournalLease.acquire(journal, owner_token="srv-b")
            lease.release()
            JournalLease.acquire(journal, owner_token="srv-b").release()
        finally:
            retire_owner("srv-a")
            retire_owner("srv-b")

    def test_abandoned_lease_breakable_only_after_owner_dies(self, tmp_path):
        register_owner("srv-dead")
        journal = tmp_path / "j.journal"
        lease = JournalLease.acquire(journal, owner_token="srv-dead")
        lease.abandon()  # kill -9: file survives, in-process hold dropped
        assert (tmp_path / "j.journal.lock").exists()
        # Owner still registered as live: the lock is NOT stale.
        with pytest.raises(JournalLockedError):
            JournalLease.acquire(journal, owner_token="srv-new")
        retire_owner("srv-dead")  # the process dies
        register_owner("srv-new")
        try:
            taken = JournalLease.acquire(journal, owner_token="srv-new")
            taken.release()
        finally:
            retire_owner("srv-new")

    def test_unreadable_lock_is_stale(self, tmp_path):
        journal = tmp_path / "j.journal"
        (tmp_path / "j.journal.lock").write_text("{torn garba")
        register_owner("srv")
        try:
            JournalLease.acquire(journal, owner_token="srv").release()
        finally:
            retire_owner("srv")

    def test_server_refuses_journal_leased_elsewhere(
        self, tmp_path, tiny_workload
    ):
        # Root holds an incomplete job whose journal a *live* foreign
        # owner has leased: the server must fail the job, not resume it
        # behind the other owner's back.  Once the owner dies, a fresh
        # server resumes it normally.
        options = job_options(7)
        reference = reference_result(tiny_workload, options=options)
        full_root = tmp_path / "full"
        job_id, _ = served_once(full_root, tiny_workload, options)
        lines = (
            (full_root / "journals" / f"{job_id}.journal")
            .read_text()
            .splitlines(keepends=True)
        )
        root = crash_root(
            tmp_path, full_root, job_id, "".join(lines[:8]), "leased"
        )
        register_owner("foreign")
        foreign = JournalLease.acquire(
            root / "journals" / f"{job_id}.journal", owner_token="foreign"
        )
        try:
            with make_server(
                root, workload_resolver={"tiny": tiny_workload}
            ) as server:
                server.wait_all(timeout=120.0)
                status = server.status(job_id)
            assert status["state"] == "failed"
            assert "leased" in status["error"]
        finally:
            foreign.abandon()
            retire_owner("foreign")
        result = recover(root, tiny_workload, job_id)
        assert fingerprint(result) == fingerprint(reference)
