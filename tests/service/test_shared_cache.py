"""Shared-cache stress: many tenants, one artifact cache, zero drift.

All tenants of a server share one installed
:class:`~repro.cache.ArtifactCache`.  The cache is bit-transparent
(PR 5), so this must hold under any interleaving:

- N tenants tuning overlapping workloads concurrently produce results
  byte-identical to isolated, cache-less runs;
- artifacts computed for one tenant are served to other tenants -- from
  memory within a server's lifetime, from disk across server restarts
  (the cross-tenant disk-hit test);
- a poisoned disk tier (every entry corrupted) is detected entry by
  entry under concurrent access, recomputed, and never changes a
  result.
"""

from __future__ import annotations

import pytest

from repro.service import JobClient
from tests.service.conftest import (
    fingerprint,
    job_options,
    make_server,
    reference_result,
)

TENANTS = ["acme", "globex", "initech", "umbrella"]


def overlapping_jobs():
    """(tenant, seed) pairs where seeds repeat across tenants, so the
    tenants' workloads overlap completely at the artifact level."""
    return [(tenant, seed) for seed in (0, 1) for tenant in TENANTS]


class TestSharedCache:
    def test_concurrent_tenants_identical_to_isolated(
        self, service_root, tiny_workload, tmp_path
    ):
        pairs = overlapping_jobs()
        references = {
            seed: reference_result(tiny_workload, options=job_options(seed))
            for seed in {seed for _, seed in pairs}
        }
        with make_server(
            service_root, workers=4, cache_dir=tmp_path / "cache"
        ) as server:
            client = JobClient(server)
            jobs = [
                (
                    client.submit(
                        tiny_workload, tenant=tenant, options=job_options(seed)
                    ),
                    seed,
                )
                for tenant, seed in pairs
            ]
            for job_id, seed in jobs:
                result = client.result(job_id, timeout=120.0)
                assert fingerprint(result) == fingerprint(references[seed]), (
                    f"shared cache perturbed job {job_id} (seed {seed})"
                )
            stats = server.cache_stats()
        # 4 tenants ran each seed: at least 3 of 4 runs per artifact
        # were served from the shared cache.
        assert stats["memory_hits"] + stats["disk_hits"] > 0, (
            "workloads never overlapped in the cache -- stress is vacuous"
        )

    def test_cross_tenant_disk_hits_across_restart(
        self, service_root, tiny_workload, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        options = job_options(2)
        reference = reference_result(tiny_workload, options=options)

        with make_server(
            service_root / "a", cache_dir=cache_dir
        ) as first_life:
            job_id = JobClient(first_life).submit(
                tiny_workload, tenant="acme", options=options
            )
            first_life.result(job_id, timeout=120.0)
            assert first_life.tenant_cache_stats("acme")["stores"] > 0

        # A new server = a cold memory tier: the only way tenant
        # "globex" can hit is via the disk artifacts "acme" left behind.
        with make_server(
            service_root / "b", cache_dir=cache_dir
        ) as second_life:
            job_id = JobClient(second_life).submit(
                tiny_workload, tenant="globex", options=options
            )
            result = second_life.result(job_id, timeout=120.0)
            crossed = second_life.tenant_cache_stats("globex")
        assert fingerprint(result) == fingerprint(reference)
        assert crossed["disk_hits"] > 0, (
            "no cross-tenant disk hits recorded across the restart"
        )

    def test_every_entry_poisoned_under_concurrent_access(
        self, service_root, tiny_workload, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        seeds = [0, 1, 2]
        references = {
            seed: reference_result(tiny_workload, options=job_options(seed))
            for seed in seeds
        }

        # Populate the disk tier.
        with make_server(
            service_root / "warm", workers=2, cache_dir=cache_dir
        ) as warm:
            client = JobClient(warm)
            for seed in seeds:
                client.submit(
                    tiny_workload, tenant=f"t{seed}", options=job_options(seed)
                )
            assert warm.wait_all(timeout=120.0)

        entries = sorted(cache_dir.rglob("*.bin"))
        assert entries, "cache stored nothing -- poisoning pass is vacuous"
        for path in entries:
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))

        # Rerun the same artifact keys concurrently over the poisoned
        # tier: every entry must be detected, recomputed, and no result
        # may move.
        with make_server(
            service_root / "poisoned", workers=3, cache_dir=cache_dir
        ) as poisoned:
            client = JobClient(poisoned)
            jobs = [
                (
                    client.submit(
                        tiny_workload,
                        tenant=f"p{seed}",
                        options=job_options(seed),
                    ),
                    seed,
                )
                for seed in seeds
            ]
            for job_id, seed in jobs:
                result = client.result(job_id, timeout=120.0)
                assert fingerprint(result) == fingerprint(references[seed]), (
                    f"poisoned cache leaked into job {job_id}"
                )
            stats = poisoned.cache_stats()
        assert stats["poisoned"] >= len(entries), (
            f"only {stats['poisoned']} of {len(entries)} poisoned entries "
            f"were detected"
        )

    @pytest.mark.slow
    def test_big_concurrent_overlap_matrix(
        self, service_root, tiny_workload, tmp_path
    ):
        # The heavyweight variant: every tenant runs every seed, three
        # times the tenants, under maximum worker parallelism.
        seeds = list(range(4))
        references = {
            seed: reference_result(tiny_workload, options=job_options(seed))
            for seed in seeds
        }
        with make_server(
            service_root, workers=6, cache_dir=tmp_path / "cache"
        ) as server:
            client = JobClient(server)
            jobs = [
                (
                    client.submit(
                        tiny_workload,
                        tenant=f"tenant-{index}",
                        options=job_options(seed),
                    ),
                    seed,
                )
                for index in range(3 * len(TENANTS))
                for seed in seeds
            ]
            for job_id, seed in jobs:
                result = client.result(job_id, timeout=300.0)
                assert fingerprint(result) == fingerprint(references[seed])
