"""Service-layer basics: discovery, durable specs, server API, CLI.

The restart/chaos, quota, and shared-cache guarantees have their own
suites (``test_restart.py``, ``test_quotas.py``,
``test_shared_cache.py``); this one pins the plumbing they stand on.
"""

from __future__ import annotations

import json

import pytest

from repro.db.resources import parse_budget
from repro.errors import ServiceError, UnknownJobError
from repro.faults import FaultPlan
from repro.service import JobClient, JobSpec, ServiceRoot
from repro.service.cli import main as cli_main
from repro.session.discover import (
    discover_journals,
    inspect_journal,
    read_result,
)
from tests.service.conftest import (
    fingerprint,
    job_options,
    make_server,
    reference_result,
)
from tests.session.conftest import journaled_tune


class TestDiscovery:
    def test_missing_directory_is_empty(self, tmp_path):
        assert discover_journals(tmp_path / "nope") == []

    def test_complete_journal_classified_done(self, tiny_workload, tmp_path):
        path = tmp_path / "job-0000.journal"
        result = journaled_tune(tiny_workload, path)
        info = inspect_journal(path)
        assert info.name == "job-0000"
        assert info.complete and not info.torn_tail and not info.resumable
        assert fingerprint(read_result(path)) == fingerprint(result)

    def test_incomplete_journal_is_resumable(self, tiny_workload, tmp_path):
        path = tmp_path / "job.journal"
        journaled_tune(tiny_workload, path)
        lines = path.read_text().splitlines(keepends=True)
        cut = tmp_path / "cut.journal"
        cut.write_text("".join(lines[:5]))
        info = inspect_journal(cut)
        assert info.events == 5
        assert info.resumable and not info.complete and not info.torn_tail
        assert read_result(cut) is None

    def test_torn_tail_detected_and_still_resumable(
        self, tiny_workload, tmp_path
    ):
        path = tmp_path / "job.journal"
        journaled_tune(tiny_workload, path)
        lines = path.read_text().splitlines(keepends=True)
        torn = tmp_path / "torn.journal"
        torn.write_text("".join(lines[:5]) + lines[5][: len(lines[5]) // 2])
        info = inspect_journal(torn)
        assert info.torn_tail and info.resumable
        assert info.events == 5  # the torn line is not an event

    def test_discovery_sorts_and_classifies_a_directory(
        self, tiny_workload, tmp_path
    ):
        journaled_tune(tiny_workload, tmp_path / "b.journal")
        lines = (tmp_path / "b.journal").read_text().splitlines(keepends=True)
        (tmp_path / "a.journal").write_text("".join(lines[:4]))
        infos = discover_journals(tmp_path)
        assert [info.name for info in infos] == ["a", "b"]
        assert [info.complete for info in infos] == [False, True]


class TestServiceRoot:
    def test_spec_round_trips_exactly(self, service_root):
        root = ServiceRoot(service_root)
        spec = JobSpec(
            job_id="job-0000",
            workload="synthetic:queries=12,scale=2",
            tenant="acme",
            priority=7,
            options=job_options(3),
            fault_plan=FaultPlan(seed=5, density=0.25),
            realtime_factor=0.125,
        )
        root.write_spec(spec)
        loaded = root.read_spec("job-0000")
        assert loaded == spec

    def test_duplicate_id_rejected(self, service_root):
        root = ServiceRoot(service_root)
        spec = JobSpec(job_id="job-0000", workload="tpch-sf1")
        root.write_spec(spec)
        with pytest.raises(ServiceError):
            root.write_spec(spec)

    def test_unknown_job_raises(self, service_root):
        root = ServiceRoot(service_root)
        with pytest.raises(UnknownJobError):
            root.read_spec("job-9999")
        with pytest.raises(UnknownJobError):
            root.mark_cancelled("job-9999")

    def test_job_ids_allocate_in_order(self, service_root):
        root = ServiceRoot(service_root)
        first = root.allocate_job_id()
        root.write_spec(JobSpec(job_id=first, workload="tpch-sf1"))
        second = root.allocate_job_id()
        assert [first, second] == ["job-0000", "job-0001"]
        root.write_spec(JobSpec(job_id=second, workload="tpch-sf1"))
        assert root.job_ids() == ["job-0000", "job-0001"]


class TestServerBasics:
    def test_submitted_job_matches_unserviced_reference(
        self, service_root, tiny_workload
    ):
        options = job_options(4)
        reference = reference_result(tiny_workload, options=options)
        with make_server(service_root) as server:
            client = JobClient(server)
            job_id = client.submit(tiny_workload, options=options)
            result = client.result(job_id, timeout=60.0)
        assert fingerprint(result) == fingerprint(reference)
        status = server.status(job_id)
        assert status["state"] == "done" and status["error"] is None

    def test_workload_object_persisted_as_named_reference(
        self, service_root, tiny_workload
    ):
        with make_server(service_root) as server:
            job_id = JobClient(server).submit(
                tiny_workload, options=job_options(1)
            )
            server.wait_all(timeout=60.0)
        assert server.root.read_spec(job_id).workload == "@tiny"

    def test_duplicate_submission_rejected(self, service_root, tiny_workload):
        with make_server(service_root) as server:
            client = JobClient(server)
            client.submit(tiny_workload, options=job_options(1), job_id="j")
            with pytest.raises(ServiceError):
                client.submit(tiny_workload, options=job_options(1), job_id="j")
            server.wait_all(timeout=60.0)

    def test_unresolvable_workload_fails_cleanly(self, service_root):
        with make_server(service_root) as server:
            client = JobClient(server)
            job_id = client.submit("@ghost", options=job_options(1))
            server.wait_all(timeout=60.0)
            assert server.status(job_id)["state"] == "failed"
            with pytest.raises(ServiceError, match="failed"):
                client.result(job_id)
        # The failure left no lock behind; the journal slot is clean.
        assert not server.root.journal_path(job_id).exists()

    def test_worker_survives_job_failure(self, service_root, tiny_workload):
        # A failed job must not take its worker thread down with it.
        options = job_options(2)
        reference = reference_result(tiny_workload, options=options)
        with make_server(service_root) as server:
            client = JobClient(server)
            client.submit("@ghost", options=job_options(1))
            ok = client.submit(tiny_workload, options=options)
            result = client.result(ok, timeout=60.0)
        assert fingerprint(result) == fingerprint(reference)

    def test_unknown_job_everywhere(self, service_root):
        with make_server(service_root) as server:
            for call in (server.status, server.result, server.cancel):
                with pytest.raises(UnknownJobError):
                    call("job-9999")

    def test_submissions_refused_when_not_running(
        self, service_root, tiny_workload
    ):
        server = make_server(service_root)
        spec = JobSpec(job_id="job-0000", workload=tiny_workload)
        with pytest.raises(ServiceError):
            server.submit(spec)  # never started
        server.start()
        server.stop()
        with pytest.raises(ServiceError):
            server.submit(spec)  # already stopped

    def test_jobs_listing_filters_by_tenant(self, service_root, tiny_workload):
        with make_server(service_root) as server:
            client = JobClient(server)
            client.submit(tiny_workload, tenant="a", options=job_options(1))
            client.submit(tiny_workload, tenant="b", options=job_options(2))
            server.wait_all(timeout=60.0)
            assert len(client.jobs()) == 2
            (only,) = client.jobs(tenant="b")
            assert only["tenant"] == "b"


class TestBudgetJobs:
    """Budget-constrained tuning through the whole service stack."""

    def test_budget_job_matches_unserviced_reference(
        self, service_root, tiny_workload
    ):
        options = job_options(budget=parse_budget("ram=32GB"))
        reference = reference_result(tiny_workload, options=options)
        assert reference.extras["failed_configs"], (
            "budget quarantined nothing; scenario is vacuous"
        )
        with make_server(service_root) as server:
            client = JobClient(server)
            job_id = client.submit(tiny_workload, options=options)
            result = client.result(job_id, timeout=60.0)
        assert fingerprint(result) == fingerprint(reference)
        assert result.extras["feasible"] is True
        assert all(
            "infeasible under budget" in m.failure
            for m in result.extras["meta"].values()
            if m.failed
        )

    def test_columnar_budget_job(self, service_root, tiny_workload):
        options = job_options(
            3, budget=parse_budget("ram=60GB,disk=200GB")
        )
        reference = reference_result(
            tiny_workload, options=options, system="columnar"
        )
        with make_server(service_root) as server:
            client = JobClient(server)
            job_id = client.submit(
                tiny_workload, options=options, system="columnar"
            )
            result = client.result(job_id, timeout=60.0)
        assert fingerprint(result) == fingerprint(reference)
        assert result.system == "columnar"


class TestCLI:
    WORKLOAD = "synthetic:queries=8,scale=2"

    def submit(self, root, *extra):
        return cli_main(
            ["--root", str(root), "submit", "--workload", self.WORKLOAD,
             "--token-budget", "400", "--timeout", "0.5", "--alpha", "2.0",
             "--num-configs", "3", *extra]
        )

    def test_full_offline_lifecycle(self, service_root, capsys):
        assert self.submit(service_root, "--tenant", "acme") == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id == "job-0000"

        assert cli_main(["--root", str(service_root), "list"]) == 0
        assert "queued" in capsys.readouterr().out

        # No result before any server ran.
        assert cli_main(["--root", str(service_root), "result", job_id]) == 1
        capsys.readouterr()

        assert cli_main(
            ["--root", str(service_root), "run", "--workers", "1"]
        ) == 0
        assert "done" in capsys.readouterr().out

        assert cli_main(["--root", str(service_root), "status", job_id]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done" and status["tenant"] == "acme"

        assert cli_main(["--root", str(service_root), "result", job_id]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["job_id"] == job_id
        assert float(result["best_time"]) > 0

    def test_offline_cancel_honoured_by_next_run(self, service_root, capsys):
        self.submit(service_root)
        job_id = capsys.readouterr().out.strip()
        assert cli_main(["--root", str(service_root), "cancel", job_id]) == 0
        capsys.readouterr()
        assert cli_main(
            ["--root", str(service_root), "run", "--workers", "1"]
        ) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_unknown_job_exits_2(self, service_root, capsys):
        (service_root / "jobs").mkdir(parents=True)
        assert cli_main(
            ["--root", str(service_root), "status", "job-9999"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_budget_and_engine_flags(self, service_root, capsys):
        assert self.submit(
            service_root,
            "--engine", "columnar",
            "--budget", "ram=60GB,disk=200GB",
        ) == 0
        job_id = capsys.readouterr().out.strip()

        assert cli_main(["--root", str(service_root), "status", job_id]) == 0
        assert json.loads(capsys.readouterr().out)["system"] == "columnar"

        assert cli_main(
            ["--root", str(service_root), "run", "--workers", "1"]
        ) == 0
        capsys.readouterr()
        assert cli_main(["--root", str(service_root), "result", job_id]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["system"] == "columnar"
        assert result["budget"] == "ram=60GB,disk=200GB"
        assert result["feasible"] is True
        assert result["cheapest_tier"]

    def test_unknown_engine_rejected_at_submit(self, service_root, capsys):
        assert self.submit(service_root, "--engine", "oracle") == 2
        assert "unknown system 'oracle'" in capsys.readouterr().err

    def test_malformed_budget_rejected_at_submit(self, service_root, capsys):
        assert self.submit(service_root, "--budget", "cpu=4") == 2
        assert "error:" in capsys.readouterr().err

    def test_run_reports_resumed_jobs(self, service_root, capsys):
        # Interrupt a run by truncating its journal, then re-run.
        self.submit(service_root)
        job_id = capsys.readouterr().out.strip()
        assert cli_main(
            ["--root", str(service_root), "run", "--workers", "1"]
        ) == 0
        capsys.readouterr()
        journal = service_root / "journals" / f"{job_id}.journal"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]))
        assert cli_main(
            ["--root", str(service_root), "run", "--workers", "1"]
        ) == 0
        assert "[resumed]" in capsys.readouterr().out
