"""The server's ``executor="process"`` path (PR 10).

Process-served jobs must be byte-identical to thread-served jobs and
to the bare ``run_job`` reference -- with and without a fault plan --
and the crash-restart machinery must span executors: a journal torn by
a thread-mode crash resumes bit-exactly on a process-mode server, and
a process worker killed mid-flight by the chaos probe leaves a journal
the next server recovers.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServerKilledError
from repro.faults import FaultPlan
from repro.service import JobClient, TuningServer
from repro.service.jobs import JobSpec, ServiceRoot
from tests.service.conftest import (
    fingerprint,
    job_options,
    make_server,
    reference_result,
)
from tests.service.test_restart import wait_for_workers

SEEDS = list(range(8))


def _serve_all(root, workload, options_list, *, executor, fault_plan=None):
    with make_server(
        root,
        workers=2,
        executor=executor,
        workload_resolver={workload.name: workload},
    ) as server:
        client = JobClient(server)
        job_ids = [
            client.submit(workload, options=options, fault_plan=fault_plan)
            for options in options_list
        ]
        return [
            fingerprint(server.result(job_id, timeout=300.0))
            for job_id in job_ids
        ]


class TestProcessServedIdentity:
    def test_eight_seeds_match_thread_and_reference(
        self, tiny_workload, tmp_path
    ):
        options = [job_options(seed) for seed in SEEDS]
        references = [
            fingerprint(reference_result(tiny_workload, options=opts))
            for opts in options
        ]
        served_process = _serve_all(
            tmp_path / "process", tiny_workload, options, executor="process"
        )
        served_thread = _serve_all(
            tmp_path / "thread", tiny_workload, options, executor="thread"
        )
        assert served_process == references
        assert served_thread == references

    def test_fault_plan_rides_into_the_worker_process(
        self, tiny_workload, tmp_path
    ):
        plan = FaultPlan(seed=2, density=0.4)
        options = [job_options(2)]
        reference = fingerprint(
            reference_result(tiny_workload, options=options[0], fault_plan=plan)
        )
        served = _serve_all(
            tmp_path / "chaos",
            tiny_workload,
            options,
            executor="process",
            fault_plan=plan,
        )
        assert served == [reference]

    def test_shared_cache_dir_is_transparent(self, tiny_workload, tmp_path):
        options = [job_options(seed) for seed in (0, 1)]
        references = [
            fingerprint(reference_result(tiny_workload, options=opts))
            for opts in options
        ]
        with make_server(
            tmp_path / "svc",
            workers=2,
            executor="process",
            cache_dir=tmp_path / "cache",
            workload_resolver={"tiny": tiny_workload},
        ) as server:
            client = JobClient(server)
            job_ids = [
                client.submit(tiny_workload, options=opts) for opts in options
            ]
            served = [
                fingerprint(server.result(job_id, timeout=300.0))
                for job_id in job_ids
            ]
        assert served == references


class TestProcessCancellation:
    def test_live_cancel_crosses_via_durable_marker(
        self, tiny_workload, tmp_path
    ):
        """The child polls the on-disk cancel marker, not parent memory.

        The job runs with realtime engine waits so it is reliably still
        in flight when ``cancel`` lands; the parent writes the marker
        file, and the worker *process* unwinds at its next journal
        append, leaving a resumable journal behind.
        """
        import time

        with make_server(
            tmp_path / "svc",
            executor="process",
            workload_resolver={"tiny": tiny_workload},
        ) as server:
            job_id = server.submit(
                JobSpec(
                    job_id=server.allocate_job_id(),
                    workload=tiny_workload,
                    tenant="t",
                    options=job_options(0),
                    realtime_factor=0.05,
                )
            )
            deadline = time.monotonic() + 60.0
            while server.status(job_id)["state"] == "queued":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            server.cancel(job_id)
            assert server.wait_all(timeout=120.0)
            assert server.status(job_id)["state"] == "cancelled"
            journal = tmp_path / "svc" / "journals" / f"{job_id}.journal"
            assert journal.exists(), "cancel should leave a resumable journal"

    def test_pre_cancelled_spec_never_runs(self, tiny_workload, tmp_path):
        """Recovery classifies marker-without-journal as cancelled."""
        from repro.service.jobs import durable_spec

        root = ServiceRoot(tmp_path / "svc")
        root.ensure()
        spec = JobSpec(
            job_id=root.allocate_job_id(),
            workload="tiny",
            tenant="t",
            options=job_options(0),
        )
        root.write_spec(durable_spec(spec))
        root.mark_cancelled(spec.job_id)
        with make_server(
            tmp_path / "svc",
            executor="process",
            workload_resolver={"tiny": tiny_workload},
        ) as server:
            assert server.wait_all(timeout=120.0)
            assert server.status(spec.job_id)["state"] == "cancelled"


def _chaos_kill_at_five(job_id, appends):
    """Module-level (hence picklable) crash probe for process workers."""
    if appends >= 5:
        raise ServerKilledError(f"chaos kill at append {appends}")


class TestProcessCrashRestart:
    def test_thread_crash_resumes_on_process_server(
        self, tiny_workload, tmp_path, no_rerun_guard
    ):
        """Cross-executor recovery: torn by threads, finished by processes."""
        options = job_options(6)
        reference = reference_result(tiny_workload, options=options)

        def probe(job_id, appends):
            if appends >= 5:
                raise ServerKilledError("chaos")

        server = make_server(tmp_path / "svc", crash_probe=probe)
        server.start()
        job_id = JobClient(server).submit(tiny_workload, options=options)
        wait_for_workers(server)
        server.kill()

        with make_server(
            tmp_path / "svc",
            executor="process",
            workload_resolver={"tiny": tiny_workload},
        ) as restarted:
            result = restarted.result(job_id, timeout=300.0)
            assert restarted.status(job_id)["resumed"]
        assert fingerprint(result) == fingerprint(reference)

    def test_process_crash_resumes_on_process_server(
        self, tiny_workload, tmp_path, no_rerun_guard
    ):
        """The probe fires *inside* the worker process; the abandoned
        journal resumes bit-exactly on a fresh process-mode server."""
        options = job_options(6)
        reference = reference_result(tiny_workload, options=options)

        server = make_server(
            tmp_path / "svc",
            executor="process",
            crash_probe=_chaos_kill_at_five,
            workload_resolver={"tiny": tiny_workload},
        )
        server.start()
        job_id = JobClient(server).submit(tiny_workload, options=options)
        wait_for_workers(server)
        server.kill()
        assert server.status(job_id)["state"] == "running"
        lock = tmp_path / "svc" / "journals" / f"{job_id}.journal.lock"
        assert lock.exists(), "kill must abandon the lease, not release it"

        with make_server(
            tmp_path / "svc",
            executor="process",
            workload_resolver={"tiny": tiny_workload},
        ) as restarted:
            result = restarted.result(job_id, timeout=300.0)
            assert restarted.status(job_id)["resumed"]
        assert fingerprint(result) == fingerprint(reference)


class TestValidation:
    def test_unknown_executor_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown service executor"):
            TuningServer(tmp_path / "svc", executor="fiber")
