"""Shared helpers for the tuning-service suite.

The service tests lean on the session suite's bit-exactness machinery:
``fingerprint`` (TuningResult identity with floats via ``repr``),
``FAST_OPTIONS`` (small fast tuning runs), and the ``no_rerun_guard``
fixture (fails the test if any evaluation re-runs a completed query).
"""

from __future__ import annotations

import pytest

from repro.cache import active_cache, install_cache
from repro.core.batch import BatchJob, run_job
from repro.core.tuner import LambdaTuneOptions
from repro.service import TuningServer
from tests.session.conftest import (  # noqa: F401  (no_rerun_guard is a fixture)
    FAST_OPTIONS,
    fingerprint,
    no_rerun_guard,
)


def job_options(
    seed: int = 9, *, workers: int = 0, executor: str = "process", **overrides
) -> LambdaTuneOptions:
    """The session suite's fast options, re-seeded for one service job."""
    return FAST_OPTIONS.ablated(
        seed=seed, workers=workers, executor=executor, **overrides
    )


def reference_result(workload, *, options, system="postgres", fault_plan=None):
    """The ground-truth result: the exact build path the server uses,
    minus the service layer (no journal, no queue, no cache)."""
    return run_job(
        BatchJob(
            workload=workload,
            system=system,
            options=options,
            fault_plan=fault_plan,
        )
    )


def make_server(root, **kwargs):
    """A :class:`TuningServer` wired for tests: 1 worker, no cache,
    unless overridden."""
    kwargs.setdefault("workers", 1)
    return TuningServer(root, **kwargs)


@pytest.fixture()
def service_root(tmp_path):
    return tmp_path / "svc"


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    """Service tests control cache installation explicitly."""
    previous = active_cache()
    install_cache(None)
    yield
    install_cache(previous)
