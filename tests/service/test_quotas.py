"""Scheduling policy: priorities, aging, per-tenant quotas, cancellation.

The deterministic guarantees live at the :class:`JobQueue` level (no
threads, no timing): dispatch order, the aging starvation bound, and
admission caps.  The server-level tests then show the same properties
holding under real bursty concurrent execution -- including the
invariant that a tenant's ``max_concurrent`` is never exceeded at any
journal append anywhere in the system.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    UnknownJobError,
)
from repro.service import (
    JobClient,
    JobQueue,
    JobRecord,
    JobSpec,
    TenantQuota,
)
from repro.session.discover import inspect_journal
from tests.service.conftest import (
    fingerprint,
    job_options,
    make_server,
    reference_result,
)


def record(job_id, *, tenant="default", priority=0, token_budget=400):
    return JobRecord(
        spec=JobSpec(
            job_id=job_id,
            workload="tpch-sf1",
            tenant=tenant,
            priority=priority,
            options=job_options(0).ablated(token_budget=token_budget),
        )
    )


class TestQueueOrdering:
    def test_highest_priority_first_fifo_ties(self):
        queue = JobQueue(aging=0)
        for job_id, priority in [("a", 1), ("b", 5), ("c", 5), ("d", 3)]:
            queue.submit(record(job_id, priority=priority))
        order = [queue.acquire(timeout=0).job_id for _ in range(4)]
        assert order == ["b", "c", "d", "a"]

    def test_aging_bounds_the_wait_of_a_low_priority_job(self):
        # With aging=1 a priority-0 job overtakes a stream of fresh
        # priority-10 jobs after at most 10 dispatches -- the
        # starvation-freedom bound (p_max - p) / aging.
        queue = JobQueue(aging=1)
        queue.submit(record("low", priority=0))
        dispatched = []
        for burst in range(25):
            queue.submit(record(f"high-{burst}", priority=10))
            dispatched.append(queue.acquire(timeout=0).job_id)
            if dispatched[-1] == "low":
                break
        assert "low" in dispatched, "low-priority job starved"
        assert len(dispatched) <= 11, (
            f"aging bound violated: waited {len(dispatched)} dispatches"
        )

    def test_without_aging_high_priority_always_wins(self):
        # aging=0 is strict priority: the documented starvation mode.
        queue = JobQueue(aging=0)
        queue.submit(record("low", priority=0))
        for burst in range(12):
            queue.submit(record(f"high-{burst}", priority=10))
            assert queue.acquire(timeout=0).job_id != "low"

    def test_negative_aging_rejected(self):
        with pytest.raises(ConfigurationError):
            JobQueue(aging=-1)

    def test_snapshot_orders_by_effective_priority(self):
        queue = JobQueue(aging=1)
        queue.submit(record("a", priority=0))
        queue.submit(record("b", priority=2))
        rows = queue.snapshot()
        assert [row[0] for row in rows] == ["b", "a"]


class TestQueueQuotas:
    def test_max_concurrent_gates_dispatch(self):
        queue = JobQueue(quotas={"t": TenantQuota(max_concurrent=1)})
        queue.submit(record("a", tenant="t"))
        queue.submit(record("b", tenant="t"))
        queue.submit(record("other", tenant="u", priority=-5))
        first = queue.acquire(timeout=0)
        assert first.job_id == "a"
        # Tenant t is at its cap: the queue skips b and hands out the
        # lower-priority other-tenant job instead of blocking.
        assert queue.acquire(timeout=0).job_id == "other"
        assert queue.acquire(timeout=0) is None
        queue.release(first)
        assert queue.acquire(timeout=0).job_id == "b"

    def test_max_pending_caps_admission(self):
        queue = JobQueue(quotas={"t": TenantQuota(max_pending=2)})
        queue.submit(record("a", tenant="t"))
        queue.submit(record("b", tenant="t"))
        with pytest.raises(QuotaExceededError):
            queue.submit(record("c", tenant="t"))
        # Running jobs still count; only release frees the slot.
        running = queue.acquire(timeout=0)
        with pytest.raises(QuotaExceededError):
            queue.submit(record("c", tenant="t"))
        queue.release(running)
        queue.submit(record("c", tenant="t"))

    def test_token_budget_ceiling(self):
        queue = JobQueue(quotas={"t": TenantQuota(max_token_budget=500)})
        queue.submit(record("ok", tenant="t", token_budget=400))
        with pytest.raises(QuotaExceededError):
            queue.submit(record("big", tenant="t", token_budget=501))
        with pytest.raises(QuotaExceededError):
            # An unbudgeted job cannot pass a finite ceiling.
            queue.submit(record("inf", tenant="t", token_budget=None))

    def test_recovery_readmission_bypasses_admission_caps(self):
        queue = JobQueue(quotas={"t": TenantQuota(max_pending=1)})
        queue.submit(record("a", tenant="t"))
        recovered = record("b", tenant="t")
        queue.submit(recovered, enforce_quota=False)
        assert queue.pending_count("t") == 2

    def test_cancel_releases_admission_quota(self):
        queue = JobQueue(quotas={"t": TenantQuota(max_pending=1)})
        queue.submit(record("a", tenant="t"))
        queue.cancel("a")
        queue.submit(record("b", tenant="t"))
        with pytest.raises(UnknownJobError):
            queue.cancel("a")

    def test_closed_queue_refuses_submissions_and_drains(self):
        queue = JobQueue()
        queue.submit(record("a"))
        queue.close()
        with pytest.raises(QuotaExceededError):
            queue.submit(record("b"))
        assert queue.acquire(timeout=0).job_id == "a"
        assert queue.acquire(timeout=0) is None


class TestServerQuotas:
    def test_max_concurrent_never_exceeded_under_burst(
        self, service_root, tiny_workload
    ):
        # 4 workers, tenant cap 2, 6 bursty submissions: sample the
        # tenant's running count at every journal append of every job
        # and assert the cap held at each of those moments.
        cap = 2
        samples = []
        server = make_server(
            service_root,
            workers=4,
            quotas={"acme": TenantQuota(max_concurrent=cap)},
            crash_probe=lambda job_id, appends: samples.append(
                server._queue.running_count("acme")
            ),
        )
        with server:
            client = JobClient(server)
            jobs = [
                client.submit(
                    tiny_workload, tenant="acme", options=job_options(seed)
                )
                for seed in range(6)
            ]
            for job_id in jobs:
                client.result(job_id, timeout=120.0)
        assert samples, "no appends sampled -- burst test is vacuous"
        assert max(samples) <= cap, (
            f"tenant exceeded max_concurrent: saw {max(samples)} running"
        )

    def test_concurrent_results_identical_to_isolated(
        self, service_root, tiny_workload
    ):
        # The quota scheduler must not perturb results: bursty
        # multi-worker execution stays bit-identical per job.
        options = [job_options(seed) for seed in range(4)]
        references = [
            reference_result(tiny_workload, options=opts) for opts in options
        ]
        with make_server(service_root, workers=3) as server:
            client = JobClient(server)
            jobs = [
                client.submit(
                    tiny_workload, tenant=f"t{i % 2}", options=options[i]
                )
                for i in range(4)
            ]
            results = [client.result(job_id, timeout=120.0) for job_id in jobs]
        for result, reference in zip(results, references):
            assert fingerprint(result) == fingerprint(reference)

    def test_low_priority_tenant_completes_under_pressure(
        self, service_root, tiny_workload
    ):
        with make_server(service_root, aging=1) as server:
            client = JobClient(server)
            low = client.submit(
                tiny_workload, tenant="small", priority=0,
                options=job_options(0),
            )
            highs = [
                client.submit(
                    tiny_workload, tenant="big", priority=100,
                    options=job_options(seed),
                )
                for seed in range(1, 5)
            ]
            assert client.result(low, timeout=120.0) is not None
            for job_id in highs:
                client.result(job_id, timeout=120.0)

    def test_quota_rejection_rolls_back_the_spec(
        self, service_root, tiny_workload
    ):
        quotas = {"t": TenantQuota(max_token_budget=100)}
        with make_server(service_root, quotas=quotas) as server:
            client = JobClient(server)
            with pytest.raises(QuotaExceededError):
                client.submit(
                    tiny_workload, tenant="t", options=job_options(0)
                )
            # Nothing persisted: a restart must not resurrect the job.
            assert server.root.job_ids() == []
            # And the id is free for reuse.
            ok = client.submit(
                tiny_workload,
                tenant="t",
                options=job_options(0).ablated(token_budget=100),
            )
            client.result(ok, timeout=120.0)


class GatedProbe:
    """Blocks one job at a chosen append until the test releases it."""

    def __init__(self, job_id_holder, at_append):
        self.holder = job_id_holder
        self.at_append = at_append
        self.reached = threading.Event()
        self.gate = threading.Event()

    def __call__(self, job_id, appends):
        if job_id == self.holder.get("id") and appends == self.at_append:
            self.reached.set()
            assert self.gate.wait(timeout=30.0)


class TestCancellation:
    def test_cancel_queued_job(self, service_root, tiny_workload):
        holder = {}
        probe = GatedProbe(holder, at_append=2)
        quotas = {"t": TenantQuota(max_pending=2)}
        with make_server(
            service_root, quotas=quotas, crash_probe=probe
        ) as server:
            client = JobClient(server)
            holder["id"] = client.submit(
                tiny_workload, tenant="t", options=job_options(0)
            )
            probe.reached.wait(timeout=30.0)  # worker is pinned on job 1
            queued = client.submit(
                tiny_workload, tenant="t", options=job_options(1)
            )
            assert client.cancel(queued) == "cancelled"
            assert client.status(queued)["state"] == "cancelled"
            # Admission quota released: a replacement fits under the cap.
            replacement = client.submit(
                tiny_workload, tenant="t", options=job_options(2)
            )
            probe.gate.set()
            client.result(holder["id"], timeout=120.0)
            client.result(replacement, timeout=120.0)
        # The cancelled job never ran: no journal, marker persisted.
        assert not server.root.journal_path(queued).exists()
        assert server.root.is_cancelled(queued)

    def test_cancel_running_job_leaves_resumable_journal(
        self, service_root, tiny_workload
    ):
        options = job_options(3)
        reference = reference_result(tiny_workload, options=options)
        holder = {}
        probe = GatedProbe(holder, at_append=4)
        with make_server(service_root, crash_probe=probe) as server:
            client = JobClient(server)
            holder["id"] = client.submit(tiny_workload, options=options)
            job_id = holder["id"]
            assert probe.reached.wait(timeout=30.0)
            client.cancel(job_id)  # lands at the next journal append
            probe.gate.set()
            server.wait_all(timeout=120.0)
            assert client.status(job_id)["state"] == "cancelled"
            with pytest.raises(Exception, match="cancelled"):
                client.result(job_id)
        journal = server.root.journal_path(job_id)
        info = inspect_journal(journal)
        assert info.resumable, "cancellation must leave a resumable journal"
        assert not journal.with_name(journal.name + ".lock").exists()
        assert server.root.is_cancelled(job_id)

        # The marker holds the job cancelled across restarts ...
        with make_server(
            service_root, workload_resolver={"tiny": tiny_workload}
        ) as again:
            again.wait_all(timeout=120.0)
            assert again.status(job_id)["state"] == "cancelled"
        # ... until the tenant changes their mind: drop the marker and
        # the journal resumes to the exact uninterrupted result.
        server.root.cancel_path(job_id).unlink()
        with make_server(
            service_root, workload_resolver={"tiny": tiny_workload}
        ) as revived:
            result = revived.result(job_id, timeout=120.0)
            assert revived.status(job_id)["resumed"]
        assert fingerprint(result) == fingerprint(reference)

    def test_cancel_terminal_job_is_a_no_op(self, service_root, tiny_workload):
        with make_server(service_root) as server:
            client = JobClient(server)
            job_id = client.submit(tiny_workload, options=job_options(0))
            client.result(job_id, timeout=120.0)
            assert client.cancel(job_id) == "done"
            assert client.status(job_id)["state"] == "done"
