"""Cross-component determinism guarantees.

Everything in the reproduction must be bit-stable for a given seed:
engines (deterministic noise via content hashes, not ``hash()``),
the LLM (seeded styles), K-means (seeded numpy RNG), and the tuners
(seeded ``random.Random``).  Cross-process tests additionally pin down
independence from ``PYTHONHASHSEED`` -- no simulated timing may depend
on set/dict iteration order.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.db.postgres import PostgresEngine
from repro.workloads import tpch_workload

#: Import root of the in-tree package, propagated to subprocesses so
#: ``import repro`` works without an installed distribution.
_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _subprocess_env(hash_seed: str) -> dict[str, str]:
    python_path = _SRC_DIR
    if os.environ.get("PYTHONPATH"):
        python_path += os.pathsep + os.environ["PYTHONPATH"]
    return {
        "PYTHONHASHSEED": hash_seed,
        "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
        "PYTHONPATH": python_path,
    }


def _run_under_hash_seeds(script: str, hash_seeds: tuple[str, ...]) -> set[str]:
    outputs = set()
    for hash_seed in hash_seeds:
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=_subprocess_env(hash_seed),
            check=True,
        )
        outputs.add(result.stdout.strip())
    return outputs


class TestInProcessDeterminism:
    def test_engine_times_stable_across_instances(self):
        workload = tpch_workload()
        times = []
        for _ in range(2):
            engine = PostgresEngine(workload.catalog)
            engine.apply_config({"work_mem": "128MB"})
            times.append(
                [engine.estimate_seconds(q) for q in workload.queries]
            )
        assert times[0] == times[1]

    def test_full_pipeline_stable_across_instances(self):
        from repro.core import LambdaTune, LambdaTuneOptions
        from repro.llm import SimulatedLLM

        workload = tpch_workload()
        results = []
        for _ in range(2):
            tuner = LambdaTune(
                PostgresEngine(workload.catalog),
                SimulatedLLM(),
                LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, seed=9),
            )
            results.append(tuner.tune(list(workload.queries)))
        assert results[0].best_time == results[1].best_time
        assert results[0].tuning_seconds == results[1].tuning_seconds

    def test_caching_is_bit_transparent(self):
        """Engine + evaluator caches must not change any result value."""
        import repro.db.engine as engine_module
        from repro.core import LambdaTune, LambdaTuneOptions
        from repro.llm import SimulatedLLM

        workload = tpch_workload()
        results = []
        for cached in (True, False):
            engine_module.CACHES_ENABLED = cached
            try:
                tuner = LambdaTune(
                    PostgresEngine(workload.catalog),
                    SimulatedLLM(),
                    LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, seed=9),
                )
                results.append(tuner.tune(list(workload.queries)))
            finally:
                engine_module.CACHES_ENABLED = True
        assert results[0].best_time == results[1].best_time
        assert results[0].tuning_seconds == results[1].tuning_seconds


class TestCrossProcessDeterminism:
    SCRIPT = (
        "from repro.db.postgres import PostgresEngine;"
        "from repro.workloads import tpch_workload;"
        "w = tpch_workload();"
        "e = PostgresEngine(w.catalog);"
        "print(sum(e.estimate_seconds(q) for q in w.queries))"
    )

    PIPELINE_SCRIPT = (
        "from repro.core import LambdaTune, LambdaTuneOptions;"
        "from repro.db.postgres import PostgresEngine;"
        "from repro.llm import SimulatedLLM;"
        "from repro.workloads import tpch_workload;"
        "w = tpch_workload();"
        "t = LambdaTune(PostgresEngine(w.catalog), SimulatedLLM(),"
        " LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, seed=9));"
        "r = t.tune(list(w.queries));"
        "print(repr(r.best_time), repr(r.tuning_seconds))"
    )

    def test_times_identical_under_different_hash_seeds(self):
        """PYTHONHASHSEED must not influence simulated timings."""
        outputs = _run_under_hash_seeds(self.SCRIPT, ("1", "2"))
        assert len(outputs) == 1

    BUDGET_SCRIPT = (
        "from repro.core import LambdaTune, LambdaTuneOptions;"
        "from repro.db.registry import create_engine;"
        "from repro.db.resources import parse_budget;"
        "from repro.llm import SimulatedLLM;"
        "from repro.workloads import tpch_workload;"
        "w = tpch_workload();"
        "o = LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, seed=9,"
        " budget=parse_budget('ram=32GB'));"
        "t = LambdaTune(create_engine('columnar', w.catalog), SimulatedLLM(), o);"
        "r = t.tune(list(w.queries));"
        "print(repr(r.best_time), sorted(r.extras['failed_configs']),"
        " r.extras['cheapest_tier'])"
    )

    def test_full_pipeline_identical_under_different_hash_seeds(self):
        """The whole tune() pipeline is hash-seed independent.

        Guards the determinism repairs in the planner (join-order
        tie-break), the mock LLM (join-graph insertion order) and the
        scheduler (canonical-order cost summation).
        """
        outputs = _run_under_hash_seeds(self.PIPELINE_SCRIPT, ("1", "3"))
        assert len(outputs) == 1

    def test_budget_pipeline_identical_under_different_hash_seeds(self):
        """The feasibility gate (footprints, quarantine order, the tier
        ILP) must be as hash-seed independent as the latency path."""
        outputs = _run_under_hash_seeds(self.BUDGET_SCRIPT, ("1", "2"))
        assert len(outputs) == 1
