"""Cross-component determinism guarantees.

Everything in the reproduction must be bit-stable for a given seed:
engines (deterministic noise via content hashes, not ``hash()``),
the LLM (seeded styles), K-means (seeded numpy RNG), and the tuners
(seeded ``random.Random``).
"""

import subprocess
import sys

from repro.db.postgres import PostgresEngine
from repro.workloads import tpch_workload


class TestInProcessDeterminism:
    def test_engine_times_stable_across_instances(self):
        workload = tpch_workload()
        times = []
        for _ in range(2):
            engine = PostgresEngine(workload.catalog)
            engine.apply_config({"work_mem": "128MB"})
            times.append(
                [engine.estimate_seconds(q) for q in workload.queries]
            )
        assert times[0] == times[1]

    def test_full_pipeline_stable_across_instances(self):
        from repro.core import LambdaTune, LambdaTuneOptions
        from repro.llm import SimulatedLLM

        workload = tpch_workload()
        results = []
        for _ in range(2):
            tuner = LambdaTune(
                PostgresEngine(workload.catalog),
                SimulatedLLM(),
                LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, seed=9),
            )
            results.append(tuner.tune(list(workload.queries)))
        assert results[0].best_time == results[1].best_time
        assert results[0].tuning_seconds == results[1].tuning_seconds


class TestCrossProcessDeterminism:
    SCRIPT = (
        "from repro.db.postgres import PostgresEngine;"
        "from repro.workloads import tpch_workload;"
        "w = tpch_workload();"
        "e = PostgresEngine(w.catalog);"
        "print(sum(e.estimate_seconds(q) for q in w.queries))"
    )

    def test_times_identical_under_different_hash_seeds(self):
        """PYTHONHASHSEED must not influence simulated timings."""
        outputs = set()
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
