"""End-to-end integration tests across the whole stack."""

import math

import pytest

from repro.bench.runner import run_lambda_tune, run_scenario
from repro.bench.scenarios import Scenario
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.columnar import ColumnarEngine
from repro.db.mysql import MySQLEngine
from repro.db.postgres import PostgresEngine
from repro.db.resources import parse_budget
from repro.llm import SimulatedLLM
from repro.workloads import load_workload

FAST = LambdaTuneOptions(token_budget=400, initial_timeout=0.5, alpha=2.0)


class TestLambdaTuneOnRealWorkloads:
    @pytest.mark.parametrize("workload_name", ["tpch-sf1", "tpcds-sf1"])
    def test_postgres_speedup(self, workload_name):
        workload = load_workload(workload_name)
        engine = PostgresEngine(workload.catalog)
        default_time = sum(
            engine.estimate_seconds(query) for query in workload.queries
        )
        tuner = LambdaTune(PostgresEngine(workload.catalog), SimulatedLLM(), FAST)
        result = tuner.tune(list(workload.queries))
        assert result.best_time < default_time

    def test_job_speedup_is_large(self, job):
        engine = PostgresEngine(job.catalog)
        default_time = sum(engine.estimate_seconds(query) for query in job.queries)
        tuner = LambdaTune(PostgresEngine(job.catalog), SimulatedLLM(), FAST)
        result = tuner.tune(list(job.queries))
        # JOB is index-dominated: expect at least 5x.
        assert result.best_time * 5 < default_time

    def test_mysql_tpch(self, tpch):
        tuner = LambdaTune(MySQLEngine(tpch.catalog), SimulatedLLM(), FAST)
        result = tuner.tune(list(tpch.queries))
        default_engine = MySQLEngine(tpch.catalog)
        default_time = sum(
            default_engine.estimate_seconds(query) for query in tpch.queries
        )
        assert result.best_time < default_time

    def test_columnar_tpch(self, tpch):
        tuner = LambdaTune(ColumnarEngine(tpch.catalog), SimulatedLLM(), FAST)
        result = tuner.tune(list(tpch.queries))
        default_engine = ColumnarEngine(tpch.catalog)
        default_time = sum(
            default_engine.estimate_seconds(query) for query in tpch.queries
        )
        assert result.best_time < default_time

    def test_columnar_tune_under_budget_stays_feasible(self, tpch):
        budget = parse_budget("ram=32GB,disk=200GB")
        tuner = LambdaTune(
            ColumnarEngine(tpch.catalog),
            SimulatedLLM(),
            FAST.ablated(budget=budget),
        )
        result = tuner.tune(list(tpch.queries))
        fresh = ColumnarEngine(tpch.catalog)
        footprint = fresh.resource_footprint(
            result.best_config.settings, result.best_config.indexes
        )
        assert budget.admits(footprint)
        assert result.extras["feasible"] is True
        # And tuning still beats the default despite the constraint.
        default_time = sum(
            fresh.estimate_seconds(query) for query in tpch.queries
        )
        assert result.best_time < default_time

    def test_best_config_reproducible_on_fresh_engine(self, tpch):
        tuner = LambdaTune(PostgresEngine(tpch.catalog), SimulatedLLM(), FAST)
        result = tuner.tune(list(tpch.queries))
        fresh = PostgresEngine(tpch.catalog)
        fresh.set_many(result.best_config.settings)
        for index in result.best_config.indexes:
            fresh.create_index(index)
        replayed = sum(fresh.estimate_seconds(query) for query in tpch.queries)
        # Selection may have completed some queries before all lazy
        # indexes existed, so the recorded best time and a replay under
        # the final physical design agree only approximately.
        assert replayed == pytest.approx(result.best_time, rel=0.15)


class TestScenarioProtocol:
    def test_full_scenario_comparison(self):
        run = run_scenario(
            Scenario("tpch-sf1", "postgres", False),
            budget_seconds=200.0,
            tuners=["lambda-tune", "udo", "paramtree"],
            lambda_options=FAST,
        )
        scaled = run.scaled_costs()
        assert all(math.isfinite(v) for v in scaled.values())
        # lambda-Tune is never the worst in this scenario.
        assert scaled["lambda-tune"] <= scaled["paramtree"]

    def test_initial_indexes_scenario_restricts_scope(self):
        workload = load_workload("tpch-sf1")
        result = run_lambda_tune(
            Scenario("tpch-sf1", "postgres", True), workload, options=FAST
        )
        assert result.best_config.indexes == []

    def test_mysql_scenario(self):
        run = run_scenario(
            Scenario("tpch-sf1", "mysql", True),
            budget_seconds=150.0,
            tuners=["lambda-tune", "db-bert"],
            lambda_options=FAST,
        )
        assert set(run.results) == {"lambda-tune", "db-bert"}


class TestPaperHeadlineClaims:
    """The qualitative claims of §6 that must hold in the reproduction."""

    def test_lambda_tune_sample_efficiency_table4(self):
        """Table 4: lambda-Tune evaluates 5 configs; search baselines
        evaluate an order of magnitude more."""
        run = run_scenario(
            Scenario("tpch-sf1", "postgres", True),
            budget_seconds=400.0,
            tuners=["lambda-tune", "udo", "gptuner"],
            lambda_options=FAST,
        )
        lt = run.results["lambda-tune"].configs_evaluated
        assert lt == 5
        assert run.results["udo"].configs_evaluated > 3 * lt
        assert run.results["gptuner"].configs_evaluated > lt

    def test_lambda_tune_reaches_near_optimal_faster(self):
        """Figures 3/4: lambda-Tune reaches near-optimal quality no
        later than the projection-based search baseline."""
        run = run_scenario(
            Scenario("tpch-sf1", "postgres", False),
            budget_seconds=300.0,
            tuners=["lambda-tune", "llamatune"],
            lambda_options=FAST,
        )
        threshold = run.best_overall() * 1.3

        def time_to_quality(result):
            for point in result.trace:
                if point.best_time <= threshold:
                    return point.time
            return math.inf

        lt_time = time_to_quality(run.results["lambda-tune"])
        other_time = time_to_quality(run.results["llamatune"])
        assert math.isfinite(lt_time)
        assert lt_time <= other_time

    def test_token_budget_ablation_direction(self, tpch):
        """Figure 7: a starved token budget degrades configuration
        quality; a moderate one recovers it."""
        workload = tpch
        scenario = Scenario("tpch-sf1", "postgres", False)
        tiny = run_lambda_tune(
            scenario, workload, options=FAST.ablated(token_budget=40)
        )
        normal = run_lambda_tune(
            scenario, workload, options=FAST.ablated(token_budget=800)
        )
        assert normal.best_time <= tiny.best_time * 1.05
