"""Analyzer unit tests: join extraction, filters, alias resolution."""

import pytest

from repro.sql.analyzer import JoinCondition, analyze


def joins(sql, owner=None):
    return sorted(str(c) for c in analyze(sql, owner).join_conditions)


class TestJoinConditionObject:
    def test_make_normalizes_order(self):
        a = JoinCondition.make("t2.y", "t1.x")
        b = JoinCondition.make("t1.x", "t2.y")
        assert a == b
        assert a.left == "t1.x"

    def test_str_rendering(self):
        assert str(JoinCondition.make("a.x", "b.y")) == "a.x = b.y"

    def test_columns_property(self):
        assert JoinCondition.make("a.x", "b.y").columns == ("a.x", "b.y")


class TestJoinExtraction:
    def test_where_equality_between_tables(self):
        assert joins("SELECT 1 FROM a, b WHERE a.x = b.y") == ["a.x = b.y"]

    def test_on_clause(self):
        assert joins("SELECT 1 FROM a JOIN b ON a.x = b.y") == ["a.x = b.y"]

    def test_alias_resolution(self):
        sql = "SELECT 1 FROM lineitem l, orders o WHERE l.k = o.k2"
        assert joins(sql) == ["lineitem.k = orders.k2"]

    def test_self_join_via_aliases_not_a_join_condition(self):
        # Both sides resolve to the same base table.
        sql = "SELECT 1 FROM t a, t b WHERE a.x = b.x"
        assert joins(sql) == []

    def test_same_condition_not_duplicated(self):
        sql = "SELECT 1 FROM a, b WHERE a.x = b.y AND b.y = a.x"
        assert joins(sql) == ["a.x = b.y"]

    def test_equality_with_constant_is_filter_not_join(self):
        info = analyze("SELECT 1 FROM a WHERE a.x = 5")
        assert not info.join_conditions
        assert info.filters[0].op == "="

    def test_transitive_conditions_kept_separately(self):
        sql = "SELECT 1 FROM a, b, c WHERE a.x = b.x AND b.x = c.x"
        assert len(joins(sql)) == 2

    def test_in_subquery_becomes_semijoin(self):
        sql = "SELECT 1 FROM a WHERE a.x IN (SELECT b.y FROM b)"
        assert joins(sql) == ["a.x = b.y"]

    def test_correlated_subquery_join(self):
        sql = (
            "SELECT 1 FROM part WHERE part.p < "
            "(SELECT avg(l.q) FROM lineitem l WHERE l.pk = part.pk2)"
        )
        assert joins(sql) == ["lineitem.pk = part.pk2"]


class TestFilters:
    def test_filter_ops_and_selectivities(self):
        info = analyze(
            "SELECT 1 FROM t WHERE t.a = 1 AND t.b > 2 AND t.c BETWEEN 1 AND 9 "
            "AND t.d IN (1, 2) AND t.e LIKE 'x%' AND t.f IS NULL"
        )
        ops = {f.column: f.op for f in info.filters}
        assert ops == {"a": "=", "b": ">", "c": "between", "d": "in",
                       "e": "like", "f": "isnull"}
        for predicate in info.filters:
            assert 0.0 < predicate.selectivity <= 1.0

    def test_filter_selectivity_combines_multiplicatively(self):
        info = analyze("SELECT 1 FROM t WHERE t.a > 1 AND t.b > 2")
        expected = info.filters[0].selectivity * info.filters[1].selectivity
        assert info.filter_selectivity("t") == pytest.approx(expected)

    def test_filter_selectivity_for_untouched_table_is_one(self):
        info = analyze("SELECT 1 FROM t WHERE t.a > 1")
        assert info.filter_selectivity("other") == 1.0

    def test_reversed_comparison_still_filters(self):
        info = analyze("SELECT 1 FROM t WHERE 5 < t.a")
        assert info.filters[0].column == "a"

    def test_qualified_column_property(self):
        info = analyze("SELECT 1 FROM t WHERE t.a = 1")
        assert info.filters[0].qualified_column == "t.a"


class TestColumnCollection:
    def test_columns_by_table(self):
        info = analyze("SELECT a.x, b.y FROM a, b WHERE a.z = b.w")
        assert info.columns_by_table["a"] == {"x", "z"}
        assert info.columns_by_table["b"] == {"y", "w"}

    def test_unqualified_column_resolved_via_owner_map(self):
        info = analyze(
            "SELECT x FROM a WHERE y = 1", column_owner={"x": "a", "y": "a"}
        )
        assert info.columns_by_table["a"] == {"x", "y"}

    def test_unqualified_without_owner_is_dropped(self):
        info = analyze("SELECT mystery FROM a")
        assert info.columns_by_table["a"] == set()

    def test_referenced_columns_qualified(self):
        info = analyze("SELECT a.x FROM a")
        assert info.referenced_columns == {"a.x"}


class TestAggregatesAndKeys:
    def test_aggregates_recorded(self):
        info = analyze("SELECT sum(t.x), avg(t.y), count(*) FROM t")
        assert sorted(info.aggregates) == ["avg", "count", "sum"]

    def test_non_aggregate_function_not_recorded(self):
        info = analyze("SELECT upper(t.x) FROM t")
        assert info.aggregates == []

    def test_group_by_columns(self):
        info = analyze("SELECT t.x FROM t GROUP BY t.x, t.y")
        assert info.group_by_columns == {"t.x", "t.y"}

    def test_order_by_columns(self):
        info = analyze("SELECT t.x FROM t ORDER BY t.x DESC")
        assert info.order_by_columns == {"t.x"}

    def test_order_by_alias_not_a_column(self):
        info = analyze("SELECT sum(t.x) AS s FROM t ORDER BY s")
        assert info.order_by_columns == set()


class TestSubqueryMerging:
    def test_subquery_tables_merged(self):
        info = analyze(
            "SELECT 1 FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.x = a.y)"
        )
        assert info.tables == {"a", "b"}
        assert info.has_subquery

    def test_no_subquery_flag(self):
        assert not analyze("SELECT 1 FROM a").has_subquery

    def test_subquery_filters_merged(self):
        info = analyze(
            "SELECT 1 FROM a WHERE EXISTS "
            "(SELECT 1 FROM b WHERE b.x = a.y AND b.z > 3)"
        )
        assert any(f.table == "b" and f.column == "z" for f in info.filters)

    def test_tpch_q20_style_nesting_connects_all_tables(self, tpch):
        q20 = tpch.query("q20")
        tables = q20.info.tables
        assert {"supplier", "nation", "partsupp", "part", "lineitem"} <= tables
        # Every table must be reachable through join conditions (no
        # phantom cross products).
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(tables)
        for condition in q20.info.join_conditions:
            left = condition.left.rsplit(".", 1)[0]
            right = condition.right.rsplit(".", 1)[0]
            graph.add_edge(left, right)
        assert nx.is_connected(graph)


class TestWorkloadsAnalyzeCleanly:
    def test_all_tpch_queries_have_tables(self, tpch):
        for query in tpch.queries:
            assert query.info.tables, query.name

    def test_all_job_queries_have_joins(self, job):
        for query in job.queries:
            assert query.info.join_conditions, query.name
