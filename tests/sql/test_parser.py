"""Parser unit tests."""

import pytest

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.parser import parse_select


class TestSelectList:
    def test_single_column(self):
        stmt = parse_select("SELECT x FROM t")
        assert len(stmt.items) == 1
        assert stmt.items[0].expr == ast.ColumnRef(None, "x")

    def test_multiple_columns(self):
        stmt = parse_select("SELECT a, b, c FROM t")
        assert [item.expr.column for item in stmt.items] == ["a", "b", "c"]

    def test_qualified_column(self):
        stmt = parse_select("SELECT t.x FROM t")
        assert stmt.items[0].expr == ast.ColumnRef("t", "x")

    def test_alias_with_as(self):
        stmt = parse_select("SELECT x AS total FROM t")
        assert stmt.items[0].alias == "total"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT x total FROM t")
        assert stmt.items[0].alias == "total"

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT x FROM t").distinct
        assert not parse_select("SELECT x FROM t").distinct

    def test_select_without_from(self):
        stmt = parse_select("SELECT 1")
        assert stmt.from_clause == ()


class TestFromClause:
    def test_comma_join(self):
        stmt = parse_select("SELECT 1 FROM a, b, c")
        assert [ref.table for ref in stmt.from_clause] == ["a", "b", "c"]

    def test_table_alias(self):
        stmt = parse_select("SELECT 1 FROM lineitem l")
        assert stmt.from_clause[0] == ast.TableRef("lineitem", "l")

    def test_table_alias_with_as(self):
        stmt = parse_select("SELECT 1 FROM lineitem AS l")
        assert stmt.from_clause[0].alias == "l"

    def test_inner_join(self):
        stmt = parse_select("SELECT 1 FROM a JOIN b ON a.x = b.y")
        join = stmt.from_clause[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "inner"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_left_outer_join(self):
        stmt = parse_select("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.from_clause[0].kind == "left"

    def test_right_join_without_outer(self):
        stmt = parse_select("SELECT 1 FROM a RIGHT JOIN b ON a.x = b.y")
        assert stmt.from_clause[0].kind == "right"

    def test_cross_join_has_no_condition(self):
        stmt = parse_select("SELECT 1 FROM a CROSS JOIN b")
        join = stmt.from_clause[0]
        assert join.kind == "cross"
        assert join.condition is None

    def test_chained_joins_nest_left(self):
        stmt = parse_select(
            "SELECT 1 FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_clause[0]
        assert isinstance(outer.left, ast.Join)
        assert outer.right.table == "c"

    def test_join_requires_on(self):
        with pytest.raises(SQLError):
            parse_select("SELECT 1 FROM a JOIN b")


class TestPredicates:
    def test_comparison_operators_normalized(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a != b")
        assert stmt.where.op == "<>"

    def test_and_or_precedence(self):
        stmt = parse_select("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # OR binds loosest: (a=1) OR ((b=2) AND (c=3))
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not_precedence(self):
        stmt = parse_select("SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
        assert stmt.where.op == "and"
        assert isinstance(stmt.where.left, ast.UnaryOp)

    def test_between(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x BETWEEN 1 AND 10")
        where = stmt.where
        assert isinstance(where, ast.Between)
        assert where.low == ast.Literal(1, "number")
        assert where.high == ast.Literal(10, "number")

    def test_not_between(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x NOT BETWEEN 1 AND 10")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in_list(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x NOT IN ('a', 'b')")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse_select("SELECT 1 FROM t WHERE name LIKE 'A%'")
        assert stmt.where.op == "like"

    def test_not_like(self):
        stmt = parse_select("SELECT 1 FROM t WHERE name NOT LIKE '%x%'")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert stmt.where.op == "not"

    def test_is_null(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x IS NULL")
        assert isinstance(stmt.where, ast.IsNull)
        assert not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x IS NOT NULL")
        assert stmt.where.negated

    def test_dangling_not_raises(self):
        with pytest.raises(SQLError):
            parse_select("SELECT 1 FROM t WHERE x NOT 5")


class TestSubqueries:
    def test_exists(self):
        stmt = parse_select(
            "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)"
        )
        assert isinstance(stmt.where, ast.Exists)

    def test_not_exists(self):
        stmt = parse_select(
            "SELECT 1 FROM t WHERE NOT EXISTS (SELECT 1 FROM u)"
        )
        assert isinstance(stmt.where, ast.UnaryOp)
        assert isinstance(stmt.where.operand, ast.Exists)

    def test_in_subquery(self):
        stmt = parse_select(
            "SELECT 1 FROM t WHERE x IN (SELECT y FROM u)"
        )
        assert isinstance(stmt.where, ast.InSubquery)

    def test_scalar_subquery_in_comparison(self):
        stmt = parse_select(
            "SELECT 1 FROM t WHERE x > (SELECT avg(y) FROM u)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_nested_subqueries(self):
        stmt = parse_select(
            "SELECT 1 FROM t WHERE x IN "
            "(SELECT y FROM u WHERE y IN (SELECT z FROM v))"
        )
        inner = stmt.where.subquery.where
        assert isinstance(inner, ast.InSubquery)


class TestExpressions:
    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        stmt = parse_select("SELECT (a + b) * c FROM t")
        assert stmt.items[0].expr.op == "*"

    def test_unary_minus_folds_into_number(self):
        stmt = parse_select("SELECT -5 FROM t")
        assert stmt.items[0].expr == ast.Literal(-5, "number")

    def test_unary_minus_on_column(self):
        stmt = parse_select("SELECT -x FROM t")
        assert isinstance(stmt.items[0].expr, ast.UnaryOp)

    def test_function_call(self):
        stmt = parse_select("SELECT sum(x) FROM t")
        call = stmt.items[0].expr
        assert call.name == "sum"
        assert len(call.args) == 1

    def test_count_star(self):
        stmt = parse_select("SELECT count(*) FROM t")
        assert isinstance(stmt.items[0].expr.args[0], ast.Star)

    def test_count_distinct(self):
        stmt = parse_select("SELECT count(DISTINCT x) FROM t")
        assert stmt.items[0].expr.distinct

    def test_zero_arg_function(self):
        stmt = parse_select("SELECT now() FROM t")
        assert stmt.items[0].expr.args == ()

    def test_date_literal(self):
        stmt = parse_select("SELECT 1 FROM t WHERE d < date '1995-01-01'")
        assert stmt.where.right == ast.Literal("1995-01-01", "string")

    def test_case_expression(self):
        stmt = parse_select(
            "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t"
        )
        case = stmt.items[0].expr
        assert isinstance(case, ast.CaseExpr)
        assert len(case.branches) == 1
        assert case.default is not None

    def test_case_requires_when(self):
        with pytest.raises(SQLError):
            parse_select("SELECT CASE END FROM t")

    def test_boolean_literals(self):
        stmt = parse_select("SELECT true, false FROM t")
        assert stmt.items[0].expr == ast.Literal(True, "bool")
        assert stmt.items[1].expr == ast.Literal(False, "bool")

    def test_null_literal(self):
        stmt = parse_select("SELECT NULL FROM t")
        assert stmt.items[0].expr.kind == "null"

    def test_string_concatenation(self):
        stmt = parse_select("SELECT a || b FROM t")
        assert stmt.items[0].expr.op == "||"


class TestClauses:
    def test_group_by(self):
        stmt = parse_select("SELECT x, count(*) FROM t GROUP BY x, y")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "SELECT x FROM t GROUP BY x HAVING count(*) > 5"
        )
        assert stmt.having is not None

    def test_order_by_with_directions(self):
        stmt = parse_select("SELECT x FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit(self):
        assert parse_select("SELECT x FROM t LIMIT 10").limit == 10

    def test_limit_requires_number(self):
        with pytest.raises(SQLError):
            parse_select("SELECT x FROM t LIMIT all")

    def test_trailing_semicolon_allowed(self):
        assert parse_select("SELECT 1;").items

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLError):
            parse_select("SELECT 1 FROM t garbage extra tokens")


class TestErrorMessages:
    def test_error_carries_position(self):
        with pytest.raises(SQLError) as excinfo:
            parse_select("SELECT FROM t")
        assert excinfo.value.position is not None

    def test_empty_input_raises(self):
        with pytest.raises(SQLError):
            parse_select("")

    def test_missing_closing_paren(self):
        with pytest.raises(SQLError):
            parse_select("SELECT (1 + 2 FROM t")
