"""AST unparse/walk tests: every query must survive a parse round-trip."""

import pytest

from repro.sql import ast
from repro.sql.parser import parse_select


QUERIES = [
    "SELECT x FROM t",
    "SELECT DISTINCT a, b AS c FROM t WHERE a > 5",
    "SELECT sum(x * (1 - y)) FROM t GROUP BY z HAVING sum(x) > 0",
    "SELECT 1 FROM a, b WHERE a.x = b.y AND a.z BETWEEN 1 AND 2",
    "SELECT 1 FROM t WHERE x IN (1, 2) OR name LIKE 'A%'",
    "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)",
    "SELECT 1 FROM t WHERE x IN (SELECT y FROM u) ORDER BY x DESC LIMIT 5",
    "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x",
    "SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END FROM t",
    "SELECT 1 FROM t WHERE x IS NOT NULL AND NOT y = 2",
]


class TestUnparseRoundTrip:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_unparse_reparses_to_same_ast(self, sql):
        first = parse_select(sql)
        second = parse_select(first.unparse())
        assert first == second

    def test_unparse_escapes_string_quotes(self):
        stmt = parse_select("SELECT 1 FROM t WHERE x = 'it''s'")
        assert "it''s" in stmt.unparse()
        assert parse_select(stmt.unparse()) == stmt


class TestNodeRendering:
    def test_column_ref(self):
        assert ast.ColumnRef("t", "x").unparse() == "t.x"
        assert ast.ColumnRef(None, "x").unparse() == "x"

    def test_literals(self):
        assert ast.Literal(5, "number").unparse() == "5"
        assert ast.Literal("hi", "string").unparse() == "'hi'"
        assert ast.Literal(None, "null").unparse() == "NULL"
        assert ast.Literal(True, "bool").unparse() == "TRUE"

    def test_star(self):
        assert ast.Star().unparse() == "*"
        assert ast.Star("t").unparse() == "t.*"

    def test_func_call_distinct(self):
        call = ast.FuncCall("count", (ast.ColumnRef(None, "x"),), distinct=True)
        assert call.unparse() == "count(DISTINCT x)"

    def test_cross_join_rendering(self):
        join = ast.Join("cross", ast.TableRef("a"), ast.TableRef("b"), None)
        assert join.unparse() == "a CROSS JOIN b"


class TestWalk:
    def test_walk_yields_all_column_refs(self):
        stmt = parse_select(
            "SELECT a.x FROM a, b WHERE a.y = b.z AND b.w IN (SELECT v FROM c)"
        )
        columns = {
            node.column for node in ast.walk(stmt)
            if isinstance(node, ast.ColumnRef)
        }
        assert columns == {"x", "y", "z", "w", "v"}

    def test_walk_includes_root(self):
        stmt = parse_select("SELECT 1")
        assert stmt in list(ast.walk(stmt))

    def test_walk_enters_case_branches(self):
        stmt = parse_select(
            "SELECT CASE WHEN a = 1 THEN b ELSE c END FROM t"
        )
        columns = {
            node.column for node in ast.walk(stmt)
            if isinstance(node, ast.ColumnRef)
        }
        assert columns == {"a", "b", "c"}

    def test_nodes_are_hashable(self):
        stmt = parse_select("SELECT x FROM t WHERE y = 1")
        assert len({stmt, stmt}) == 1
