"""Lexer unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SQLError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [token.type for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \t\n ") == [TokenType.EOF]

    def test_keyword_recognition(self):
        tokens = tokenize("SELECT FROM WHERE")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_keywords_are_case_insensitive(self):
        assert values("select SELECT SeLeCt") == ["select"] * 3

    def test_identifier(self):
        tokens = tokenize("lineitem")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "lineitem"

    def test_identifiers_fold_to_lowercase(self):
        assert values("LineItem MY_COL") == ["lineitem", "my_col"]

    def test_underscore_identifier(self):
        assert tokenize("_private")[0].type is TokenType.IDENT

    def test_quoted_identifier(self):
        tokens = tokenize('"Mixed Case"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "mixed case"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLError):
            tokenize('"oops')


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_decimal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_leading_dot_decimal(self):
        assert tokenize(".5")[0].value == ".5"

    def test_scientific_notation(self):
        assert tokenize("1e6")[0].value == "1e6"
        assert tokenize("2.5E-3")[0].value == "2.5E-3"

    def test_number_with_second_dot_splits(self):
        tokens = tokenize("1.2.3")
        # "1.2" then ".3" (a dot followed by a digit starts a number).
        assert tokens[0].value == "1.2"
        assert tokens[1].value == ".3"

    def test_e_without_digits_is_identifier_boundary(self):
        tokens = tokenize("12e")
        assert tokens[0].value == "12"
        assert tokens[1].value == "e"


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_string_preserves_case(self):
        assert tokenize("'BUILDING'")[0].value == "BUILDING"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLError) as excinfo:
            tokenize("'oops")
        assert excinfo.value.position == 0


class TestOperatorsAndPunctuation:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+",
                                    "-", "*", "/", "%", "||"])
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_two_char_operators_not_split(self):
        assert values("a <= b") == ["a", "<=", "b"]

    @pytest.mark.parametrize("char", ["(", ")", ",", ".", ";"])
    def test_punctuation(self, char):
        assert tokenize(char)[0].type is TokenType.PUNCT

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(SQLError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert values("a /* hi */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert values("a /* line1\nline2 */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLError):
            tokenize("a /* oops")


class TestPositions:
    def test_positions_point_into_source(self):
        text = "SELECT  x"
        tokens = tokenize(text)
        assert tokens[0].position == 0
        assert tokens[1].position == 8

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.is_keyword("select")
        assert token.is_keyword("select", "from")
        assert not token.is_keyword("from")
        ident = Token(TokenType.IDENT, "select_col", 0)
        assert not ident.is_keyword("select")


class TestPropertyBased:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=20))
    def test_any_word_tokenizes_to_single_token(self, word):
        tokens = tokenize(word)
        assert len(tokens) == 2  # word + EOF
        assert tokens[0].value == word

    @given(st.integers(min_value=0, max_value=10**12))
    def test_any_integer_round_trips(self, number):
        token = tokenize(str(number))[0]
        assert token.type is TokenType.NUMBER
        assert int(token.value) == number

    @given(st.text(alphabet=st.characters(blacklist_characters="'",
                                          min_codepoint=32, max_codepoint=126),
                   max_size=30))
    def test_any_quoteless_string_literal_round_trips(self, body):
        token = tokenize(f"'{body}'")[0]
        assert token.type is TokenType.STRING
        assert token.value == body
