"""Invalidation safety of the lexer/parser content-hash memoization.

The caches key on a sha256 of the SQL text, so there is nothing to
invalidate -- but the memoization must not let one caller's mutations
leak into another's results, and distinct texts must never collide.
"""

from repro.sql import ast
from repro.sql.lexer import TokenType, content_key, tokenize
from repro.sql.parser import parse_select

SQL = "SELECT count(*) FROM users WHERE country = 'US'"


class TestTokenizeMemo:
    def test_repeated_calls_agree(self):
        assert tokenize(SQL) == tokenize(SQL)

    def test_returned_list_is_a_fresh_copy(self):
        first = tokenize(SQL)
        first.clear()
        second = tokenize(SQL)
        assert second, "cache was poisoned by caller mutation"
        assert second[-1].type is TokenType.EOF

    def test_distinct_texts_do_not_collide(self):
        other = SQL.replace("'US'", "'DE'")
        assert content_key(SQL) != content_key(other)
        values = {token.value for token in tokenize(other)}
        assert "DE" in values and "US" not in values

    def test_whitespace_variants_are_distinct_keys_same_tokens(self):
        spaced = SQL.replace(" ", "  ")
        assert content_key(SQL) != content_key(spaced)
        # Different cache entries, same token stream content (positions
        # aside) -- the memo never canonicalizes text.
        kinds = [token.type for token in tokenize(spaced)]
        assert kinds == [token.type for token in tokenize(SQL)]


class TestParseMemo:
    def test_repeated_parses_share_the_frozen_ast(self):
        first = parse_select(SQL)
        second = parse_select(SQL)
        assert isinstance(first, ast.SelectStmt)
        # AST nodes are frozen dataclasses, so sharing one instance
        # across callers is safe -- and is what makes the memo O(1).
        assert first is second

    def test_distinct_texts_distinct_asts(self):
        other = SQL.replace("users", "orders")
        assert parse_select(SQL) is not parse_select(other)
