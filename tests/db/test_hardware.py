"""HardwareSpec validation and derived quantities."""

import dataclasses

import pytest

from repro.db.hardware import GIB, HardwareSpec
from repro.errors import ReproError


class TestValidation:
    @pytest.mark.parametrize("memory_gb", [0, -1, -0.5])
    def test_memory_must_be_positive(self, memory_gb):
        with pytest.raises(ReproError, match="memory_gb"):
            HardwareSpec(memory_gb=memory_gb, cores=4)

    @pytest.mark.parametrize("cores", [0, -3])
    def test_cores_must_be_at_least_one(self, cores):
        with pytest.raises(ReproError, match="cores"):
            HardwareSpec(memory_gb=8.0, cores=cores)

    def test_disk_bandwidth_must_be_positive(self):
        with pytest.raises(ReproError, match="disk_mb_per_s"):
            HardwareSpec(memory_gb=8.0, cores=4, disk_mb_per_s=0.0)

    def test_valid_spec_constructs(self):
        spec = HardwareSpec(memory_gb=16.0, cores=4)
        assert spec.disk_mb_per_s == 500.0


class TestDerived:
    def test_memory_bytes(self):
        assert HardwareSpec(memory_gb=2.0, cores=1).memory_bytes == 2 * GIB
        assert HardwareSpec(memory_gb=0.5, cores=1).memory_bytes == GIB // 2

    def test_paper_default_is_p3_2xlarge(self):
        spec = HardwareSpec.paper_default()
        assert spec.memory_gb == 61.0
        assert spec.cores == 8

    def test_describe_matches_prompt_format(self):
        # The exact block SimulatedLLM parses back out of the prompt.
        text = HardwareSpec(memory_gb=61.0, cores=8).describe()
        assert text == "memory: 61GB\ncores: 8"

    def test_frozen(self):
        spec = HardwareSpec(memory_gb=8.0, cores=4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.cores = 16
