"""Columnar-engine-specific knob semantics.

The third backend's knobs must *mean* something different from the row
stores': one global ``memory_limit`` doubling as cache and spill
budget, morsel parallelism through ``threads``, a ``vector_size`` sweet
spot, and compression that trades decode work against the on-disk
footprint.
"""

import pytest

from repro.db.columnar import (
    COMPRESSION_RATIO,
    THREAD_OVERHEAD_BYTES,
    ColumnarEngine,
    recommended_memory_limit,
)
from repro.db.hardware import HardwareSpec

GB = 1024**3

JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)
SCAN_SQL = "SELECT count(*) FROM events WHERE events.kind = 'x'"


@pytest.fixture()
def columnar_engine(tiny_catalog) -> ColumnarEngine:
    return ColumnarEngine(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))


class TestMemoryLimit:
    def test_bigger_limit_is_faster(self, tpch):
        # A TPC-H-sized working set against 2GB of RAM: growing the
        # limit moves both the cache hit ratio and the spill budget.
        engine = ColumnarEngine(tpch.catalog, HardwareSpec(2.0, 4))
        query = tpch.query("q5")
        engine.set_many({"threads": 1, "memory_limit": "64MB"})
        small = engine.estimate_seconds(query)
        engine.set_many({"memory_limit": "1GB"})
        big = engine.estimate_seconds(query)
        assert big < small

    def test_limit_is_cache_and_spill_budget_at_once(self, columnar_engine):
        env = columnar_engine._runtime_env()  # noqa: SLF001
        limit = columnar_engine.get("memory_limit")
        assert env.buffer_pool_bytes == int(limit * 0.8)
        threads = columnar_engine.get("threads")
        assert env.sort_hash_mem_bytes == (limit - env.buffer_pool_bytes) // threads
        assert env.agg_mem_bytes == env.sort_hash_mem_bytes

    def test_limit_above_ram_swaps(self, columnar_engine):
        sane = columnar_engine.estimate_seconds(JOIN_SQL)
        columnar_engine.set_many({"memory_limit": "120GB"})
        swapped = columnar_engine.estimate_seconds(JOIN_SQL)
        assert swapped > sane * 5

    def test_manual_recommendation_helper(self):
        assert recommended_memory_limit(10 * GB) == 8 * GB


class TestMorselParallelism:
    def test_threads_speed_up_scans(self, columnar_engine):
        columnar_engine.set_many({"threads": 1})
        serial = columnar_engine.estimate_seconds(SCAN_SQL)
        columnar_engine.set_many({"threads": 8})
        parallel = columnar_engine.estimate_seconds(SCAN_SQL)
        assert parallel < serial

    def test_every_thread_is_a_worker(self, columnar_engine):
        columnar_engine.set_many({"threads": 6})
        env = columnar_engine._runtime_env()  # noqa: SLF001
        assert env.parallel_workers == 6

    def test_threads_carry_fixed_overhead(self, columnar_engine):
        base = columnar_engine.resource_footprint({"threads": 1})
        wide = columnar_engine.resource_footprint({"threads": 9})
        assert wide.peak_memory_bytes - base.peak_memory_bytes == (
            8 * THREAD_OVERHEAD_BYTES
        )


class TestVectorSize:
    def test_sweet_spot_beats_extremes(self, columnar_engine):
        def at(vector_size):
            columnar_engine.set_many({"vector_size": vector_size})
            return columnar_engine.estimate_seconds(JOIN_SQL)

        tuned = at(2048)
        assert tuned < at(64)
        assert tuned < at(65536)

    def test_penalty_is_symmetric_in_octaves(self, columnar_engine):
        def logging(vector_size):
            columnar_engine.set_many({"vector_size": vector_size})
            return columnar_engine._runtime_env().logging_factor  # noqa: SLF001

        assert logging(512) == pytest.approx(logging(8192))


class TestCompression:
    def test_none_pays_io_zstd_pays_decode(self, columnar_engine):
        def logging(codec):
            columnar_engine.set_many({"compression": codec})
            return columnar_engine._runtime_env().logging_factor  # noqa: SLF001

        lz4 = logging("lz4")
        assert logging("none") == pytest.approx(lz4 + 0.08)
        assert logging("zstd") == pytest.approx(lz4 + 0.015)

    def test_codec_shrinks_disk_footprint(self, columnar_engine):
        footprints = {
            codec: columnar_engine.resource_footprint({"compression": codec})
            for codec in COMPRESSION_RATIO
        }
        assert (
            footprints["zstd"].disk_bytes
            < footprints["lz4"].disk_bytes
            < footprints["none"].disk_bytes
        )

    def test_columnar_disk_beats_row_store_heap(self, tiny_catalog):
        from repro.db.postgres import PostgresEngine

        columnar = ColumnarEngine(tiny_catalog).resource_footprint()
        row = PostgresEngine(tiny_catalog).resource_footprint()
        assert columnar.disk_bytes < row.disk_bytes


class TestPlannerProfile:
    def test_sequential_scans_cheap_random_dear(self, columnar_engine):
        costs = columnar_engine._planner_costs()  # noqa: SLF001
        assert costs.seq_page_cost < 1.0
        assert costs.random_page_cost / costs.seq_page_cost >= 4.0

    def test_nested_loops_gated_by_threshold(self, columnar_engine):
        assert columnar_engine._planner_costs().enable_nestloop  # noqa: SLF001
        columnar_engine.set_many({"nested_loop_join_threshold": 0})
        assert not columnar_engine._planner_costs().enable_nestloop  # noqa: SLF001

    def test_memory_limit_doubles_as_effective_cache(self, columnar_engine):
        columnar_engine.set_many({"memory_limit": "2GB"})
        costs = columnar_engine._planner_costs()  # noqa: SLF001
        assert costs.effective_cache_bytes == 2 * GB


class TestEmbeddedRestart:
    def test_reopen_is_half_a_second(self, columnar_engine):
        before = columnar_engine.clock.now
        assert columnar_engine.apply_config({"memory_limit": "8GB"}) == 0.5
        assert columnar_engine.clock.now == before + 0.5
