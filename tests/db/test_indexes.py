"""Index object and creation-cost tests."""

import pytest

from repro.db.catalog import Catalog, Column
from repro.db.indexes import Index
from repro.db.knobs import GB, MB
from repro.errors import CatalogError


class TestIndexIdentity:
    def test_auto_name(self):
        index = Index("lineitem", ("l_orderkey",))
        assert index.name == "idx_lineitem_l_orderkey"

    def test_explicit_name_kept(self):
        assert Index("t", ("a",), name="my_idx").name == "my_idx"

    def test_names_fold_to_lowercase(self):
        index = Index("LineItem", ("L_OrderKey",))
        assert index.table == "lineitem"
        assert index.columns == ("l_orderkey",)

    def test_key_identity(self):
        a = Index("t", ("x", "y"))
        b = Index("t", ("x", "y"), name="other")
        assert a.key == b.key

    def test_column_order_matters(self):
        assert Index("t", ("x", "y")).key != Index("t", ("y", "x")).key

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            Index("t", ())

    def test_leading_column(self):
        assert Index("t", ("a", "b")).leading_column == "a"

    def test_qualified_columns(self):
        assert Index("t", ("a", "b")).qualified_columns() == ("t.a", "t.b")


class TestValidation:
    def test_valid_index(self, tiny_catalog):
        Index("users", ("age",)).validate(tiny_catalog)

    def test_unknown_table(self, tiny_catalog):
        with pytest.raises(CatalogError):
            Index("ghosts", ("x",)).validate(tiny_catalog)

    def test_unknown_column(self, tiny_catalog):
        with pytest.raises(CatalogError):
            Index("users", ("salary",)).validate(tiny_catalog)


class TestCosts:
    @pytest.fixture()
    def catalog(self):
        catalog = Catalog()
        catalog.add_table("big", 10_000_000, [Column("k", 8), Column("v", 92)])
        catalog.add_table("small", 1_000, [Column("k", 8)])
        return catalog

    def test_size_scales_with_rows(self, catalog):
        big = Index("big", ("k",)).size_bytes(catalog)
        small = Index("small", ("k",)).size_bytes(catalog)
        assert big / small == pytest.approx(10_000, rel=0.01)

    def test_creation_time_positive(self, catalog):
        seconds = Index("small", ("k",)).creation_seconds(catalog, 64 * MB, 500)
        assert seconds >= 0.01

    def test_bigger_table_takes_longer(self, catalog):
        big = Index("big", ("k",)).creation_seconds(catalog, 64 * MB, 500)
        small = Index("small", ("k",)).creation_seconds(catalog, 64 * MB, 500)
        assert big > small * 100

    def test_more_maintenance_memory_is_faster(self, catalog):
        slow = Index("big", ("k",)).creation_seconds(catalog, 1 * MB, 500)
        fast = Index("big", ("k",)).creation_seconds(catalog, 4 * GB, 500)
        assert fast < slow

    def test_faster_disk_is_faster(self, catalog):
        slow = Index("big", ("k",)).creation_seconds(catalog, 64 * MB, 100)
        fast = Index("big", ("k",)).creation_seconds(catalog, 64 * MB, 1000)
        assert fast < slow

    def test_multicolumn_index_costs_more(self, catalog):
        one = Index("big", ("k",)).creation_seconds(catalog, 64 * MB, 500)
        two = Index("big", ("k", "v")).creation_seconds(catalog, 64 * MB, 500)
        assert two > one
