"""Physical cost primitive tests."""

import pytest
from hypothesis import given, strategies as st

from repro.db.cost_model import (
    RuntimeEnv,
    cache_hit_ratio,
    deterministic_noise,
    oversubscription_penalty,
    parallel_speedup,
    spill_passes,
)
from repro.db.hardware import GIB, HardwareSpec


def make_env(pool_gb=1.0, memory_gb=61.0, workers=1):
    return RuntimeEnv(
        buffer_pool_bytes=int(pool_gb * GIB),
        sort_hash_mem_bytes=4 * 1024**2,
        agg_mem_bytes=4 * 1024**2,
        maintenance_mem_bytes=64 * 1024**2,
        parallel_workers=workers,
        io_concurrency=1.0,
        logging_factor=1.0,
        swap_factor=1.0,
        hardware=HardwareSpec(memory_gb=memory_gb, cores=8),
    )


class TestCacheHitRatio:
    def test_empty_working_set_fully_cached(self):
        assert cache_hit_ratio(make_env(), 0) == 1.0

    def test_bigger_pool_hits_more(self):
        working_set = 100 * GIB
        small = cache_hit_ratio(make_env(pool_gb=1), working_set)
        large = cache_hit_ratio(make_env(pool_gb=32), working_set)
        assert large > small

    def test_capped_below_one(self):
        assert cache_hit_ratio(make_env(pool_gb=32), 1024) == pytest.approx(0.99)

    @given(st.integers(min_value=1, max_value=2**45))
    def test_always_in_unit_interval(self, working_set):
        ratio = cache_hit_ratio(make_env(), working_set)
        assert 0.0 <= ratio <= 0.99


class TestSpillPasses:
    def test_fits_in_memory_no_spill(self):
        assert spill_passes(100, 1000) == 0.0

    def test_exceeding_memory_spills(self):
        assert spill_passes(10_000_000, 1_000_000) > 1.0

    def test_spill_grows_logarithmically(self):
        small = spill_passes(2**21, 2**20)
        large = spill_passes(2**30, 2**20)
        assert large > small
        assert large < small * 12

    def test_zero_bytes_no_spill(self):
        assert spill_passes(0, 100) == 0.0

    @given(
        st.integers(min_value=1, max_value=2**40),
        st.integers(min_value=1, max_value=2**40),
    )
    def test_more_memory_never_spills_more(self, data, memory):
        assert spill_passes(data, memory * 2) <= spill_passes(data, memory)


class TestParallelSpeedup:
    def test_single_worker_no_speedup(self):
        assert parallel_speedup(1, 8) == 1.0

    def test_sublinear(self):
        assert 1.0 < parallel_speedup(4, 8) < 4.0

    def test_capped_by_cores(self):
        assert parallel_speedup(64, 8) == parallel_speedup(8, 8)

    def test_monotone_in_workers(self):
        values = [parallel_speedup(w, 16) for w in range(1, 16)]
        assert values == sorted(values)


class TestOversubscription:
    def test_no_penalty_below_80_percent(self):
        assert oversubscription_penalty(int(0.5 * GIB), GIB) == 1.0
        assert oversubscription_penalty(int(0.8 * GIB), GIB) == 1.0

    def test_penalty_above_threshold(self):
        assert oversubscription_penalty(int(0.95 * GIB), GIB) > 1.0

    def test_catastrophic_beyond_ram(self):
        assert oversubscription_penalty(2 * GIB, GIB) > 50.0

    def test_monotone(self):
        penalties = [
            oversubscription_penalty(int(f * GIB), GIB)
            for f in (0.5, 0.8, 0.9, 1.0, 1.2, 2.0)
        ]
        assert penalties == sorted(penalties)


class TestDeterministicNoise:
    def test_reproducible(self):
        assert deterministic_noise("a", 1) == deterministic_noise("a", 1)

    def test_varies_with_inputs(self):
        assert deterministic_noise("a", 1) != deterministic_noise("a", 2)

    def test_bounded(self):
        for seed in range(200):
            value = deterministic_noise("q", seed, amplitude=0.03)
            assert 0.97 <= value <= 1.03

    def test_custom_amplitude(self):
        for seed in range(50):
            value = deterministic_noise("q", seed, amplitude=0.5)
            assert 0.5 <= value <= 1.5


class TestRuntimeEnv:
    def test_seconds_per_cost_unit_anchored_to_disk(self):
        env = make_env()
        # One 8KiB page at 500 MB/s.
        assert env.seconds_per_cost_unit == pytest.approx(
            8192 / (500 * 1024**2)
        )
