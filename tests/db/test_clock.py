"""Virtual clock tests."""

import pytest
from hypothesis import given, strategies as st

from repro.db.clock import VirtualClock
from repro.errors import ReproError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ReproError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ReproError):
            clock.advance(-0.1)
        assert clock.now == 0.0

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_elapsed_since(self):
        clock = VirtualClock()
        start = clock.now
        clock.advance(7.0)
        assert clock.elapsed_since(start) == pytest.approx(7.0)

    def test_reset(self):
        clock = VirtualClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_below_zero_rejected(self):
        with pytest.raises(ReproError):
            VirtualClock().reset(-5.0)

    def test_repr_contains_time(self):
        assert "3.000" in repr(VirtualClock(3.0))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_monotone_under_any_advances(self, durations):
        clock = VirtualClock()
        previous = clock.now
        for duration in durations:
            clock.advance(duration)
            assert clock.now >= previous
            previous = clock.now
        assert clock.now == pytest.approx(sum(durations), abs=1e-6)
