"""PostgreSQL-specific knob semantics."""

import pytest

from repro.db.hardware import HardwareSpec
from repro.db.postgres import PostgresEngine, recommended_shared_buffers


JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)
SCAN_SQL = "SELECT count(*) FROM events WHERE events.kind = 'x'"


class TestMemorySemantics:
    def test_more_shared_buffers_speeds_scans(self, tiny_catalog):
        # A machine small enough that the events table (~38MB) does not
        # fit in cache: growing the pool must raise the hit ratio.
        engine = PostgresEngine(tiny_catalog, HardwareSpec(0.03, 4))
        engine.set_many({"shared_buffers": "128kB", "work_mem": "64kB"})
        cold = engine.estimate_seconds(SCAN_SQL)
        engine.set_many({"shared_buffers": "8MB"})
        warm = engine.estimate_seconds(SCAN_SQL)
        assert warm < cold

    def test_work_mem_fixes_spilling_join(self, tiny_catalog):
        engine = PostgresEngine(tiny_catalog)
        engine.set_many({"work_mem": "64kB"})
        spilling = engine.estimate_seconds(JOIN_SQL)
        engine.set_many({"work_mem": "1GB"})
        in_memory = engine.estimate_seconds(JOIN_SQL)
        assert in_memory < spilling

    def test_oversubscription_is_catastrophic(self, pg_engine):
        sane = pg_engine.estimate_seconds(JOIN_SQL)
        pg_engine.set_many({"shared_buffers": "55GB", "work_mem": "8GB"})
        swapped = pg_engine.estimate_seconds(JOIN_SQL)
        assert swapped > sane * 5

    def test_manual_recommendation_helper(self):
        assert recommended_shared_buffers(64 * 1024**3) == 16 * 1024**3


class TestParallelism:
    def test_parallel_workers_speed_up_big_scans(self, pg_engine):
        pg_engine.set_many({"max_parallel_workers_per_gather": 0})
        serial = pg_engine.estimate_seconds(SCAN_SQL)
        pg_engine.set_many({
            "max_parallel_workers_per_gather": 8,
            "max_parallel_workers": 8,
            "max_worker_processes": 8,
        })
        parallel = pg_engine.estimate_seconds(SCAN_SQL)
        assert parallel < serial

    def test_workers_bounded_by_max_parallel_workers(self, pg_engine):
        pg_engine.set_many({
            "max_parallel_workers_per_gather": 8,
            "max_parallel_workers": 0,
        })
        env = pg_engine._runtime_env()  # noqa: SLF001
        assert env.parallel_workers == 1


class TestLoggingKnobs:
    def test_logging_knobs_have_marginal_effect(self, pg_engine):
        base = pg_engine.estimate_seconds(JOIN_SQL)
        pg_engine.set_many({
            "checkpoint_completion_target": 0.9,
            "wal_buffers": "16MB",
            "synchronous_commit": False,
            "max_wal_size": "8GB",
        })
        tweaked = pg_engine.estimate_seconds(JOIN_SQL)
        assert tweaked == pytest.approx(base, rel=0.05)


class TestRestartCost:
    # Generic identity/round-trip checks live in test_conformance.py;
    # only the PostgreSQL-specific constant is pinned here.
    def test_restart_costs_two_seconds(self, pg_engine):
        assert pg_engine.restart_seconds == 2.0
