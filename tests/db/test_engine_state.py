"""Engine fork/capture/restore and the recording clock.

The parallel selector's worker isolation rests on these: a worker must
rebuild a bit-identical engine from a snapshot, and replaying its
recorded clock advances must reproduce the serial clock exactly.
"""

import pickle

import pytest

from repro.db.clock import RecordingClock, VirtualClock
from repro.db.indexes import Index


class TestRecordingClock:
    def test_records_individual_advances(self):
        clock = RecordingClock(0.0)
        clock.advance(0.1)
        clock.advance(2.5)
        clock.advance(0.0625)
        assert clock.advances == [0.1, 2.5, 0.0625]

    def test_replay_is_bit_exact(self):
        # Sum in a different grouping to show replay preserves *order*:
        # float addition is not associative, replay must not re-group.
        amounts = [0.1, 0.2, 0.3, 1e-9, 4e7, 0.7]
        recording = RecordingClock(0.0)
        for amount in amounts:
            recording.advance(amount)
        target = VirtualClock(0.0)
        recording.replay_onto(target)
        assert repr(target.now) == repr(recording.now)

    def test_fork_starts_at_current_time(self):
        clock = VirtualClock(3.5)
        fork = clock.fork()
        fork.advance(1.0)
        assert clock.now == 3.5
        assert fork.now == 4.5


class TestCaptureRestore:
    def test_round_trip(self, pg_engine):
        pg_engine.set_many({"work_mem": "128MB"})
        index = Index(table="users", columns=("country",))
        pg_engine.create_index(index)
        state = pg_engine.capture_state()

        other = type(pg_engine)(pg_engine.catalog, pg_engine.hardware)
        other.restore_state(state)
        assert other.config == pg_engine.config
        assert [i.key for i in other.indexes] == [i.key for i in pg_engine.indexes]
        assert other.config_signature == pg_engine.config_signature
        assert other.clock.now == pg_engine.clock.now

    def test_state_is_picklable(self, pg_engine):
        pg_engine.set_many({"work_mem": "64MB"})
        state = pg_engine.capture_state()
        clone = pickle.loads(pickle.dumps(state))
        other = type(pg_engine)(pg_engine.catalog, pg_engine.hardware)
        other.restore_state(clone)
        assert other.config_signature == pg_engine.config_signature

    def test_restore_replaces_not_merges(self, pg_engine):
        state = pg_engine.capture_state()
        pg_engine.set_many({"work_mem": "1GB"})
        pg_engine.create_index(Index(table="users", columns=("age",)))
        pg_engine.restore_state(state)
        assert pg_engine.config == dict(state.settings)
        assert pg_engine.indexes == []

    def test_restore_installs_given_clock(self, pg_engine):
        clock = RecordingClock(0.0)
        pg_engine.restore_state(pg_engine.capture_state(), clock=clock)
        assert pg_engine.clock is clock
        pg_engine.apply_config({"work_mem": "32MB"})
        assert clock.advances == [pg_engine.restart_seconds]


class TestFork:
    def test_fork_is_isolated(self, pg_engine):
        fork = pg_engine.fork()
        fork.set_many({"work_mem": "512MB"})
        fork.create_index(Index(table="users", columns=("country",)))
        assert pg_engine.get("work_mem") != fork.get("work_mem")
        assert pg_engine.indexes == []

    def test_fork_costs_match(self, pg_engine, tiny_workload):
        """Same state => identical simulated costs on the fork."""
        pg_engine.set_many({"shared_buffers": "2GB"})
        fork = pg_engine.fork()
        for query in tiny_workload.queries:
            assert repr(fork.estimate_seconds(query)) == repr(
                pg_engine.estimate_seconds(query)
            )

    def test_fork_shares_catalog(self, pg_engine):
        assert pg_engine.fork().catalog is pg_engine.catalog
