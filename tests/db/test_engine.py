"""Engine behaviour tests: config, indexes, execution, timeouts."""

import pytest

from repro.db.indexes import Index
from repro.errors import ConfigurationError, KnobError


JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)


class TestConfiguration:
    def test_defaults_loaded(self, pg_engine):
        assert pg_engine.get("shared_buffers") == 128 * 1024**2

    def test_apply_config_advances_clock_by_restart(self, pg_engine):
        elapsed = pg_engine.apply_config({"work_mem": "64MB"})
        assert elapsed == pg_engine.restart_seconds
        assert pg_engine.clock.now == pg_engine.restart_seconds

    def test_empty_config_is_free(self, pg_engine):
        assert pg_engine.apply_config({}) == 0.0
        assert pg_engine.clock.now == 0.0

    def test_invalid_setting_rejected_atomically(self, pg_engine):
        before = pg_engine.config
        with pytest.raises(KnobError):
            pg_engine.apply_config({"work_mem": "64MB", "nonsense_knob": 1})
        assert pg_engine.config == before
        assert pg_engine.clock.now == 0.0

    def test_reset_config_restores_defaults(self, pg_engine):
        pg_engine.apply_config({"work_mem": "1GB"})
        pg_engine.reset_config()
        assert pg_engine.get("work_mem") == 4 * 1024**2

    def test_set_many_is_clock_free(self, pg_engine):
        pg_engine.set_many({"work_mem": "2GB"})
        assert pg_engine.clock.now == 0.0
        assert pg_engine.get("work_mem") == 2 * 1024**3

    def test_config_returns_copy(self, pg_engine):
        config = pg_engine.config
        config["work_mem"] = 0
        assert pg_engine.get("work_mem") != 0


class TestIndexLifecycle:
    def test_create_index_advances_clock(self, pg_engine):
        seconds = pg_engine.create_index(Index("events", ("kind",)))
        assert seconds > 0
        assert pg_engine.clock.now == pytest.approx(seconds)

    def test_create_index_idempotent(self, pg_engine):
        index = Index("events", ("kind",))
        pg_engine.create_index(index)
        assert pg_engine.create_index(index) == 0.0

    def test_index_creation_seconds_estimate_matches(self, pg_engine):
        index = Index("events", ("kind",))
        estimate = pg_engine.index_creation_seconds(index)
        actual = pg_engine.create_index(index)
        assert estimate == pytest.approx(actual)
        assert pg_engine.index_creation_seconds(index) == 0.0

    def test_drop_index(self, pg_engine):
        index = Index("events", ("kind",))
        pg_engine.create_index(index)
        pg_engine.drop_index(index)
        assert not pg_engine.has_index(index)

    def test_drop_missing_index_is_free(self, pg_engine):
        assert pg_engine.drop_index(Index("events", ("kind",))) == 0.0

    def test_drop_all_indexes(self, pg_engine):
        pg_engine.create_index(Index("events", ("kind",)))
        pg_engine.create_index(Index("users", ("age",)))
        pg_engine.drop_all_indexes()
        assert pg_engine.indexes == []

    def test_invalid_index_rejected(self, pg_engine):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            pg_engine.create_index(Index("events", ("missing",)))

    def test_hypothetical_indexes_are_free_and_transient(self, pg_engine):
        index = Index("events", ("user_id2",))
        before = pg_engine.estimate_seconds(JOIN_SQL)
        pg_engine.set_knob("random_page_cost", 1.1)
        pg_engine.set_knob("effective_cache_size", "45GB")
        with pg_engine.hypothetical_indexes([index]):
            during = pg_engine.estimate_seconds(JOIN_SQL)
            assert pg_engine.has_index(index)
        assert not pg_engine.has_index(index)
        assert pg_engine.clock.now == 0.0
        assert during != before

    def test_hypothetical_does_not_steal_existing(self, pg_engine):
        index = Index("events", ("kind",))
        pg_engine.create_index(index)
        with pg_engine.hypothetical_indexes([index]):
            pass
        assert pg_engine.has_index(index)


class TestExecution:
    def test_execute_complete(self, pg_engine):
        result = pg_engine.execute(JOIN_SQL)
        assert result.complete
        assert result.execution_time > 0
        assert pg_engine.clock.now == pytest.approx(result.execution_time)

    def test_execute_with_sufficient_timeout(self, pg_engine):
        result = pg_engine.execute(JOIN_SQL, timeout=1e9)
        assert result.complete

    def test_timeout_interrupts_and_charges_timeout(self, pg_engine):
        full = pg_engine.estimate_seconds(JOIN_SQL)
        result = pg_engine.execute(JOIN_SQL, timeout=full / 2)
        assert not result.complete
        assert result.execution_time == pytest.approx(full / 2)
        assert pg_engine.clock.now == pytest.approx(full / 2)

    def test_nonpositive_timeout_executes_nothing(self, pg_engine):
        result = pg_engine.execute(JOIN_SQL, timeout=0.0)
        assert not result.complete
        assert result.execution_time == 0.0
        assert pg_engine.clock.now == 0.0

    def test_execution_deterministic(self, pg_engine):
        a = pg_engine.execute(JOIN_SQL).execution_time
        b = pg_engine.execute(JOIN_SQL).execution_time
        assert a == b

    def test_estimate_does_not_advance_clock(self, pg_engine):
        pg_engine.estimate_seconds(JOIN_SQL)
        assert pg_engine.clock.now == 0.0

    def test_execute_query_object(self, pg_engine, tiny_workload):
        result = pg_engine.execute(tiny_workload.query("join_all"))
        assert result.complete

    def test_execute_rejects_garbage(self, pg_engine):
        with pytest.raises(ConfigurationError):
            pg_engine.execute(12345)

    def test_run_workload_totals(self, pg_engine, tiny_workload):
        total = pg_engine.run_workload(list(tiny_workload.queries))
        assert total == pytest.approx(pg_engine.clock.now)

    def test_plan_included_in_result(self, pg_engine):
        result = pg_engine.execute(JOIN_SQL)
        assert result.plan is not None
        assert result.plan.joins

    def test_config_change_invalidates_plan_cache(self, pg_engine):
        before = pg_engine.estimate_seconds(JOIN_SQL)
        pg_engine.set_many({"shared_buffers": "16GB", "work_mem": "1GB"})
        after = pg_engine.estimate_seconds(JOIN_SQL)
        assert after != before

    def test_query_info_cached(self, pg_engine):
        info1 = pg_engine.query_info(JOIN_SQL)
        info2 = pg_engine.query_info(JOIN_SQL)
        assert info1 is info2

    def test_snapshot_shape(self, pg_engine):
        snapshot = pg_engine.snapshot()
        assert snapshot["system"] == "postgres"
        assert "config" in snapshot and "indexes" in snapshot
