"""Catalog and statistics tests."""

import pytest

from repro.db.catalog import PAGE_SIZE, Catalog, Column, Table
from repro.errors import CatalogError


class TestColumn:
    def test_distinct_values_unique_column(self):
        column = Column("id", ndv=-1)
        assert column.distinct_values(1000) == 1000

    def test_distinct_values_capped_by_rows(self):
        column = Column("x", ndv=500)
        assert column.distinct_values(100) == 100

    def test_distinct_values_normal(self):
        assert Column("x", ndv=50).distinct_values(1000) == 50

    def test_distinct_values_at_least_one(self):
        assert Column("x", ndv=5).distinct_values(0) == 1


class TestTable:
    def test_row_width_sums_columns(self):
        table = Table("t", 10, {"a": Column("a", 4), "b": Column("b", 12)})
        assert table.row_width == 16

    def test_row_width_minimum_one(self):
        assert Table("t", 10).row_width == 1

    def test_pages_rounds_up(self):
        table = Table("t", 1, {"a": Column("a", 10)})
        assert table.pages == 1
        big = Table("t2", PAGE_SIZE, {"a": Column("a", 2)})
        assert big.pages == 2

    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", -1)

    def test_unknown_column_lookup(self):
        table = Table("t", 10)
        with pytest.raises(CatalogError):
            table.column("nope")


class TestCatalog:
    def test_add_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table("Users", 10, [Column("id")])
        assert catalog.table("USERS").name == "users"
        assert catalog.has_table("users")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table("t", 1)
        with pytest.raises(CatalogError):
            catalog.add_table("T", 1)

    def test_duplicate_column_rejected(self):
        catalog = Catalog()
        catalog.add_table("t", 1, [Column("x")])
        with pytest.raises(CatalogError):
            catalog.add_column("t", Column("x"))

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("ghost")

    def test_tables_listing(self, tiny_catalog):
        names = {table.name for table in tiny_catalog.tables}
        assert names == {"users", "events"}

    def test_total_size(self, tiny_catalog):
        expected = sum(t.size_bytes for t in tiny_catalog.tables)
        assert tiny_catalog.total_size_bytes == expected

    def test_resolve_column(self, tiny_catalog):
        table, column = tiny_catalog.resolve_column("users.age")
        assert table.name == "users"
        assert column.name == "age"

    def test_resolve_requires_qualification(self, tiny_catalog):
        with pytest.raises(CatalogError):
            tiny_catalog.resolve_column("age")


class TestColumnOwnerMap:
    def test_unique_columns_mapped(self, tiny_catalog):
        owner = tiny_catalog.column_owner_map()
        assert owner["age"] == "users"
        assert owner["kind"] == "events"

    def test_ambiguous_columns_omitted(self):
        catalog = Catalog()
        catalog.add_table("a", 1, [Column("id")])
        catalog.add_table("b", 1, [Column("id")])
        assert "id" not in catalog.column_owner_map()


class TestScaling:
    def test_scaled_rows(self, tiny_catalog):
        scaled = tiny_catalog.scaled(10.0)
        assert scaled.table("users").rows == 100_000
        assert scaled.table("events").rows == 5_000_000

    def test_scaled_preserves_columns(self, tiny_catalog):
        scaled = tiny_catalog.scaled(2.0)
        assert set(scaled.table("users").columns) == {"user_id", "country", "age"}

    def test_scaled_keeps_small_ndv(self, tiny_catalog):
        # A 50-country column stays at 50 distinct values at any scale.
        scaled = tiny_catalog.scaled(10.0)
        assert scaled.table("users").column("country").ndv == 50

    def test_scaled_grows_large_ndv(self, tiny_catalog):
        scaled = tiny_catalog.scaled(10.0)
        assert scaled.table("events").column("payload").ndv == 1_000_000

    def test_invalid_scale_rejected(self, tiny_catalog):
        with pytest.raises(CatalogError):
            tiny_catalog.scaled(0)

    def test_original_untouched(self, tiny_catalog):
        tiny_catalog.scaled(5.0)
        assert tiny_catalog.table("users").rows == 10_000
