"""Vectorized planner equivalence properties.

The contract under test: ``Planner.plan_many`` through
``repro.db.planner_vec`` produces plan-for-plan identical trees and
bit-identical cost floats to the retained scalar reference
(``Planner.plan``), over randomized generated workloads, across
PYTHONHASHSEED subprocesses, across executors, and under catalog
mutation (generation-counter invalidation of ``CatalogStats``).

The unmarked tests are the fast smoke subset that tier-1 always runs;
the randomized sweeps and subprocess matrices carry ``slow``.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.db.planner as planner_module
from repro.db import catalog_stats as catalog_stats_module
from repro.db.catalog import Column
from repro.db.catalog_stats import catalog_stats
from repro.db.cost_model import (
    RuntimeEnv,
    cache_hit_ratio,
    cache_hit_ratio_array,
    deterministic_noise,
    deterministic_noise_vector,
    oversubscription_penalty,
    oversubscription_penalty_array,
    parallel_speedup,
    parallel_speedup_array,
    spill_passes,
    spill_passes_array,
)
from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.mysql import MySQLEngine
from repro.db.postgres import PostgresEngine
from repro.sql.analyzer import QueryInfo
from repro.workloads.generator import synthetic_workload

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def plan_fingerprint(plan):
    """Bit-exact identity of a QueryPlan (floats via repr)."""
    return (
        tuple(
            (
                scan.table,
                scan.method,
                scan.index.key if scan.index else None,
                repr(scan.in_rows),
                repr(scan.out_rows),
                repr(scan.estimated_cost),
                repr(scan.actual_cost),
            )
            for scan in plan.scans
        ),
        tuple(
            (
                join.inner_table,
                join.method,
                str(join.condition) if join.condition else None,
                join.index.key if join.index else None,
                repr(join.out_rows),
                repr(join.estimated_cost),
                repr(join.actual_cost),
            )
            for join in plan.joins
        ),
        repr(plan.post_estimated_cost),
        repr(plan.post_actual_cost),
        repr(plan.out_rows),
    )


def add_leading_indexes(engine, catalog, wide=False):
    """Index the first column of every table (and a composite when wide)."""
    for table in catalog.tables:
        columns = list(table.columns)
        engine.create_index(Index(table=table.name, columns=(columns[0],)))
        if wide and len(columns) > 1:
            engine.create_index(
                Index(table=table.name, columns=(columns[1], columns[0]))
            )


def assert_vectorized_matches_reference(engine, queries):
    """The core property: batched output == per-query reference output."""
    saved = planner_module.VECTORIZED_ENABLED
    try:
        planner_module.VECTORIZED_ENABLED = False
        reference = [
            (plan_fingerprint(engine.explain(query)),
             repr(engine.estimate_seconds(query)))
            for query in queries
        ]
        engine._plan_cache.clear()
        planner_module.VECTORIZED_ENABLED = True
        plans = engine.plan_many(queries)
        seconds = engine.estimate_many(queries)
    finally:
        planner_module.VECTORIZED_ENABLED = saved
    vectorized = [
        (plan_fingerprint(plan), repr(value))
        for plan, value in zip(plans, seconds)
    ]
    assert vectorized == reference


class TestArrayKernels:
    """Each array kernel is elementwise bit-identical to its scalar twin."""

    ENV = RuntimeEnv(
        buffer_pool_bytes=2 * 1024**3,
        sort_hash_mem_bytes=64 * 1024**2,
        agg_mem_bytes=64 * 1024**2,
        maintenance_mem_bytes=64 * 1024**2,
        parallel_workers=4,
        io_concurrency=16.0,
        logging_factor=1.0,
        swap_factor=1.0,
        hardware=HardwareSpec(memory_gb=61.0, cores=8),
    )

    BYTES = [0, 1, 4096, 64 * 1024, 64 * 1024 + 1, 10**6, 10**9, 3 * 10**10]

    def test_cache_hit_ratio(self):
        result = cache_hit_ratio_array(
            self.ENV, np.array(self.BYTES, dtype=np.float64)
        )
        expected = [cache_hit_ratio(self.ENV, value) for value in self.BYTES]
        assert result.tolist() == expected

    def test_spill_passes(self):
        for memory in (0, 64 * 1024, 64 * 1024**2):
            result = spill_passes_array(
                np.array(self.BYTES, dtype=np.float64), memory
            )
            expected = [spill_passes(value, memory) for value in self.BYTES]
            assert result.tolist() == expected

    def test_parallel_speedup(self):
        workers = [1, 2, 3, 4, 7, 8, 9, 64]
        for cores in (1, 8):
            result = parallel_speedup_array(np.array(workers), cores)
            expected = [parallel_speedup(value, cores) for value in workers]
            assert result.tolist() == expected

    def test_oversubscription_penalty(self):
        memory = 4 * 1024**3
        allocated = [0, memory // 2, int(memory * 0.8), memory, 3 * memory]
        result = oversubscription_penalty_array(
            np.array(allocated, dtype=np.float64), memory
        )
        expected = [
            oversubscription_penalty(value, memory) for value in allocated
        ]
        assert result.tolist() == expected

    def test_deterministic_noise(self):
        draws = [("postgres", f"q{n}", n * 17) for n in range(32)]
        result = deterministic_noise_vector(draws)
        expected = [deterministic_noise(*parts) for parts in draws]
        assert result.tolist() == expected

    def test_index_fanout_constant_in_sync(self):
        # catalog_stats duplicates the planner constant to avoid an
        # import cycle; they must never drift apart.
        assert catalog_stats_module.INDEX_FANOUT == planner_module._INDEX_FANOUT


class TestVectorizedSmoke:
    """Fast tier-1 coverage of the batched path end to end."""

    def test_matches_reference_on_synthetic(self):
        workload = synthetic_workload(seed=5, queries=40, scale=1.0)
        engine = PostgresEngine(
            workload.catalog, HardwareSpec(memory_gb=61.0, cores=8)
        )
        add_leading_indexes(engine, workload.catalog)
        assert_vectorized_matches_reference(engine, workload.queries)

    def test_matches_reference_on_tiny_fixture(self, pg_engine, tiny_workload):
        assert_vectorized_matches_reference(pg_engine, tiny_workload.queries)

    def test_single_query_and_empty_batches(self, pg_engine, tiny_workload):
        assert pg_engine.plan_many([]) == []
        assert pg_engine.estimate_many([]) == []
        query = tiny_workload.queries[0]
        assert plan_fingerprint(
            pg_engine.plan_many([query])[0]
        ) == plan_fingerprint(pg_engine.explain(query))
        assert pg_engine.estimate_many([query]) == [
            pg_engine.estimate_seconds(query)
        ]

    def test_tableless_queries_plan_to_constants(self, tiny_catalog):
        from repro.db.planner import Planner

        engine = PostgresEngine(tiny_catalog)
        planner = Planner(
            tiny_catalog, {}, engine.planner_costs(), engine.runtime_env()
        )
        infos = [QueryInfo(), QueryInfo(tables={"users"})]
        vectorized = planner.plan_many(infos, vectorized=True)
        reference = [planner.plan(info) for info in infos]
        assert [plan_fingerprint(plan) for plan in vectorized] == [
            plan_fingerprint(plan) for plan in reference
        ]
        assert vectorized[0].out_rows == 1.0

    def test_disabled_flag_uses_scalar_path(self, pg_engine, tiny_workload):
        saved = planner_module.VECTORIZED_ENABLED
        try:
            planner_module.VECTORIZED_ENABLED = False
            plans = pg_engine.plan_many(tiny_workload.queries)
        finally:
            planner_module.VECTORIZED_ENABLED = saved
        expected = [pg_engine.explain(query) for query in tiny_workload.queries]
        assert [plan_fingerprint(plan) for plan in plans] == [
            plan_fingerprint(plan) for plan in expected
        ]


class TestCatalogStatsInvalidation:
    def test_generation_bump_rebuilds_view(self):
        workload = synthetic_workload(seed=2, queries=10, scale=1.0)
        catalog = workload.catalog
        first = catalog_stats(catalog)
        assert catalog_stats(catalog) is first  # cached while unchanged
        catalog.add_table(
            "late_arrival",
            5_000,
            [Column("late_arrival_id", 4, is_primary_key=True),
             Column("late_arrival_value", 8, 500)],
        )
        second = catalog_stats(catalog)
        assert second is not first
        assert second.generation == catalog.generation
        assert "late_arrival" in second.table_id

    def test_plans_stay_correct_across_mutation(self):
        workload = synthetic_workload(seed=4, queries=30, scale=1.0)
        engine = PostgresEngine(
            workload.catalog, HardwareSpec(memory_gb=61.0, cores=8)
        )
        assert_vectorized_matches_reference(engine, workload.queries)
        # Mutate the catalog (generation bump) and require the batched
        # path to re-derive everything rather than serve stale arrays.
        workload.catalog.add_table(
            "mutation_probe",
            1_000,
            [Column("mutation_probe_id", 4, is_primary_key=True)],
        )
        engine._plan_cache.clear()
        assert_vectorized_matches_reference(engine, workload.queries)

    def test_index_creation_is_picked_up(self):
        workload = synthetic_workload(seed=6, queries=30, scale=1.0)
        engine = PostgresEngine(
            workload.catalog, HardwareSpec(memory_gb=61.0, cores=8)
        )
        assert_vectorized_matches_reference(engine, workload.queries)
        add_leading_indexes(engine, workload.catalog, wide=True)
        assert_vectorized_matches_reference(engine, workload.queries)


@pytest.mark.slow
class TestRandomizedProperty:
    """Randomized sweep: many seeds, shapes, engines, and knob settings."""

    KNOB_VARIANTS = {
        "postgres": [
            {},
            {"random_page_cost": 1.1, "work_mem": "64kB"},
            {"enable_hashjoin": "off", "enable_mergejoin": "off"},
            {"enable_nestloop": "off"},
            {
                "shared_buffers": "128MB",
                "work_mem": "64kB",
                "max_parallel_workers_per_gather": 0,
            },
        ],
        "mysql": [
            {},
            {"sort_buffer_size": "65536", "join_buffer_size": "65536"},
            {"innodb_buffer_pool_size": "134217728"},
        ],
    }

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_randomized_workloads(self, seed):
        workload = synthetic_workload(
            seed=seed,
            queries=60,
            scale=float(1 + seed * 7),
            dimension_tables=4 + seed,
            max_joins=3 + (seed % 3),
            max_filters=2 + (seed % 3),
        )
        for make, system in ((PostgresEngine, "postgres"), (MySQLEngine, "mysql")):
            engine = make(
                workload.catalog, HardwareSpec(memory_gb=61.0, cores=8)
            )
            add_leading_indexes(engine, workload.catalog, wide=(seed % 2 == 0))
            for config in self.KNOB_VARIANTS[system]:
                engine.apply_config(config)
                assert_vectorized_matches_reference(engine, workload.queries)


_HASH_SEED_SCRIPT = (
    "import repro.db.planner as planner_module;"
    "from repro.db.postgres import PostgresEngine;"
    "from repro.db.hardware import HardwareSpec;"
    "from repro.db.indexes import Index;"
    "from repro.workloads.generator import synthetic_workload;"
    "w = synthetic_workload(seed=5, queries=60, scale=3.0);"
    "e = PostgresEngine(w.catalog, HardwareSpec(memory_gb=61.0, cores=8));"
    "[e.create_index(Index(table=t.name, columns=(list(t.columns)[0],)))"
    " for t in w.catalog.tables];"
    "planner_module.VECTORIZED_ENABLED = {vectorized};"
    "print('|'.join(repr(s) for s in e.estimate_many(w.queries)))"
)


@pytest.mark.slow
class TestCrossProcess:
    """Hash-seed independence of the batched path, vs the reference."""

    @staticmethod
    def _run(script: str, hash_seed: str) -> str:
        python_path = _SRC_DIR
        if os.environ.get("PYTHONPATH"):
            python_path += os.pathsep + os.environ["PYTHONPATH"]
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                "PYTHONPATH": python_path,
            },
            check=True,
        )
        return result.stdout.strip()

    def test_vectorized_matches_reference_across_hash_seeds(self):
        outputs = {
            self._run(
                _HASH_SEED_SCRIPT.format(vectorized=vectorized), hash_seed
            )
            for vectorized in ("True", "False")
            for hash_seed in ("1", "2")
        }
        # All four (path, hash seed) combinations print the same bits.
        assert len(outputs) == 1


@pytest.mark.slow
class TestExecutorEquivalence:
    """Vectorized planning is invisible to every selection executor."""

    def _selection_fingerprint(self, tpch, vectorized, **selector_kwargs):
        from repro.core.evaluator import ConfigurationEvaluator
        from repro.core.selector import (
            ConfigurationSelector,
            ParallelConfigurationSelector,
        )
        from repro.core.tuner import LambdaTune, LambdaTuneOptions
        from repro.llm.mock import SimulatedLLM

        saved = planner_module.VECTORIZED_ENABLED
        try:
            planner_module.VECTORIZED_ENABLED = vectorized
            engine = PostgresEngine(tpch.catalog)
            options = LambdaTuneOptions(
                token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
            )
            tuner = LambdaTune(engine, SimulatedLLM(), options)
            configs = tuner.sample_configurations(
                tuner.generate_prompt(list(tpch.queries))
            )
            evaluator = ConfigurationEvaluator(engine, cluster_seed=9)
            if selector_kwargs:
                selector = ParallelConfigurationSelector(
                    engine,
                    evaluator,
                    initial_timeout=0.5,
                    alpha=2.0,
                    **selector_kwargs,
                )
            else:
                selector = ConfigurationSelector(
                    engine, evaluator, initial_timeout=0.5, alpha=2.0
                )
            selection = selector.select(list(tpch.queries), configs)
        finally:
            planner_module.VECTORIZED_ENABLED = saved
        return (
            repr(selection.best.time),
            selection.best.config.name if selection.best.config else None,
            tuple(
                (name, repr(meta.time), meta.is_complete)
                for name, meta in sorted(selection.meta.items())
            ),
        )

    def test_all_executors_match_scalar_reference(self, tpch):
        reference = self._selection_fingerprint(tpch, vectorized=False)
        assert self._selection_fingerprint(tpch, vectorized=True) == reference
        for kwargs in (
            {"workers": 2, "executor": "serial"},
            {"workers": 2, "executor": "thread"},
            {"workers": 2, "executor": "process"},
        ):
            assert (
                self._selection_fingerprint(tpch, vectorized=True, **kwargs)
                == reference
            )
