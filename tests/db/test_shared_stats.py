"""Zero-copy shared-memory catalog stats (``repro.db.shared_stats``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import catalog_stats as catalog_stats_module
from repro.db.catalog_stats import CatalogStats, catalog_stats
from repro.db.shared_stats import (
    ARRAY_FIELDS,
    attach_shared_stats,
    attachment_probe,
    clear_shared_refs,
    publish_catalog_stats,
    register_shared_refs,
)


@pytest.fixture(autouse=True)
def _clean_registrations():
    clear_shared_refs()
    yield
    clear_shared_refs()


@pytest.fixture()
def fresh_catalog(tiny_catalog):
    """The tiny catalog without a cached stats view (as a worker sees it)."""
    tiny_catalog.__dict__.pop("_catalog_stats", None)
    return tiny_catalog


class TestPublishAttach:
    def test_attached_arrays_are_bitwise_equal(self, fresh_catalog):
        built = CatalogStats.build(fresh_catalog)
        with publish_catalog_stats([fresh_catalog]) as publication:
            register_shared_refs(publication.refs)
            attached = attach_shared_stats(fresh_catalog)
            assert attached is not None
            for name in ARRAY_FIELDS:
                np.testing.assert_array_equal(
                    getattr(attached, name), getattr(built, name)
                )
            assert attached.names == built.names
            assert attached.table_id == built.table_id
            assert attached.column_id == built.column_id
            assert attached.size_bytes_int == built.size_bytes_int

    def test_attached_views_are_read_only_and_not_owned(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog]) as publication:
            register_shared_refs(publication.refs)
            attached = attach_shared_stats(fresh_catalog)
            for name in ARRAY_FIELDS:
                view = getattr(attached, name)
                assert view.flags["OWNDATA"] is False
                assert view.flags["WRITEABLE"] is False
                with pytest.raises(ValueError):
                    view[...] = 0.0

    def test_duplicate_catalogs_share_one_segment(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog, fresh_catalog]) as pub:
            assert len(pub.refs) == 1
            assert len(pub._segments) == 1

    def test_attach_is_keyed_on_content_fingerprint(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog]) as publication:
            register_shared_refs(publication.refs)
            fresh_catalog.add_table("extra", 10)
            # The mutated catalog no longer matches the published ref.
            assert attach_shared_stats(fresh_catalog) is None

    def test_late_attach_after_close_misses(self, fresh_catalog):
        publication = publish_catalog_stats([fresh_catalog])
        register_shared_refs(publication.refs)
        publication.close()
        clear_shared_refs()
        register_shared_refs(publication.refs)
        assert attach_shared_stats(fresh_catalog) is None

    def test_close_is_idempotent(self, fresh_catalog):
        publication = publish_catalog_stats([fresh_catalog])
        publication.close()
        publication.close()


class TestHookIntegration:
    def test_catalog_stats_prefers_shared_attach(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog]) as publication:
            # Publishing builds (and caches) local stats; a worker's
            # unpickled catalog arrives without that cache.
            fresh_catalog.__dict__.pop("_catalog_stats", None)
            register_shared_refs(publication.refs)
            stats = catalog_stats(fresh_catalog)
            assert stats.shared is True
            assert stats.generation == fresh_catalog.generation
            # Cached on the catalog: same object on re-query.
            assert catalog_stats(fresh_catalog) is stats

    def test_probe_reports_shared_attach(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog]) as publication:
            fresh_catalog.__dict__.pop("_catalog_stats", None)
            register_shared_refs(publication.refs)
            probe = attachment_probe(fresh_catalog)
        assert probe["shared"] is True
        assert probe["owndata"] is False
        assert probe["writeable"] is False

    def test_local_build_without_registration(self, fresh_catalog):
        stats = catalog_stats(fresh_catalog)
        assert stats.shared is False
        assert stats.rows.flags["OWNDATA"] or stats.rows.base is not None

    def test_clear_refs_disarms_hook(self, fresh_catalog):
        with publish_catalog_stats([fresh_catalog]) as publication:
            register_shared_refs(publication.refs)
            assert catalog_stats_module.SHARED_ATTACH_HOOK is not None
        clear_shared_refs()
        assert catalog_stats_module.SHARED_ATTACH_HOOK is None

    def test_planner_results_identical_via_shared_stats(self, fresh_catalog):
        """An attached view is indistinguishable to the planning engine."""
        from repro.db.postgres import PostgresEngine
        from repro.workloads.base import Query

        query = Query.from_sql(
            "q",
            "SELECT count(*) FROM users WHERE country = 'US'",
            fresh_catalog,
        )
        local_plan = repr(PostgresEngine(fresh_catalog).explain(query))
        fresh_catalog.__dict__.pop("_catalog_stats", None)
        with publish_catalog_stats([fresh_catalog]) as publication:
            fresh_catalog.__dict__.pop("_catalog_stats", None)
            register_shared_refs(publication.refs)
            shared_plan = repr(PostgresEngine(fresh_catalog).explain(query))
            assert catalog_stats(fresh_catalog).shared is True
        assert shared_plan == local_plan


class TestPickling:
    def test_catalog_pickle_drops_stats_view(self, fresh_catalog):
        import pickle

        catalog_stats(fresh_catalog)
        assert "_catalog_stats" in fresh_catalog.__dict__
        clone = pickle.loads(pickle.dumps(fresh_catalog))
        assert "_catalog_stats" not in clone.__dict__
        assert clone.content_fingerprint() == fresh_catalog.content_fingerprint()
