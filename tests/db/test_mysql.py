"""MySQL/InnoDB-specific knob semantics."""

import pytest

from repro.db.mysql import MySQLEngine, recommended_buffer_pool


JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)


class TestBufferPool:
    def test_bigger_pool_is_faster(self, tiny_catalog):
        from repro.db.hardware import HardwareSpec

        # RAM barely above the ~38MB working set so the pool size
        # actually moves the hit ratio.
        engine = MySQLEngine(tiny_catalog, HardwareSpec(0.04, 4))
        engine.set_many({
            "sort_buffer_size": "32kB",
            "join_buffer_size": "1kB",
            "innodb_log_buffer_size": "1MB",
            "innodb_buffer_pool_size": "5MB",
        })
        cold = engine.estimate_seconds(JOIN_SQL)
        engine.set_many({"innodb_buffer_pool_size": "24MB"})
        warm = engine.estimate_seconds(JOIN_SQL)
        assert warm < cold

    def test_o_direct_improves_pool_effectiveness(self, mysql_engine):
        mysql_engine.set_many({"innodb_buffer_pool_size": "256MB"})
        double_buffered = mysql_engine._runtime_env().buffer_pool_bytes  # noqa: SLF001
        mysql_engine.set_many({"innodb_flush_method": "o_direct"})
        direct = mysql_engine._runtime_env().buffer_pool_bytes  # noqa: SLF001
        assert direct > double_buffered

    def test_manual_recommendation_helper(self):
        assert recommended_buffer_pool(10 * 1024**3) == 7 * 1024**3


class TestJoinBuffers:
    def test_join_buffer_fixes_spills(self, mysql_engine):
        tiny = mysql_engine.estimate_seconds(JOIN_SQL)
        mysql_engine.set_many({"join_buffer_size": "512MB",
                               "sort_buffer_size": "128MB"})
        big = mysql_engine.estimate_seconds(JOIN_SQL)
        assert big < tiny

    def test_default_mysql_slower_than_default_postgres(
        self, mysql_engine, pg_engine
    ):
        # Tiny default join/sort buffers make untuned MySQL the slower
        # OLAP system, as in the paper's experiments.
        assert mysql_engine.estimate_seconds(JOIN_SQL) > pg_engine.estimate_seconds(
            JOIN_SQL
        )


class TestConnectionsOversubscription:
    def test_many_connections_with_big_buffers_swaps(self, mysql_engine):
        sane = mysql_engine.estimate_seconds(JOIN_SQL)
        mysql_engine.set_many({
            "join_buffer_size": "2GB",
            "sort_buffer_size": "2GB",
            "max_connections": 1000,
        })
        swapped = mysql_engine.estimate_seconds(JOIN_SQL)
        assert swapped > sane


class TestOptimizerSearchDepth:
    def test_depth_changes_join_order_quality(self, tpch):
        engine_full = MySQLEngine(tpch.catalog)
        engine_greedy = MySQLEngine(tpch.catalog)
        engine_greedy.set_many({"optimizer_search_depth": 1})
        query = tpch.query("q5")
        assert engine_greedy.estimate_seconds(query) >= engine_full.estimate_seconds(
            query
        )


class TestNoParallelQuery:
    # Generic identity/round-trip checks live in test_conformance.py;
    # single-threaded execution is the MySQL-specific property.
    def test_no_parallel_query(self, mysql_engine):
        env = mysql_engine._runtime_env()  # noqa: SLF001
        assert env.parallel_workers == 1


class TestLoggingFactor:
    """Each durability/housekeeping knob contributes its haircut."""

    def logging(self, engine) -> float:
        return engine._runtime_env().logging_factor  # noqa: SLF001

    def test_relaxed_trx_commit_reduces_logging_cost(self, mysql_engine):
        strict = self.logging(mysql_engine)
        mysql_engine.set_many({"innodb_flush_log_at_trx_commit": 2})
        assert self.logging(mysql_engine) == pytest.approx(strict - 0.003)

    def test_small_redo_log_penalized(self, mysql_engine):
        mysql_engine.set_many({"innodb_log_file_size": "1GB"})
        big = self.logging(mysql_engine)
        mysql_engine.set_many({"innodb_log_file_size": "64MB"})
        assert self.logging(mysql_engine) == pytest.approx(big + 0.003)

    def test_disabling_adaptive_hash_index_penalized(self, mysql_engine):
        enabled = self.logging(mysql_engine)
        mysql_engine.set_many({"innodb_adaptive_hash_index": False})
        assert self.logging(mysql_engine) == pytest.approx(enabled + 0.01)

    def test_low_io_capacity_penalized(self, mysql_engine):
        mysql_engine.set_many({"innodb_io_capacity": 2000})
        tuned = self.logging(mysql_engine)
        mysql_engine.set_many({"innodb_io_capacity": 200})
        assert self.logging(mysql_engine) == pytest.approx(tuned + 0.002)

    def test_small_table_open_cache_penalized(self, mysql_engine):
        mysql_engine.set_many({"table_open_cache": 4000})
        tuned = self.logging(mysql_engine)
        mysql_engine.set_many({"table_open_cache": 100})
        assert self.logging(mysql_engine) == pytest.approx(tuned + 0.002)

    def test_small_thread_cache_penalized(self, mysql_engine):
        mysql_engine.set_many({"thread_cache_size": 16})
        tuned = self.logging(mysql_engine)
        mysql_engine.set_many({"thread_cache_size": 4})
        assert self.logging(mysql_engine) == pytest.approx(tuned + 0.001)


class TestIOAndMemoryDerivations:
    def test_io_threads_raise_io_concurrency(self, mysql_engine):
        base = mysql_engine._runtime_env().io_concurrency  # noqa: SLF001
        mysql_engine.set_many({"innodb_read_io_threads": 32})
        more_threads = mysql_engine._runtime_env().io_concurrency  # noqa: SLF001
        assert more_threads > base
        mysql_engine.set_many({"innodb_parallel_read_threads": 16})
        with_parallel_read = mysql_engine._runtime_env().io_concurrency  # noqa: SLF001
        assert with_parallel_read > more_threads

    def test_agg_memory_is_min_of_tmp_and_heap_limits(self, mysql_engine):
        mysql_engine.set_many({
            "tmp_table_size": "64MB",
            "max_heap_table_size": "16MB",
        })
        env = mysql_engine._runtime_env()  # noqa: SLF001
        assert env.agg_mem_bytes == 16 * 1024**2

    def test_maintenance_memory_floor(self, mysql_engine):
        mysql_engine.set_many({"sort_buffer_size": "256kB"})
        env = mysql_engine._runtime_env()  # noqa: SLF001
        assert env.maintenance_mem_bytes == 32 * 1024**2
        mysql_engine.set_many({"sort_buffer_size": "128MB"})
        env = mysql_engine._runtime_env()  # noqa: SLF001
        assert env.maintenance_mem_bytes == 128 * 1024**2


class TestPlannerDerivations:
    def test_search_depth_zero_means_exhaustive_62(self, mysql_engine):
        mysql_engine.set_many({"optimizer_search_depth": 0})
        costs = mysql_engine._planner_costs()  # noqa: SLF001
        assert costs.join_search_depth == 62

    def test_buffer_pool_doubles_as_effective_cache(self, mysql_engine):
        mysql_engine.set_many({"innodb_buffer_pool_size": "2GB"})
        costs = mysql_engine._planner_costs()  # noqa: SLF001
        assert costs.effective_cache_bytes == 2 * 1024**3

    def test_restart_costs_three_seconds(self, mysql_engine):
        before = mysql_engine.clock.now
        seconds = mysql_engine.apply_config({"innodb_buffer_pool_size": "1GB"})
        assert seconds == 3.0
        assert mysql_engine.clock.now == before + 3.0
