"""MySQL/InnoDB-specific knob semantics."""

import pytest

from repro.db.mysql import MySQLEngine, recommended_buffer_pool


JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)


class TestBufferPool:
    def test_bigger_pool_is_faster(self, tiny_catalog):
        from repro.db.hardware import HardwareSpec

        # RAM barely above the ~38MB working set so the pool size
        # actually moves the hit ratio.
        engine = MySQLEngine(tiny_catalog, HardwareSpec(0.04, 4))
        engine.set_many({
            "sort_buffer_size": "32kB",
            "join_buffer_size": "1kB",
            "innodb_log_buffer_size": "1MB",
            "innodb_buffer_pool_size": "5MB",
        })
        cold = engine.estimate_seconds(JOIN_SQL)
        engine.set_many({"innodb_buffer_pool_size": "24MB"})
        warm = engine.estimate_seconds(JOIN_SQL)
        assert warm < cold

    def test_o_direct_improves_pool_effectiveness(self, mysql_engine):
        mysql_engine.set_many({"innodb_buffer_pool_size": "256MB"})
        double_buffered = mysql_engine._runtime_env().buffer_pool_bytes  # noqa: SLF001
        mysql_engine.set_many({"innodb_flush_method": "o_direct"})
        direct = mysql_engine._runtime_env().buffer_pool_bytes  # noqa: SLF001
        assert direct > double_buffered

    def test_manual_recommendation_helper(self):
        assert recommended_buffer_pool(10 * 1024**3) == 7 * 1024**3


class TestJoinBuffers:
    def test_join_buffer_fixes_spills(self, mysql_engine):
        tiny = mysql_engine.estimate_seconds(JOIN_SQL)
        mysql_engine.set_many({"join_buffer_size": "512MB",
                               "sort_buffer_size": "128MB"})
        big = mysql_engine.estimate_seconds(JOIN_SQL)
        assert big < tiny

    def test_default_mysql_slower_than_default_postgres(
        self, mysql_engine, pg_engine
    ):
        # Tiny default join/sort buffers make untuned MySQL the slower
        # OLAP system, as in the paper's experiments.
        assert mysql_engine.estimate_seconds(JOIN_SQL) > pg_engine.estimate_seconds(
            JOIN_SQL
        )


class TestConnectionsOversubscription:
    def test_many_connections_with_big_buffers_swaps(self, mysql_engine):
        sane = mysql_engine.estimate_seconds(JOIN_SQL)
        mysql_engine.set_many({
            "join_buffer_size": "2GB",
            "sort_buffer_size": "2GB",
            "max_connections": 1000,
        })
        swapped = mysql_engine.estimate_seconds(JOIN_SQL)
        assert swapped > sane


class TestOptimizerSearchDepth:
    def test_depth_changes_join_order_quality(self, tpch):
        engine_full = MySQLEngine(tpch.catalog)
        engine_greedy = MySQLEngine(tpch.catalog)
        engine_greedy.set_many({"optimizer_search_depth": 1})
        query = tpch.query("q5")
        assert engine_greedy.estimate_seconds(query) >= engine_full.estimate_seconds(
            query
        )


class TestSystemIdentity:
    def test_system_name(self, mysql_engine):
        assert mysql_engine.system == "mysql"

    def test_no_parallel_query(self, mysql_engine):
        env = mysql_engine._runtime_env()  # noqa: SLF001
        assert env.parallel_workers == 1
