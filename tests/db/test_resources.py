"""Resource accounting: footprints, budgets, tiers, and the tier ILP."""

import pickle

import pytest

from repro.db.hardware import HardwareSpec
from repro.db.resources import (
    DEFAULT_TIERS,
    HardwareTier,
    ResourceBudget,
    ResourceFootprint,
    cheapest_feasible_tier,
    parse_budget,
)
from repro.errors import ConfigurationError

GB = 1024**3

SMALL = ResourceFootprint(peak_memory_bytes=4 * GB, disk_bytes=50 * GB)
HUGE = ResourceFootprint(peak_memory_bytes=200 * GB, disk_bytes=4096 * GB)


class TestResourceBudget:
    def test_admits_and_violation_agree(self):
        budget = ResourceBudget(max_memory_bytes=8 * GB, max_disk_bytes=100 * GB)
        assert budget.admits(SMALL)
        assert budget.violation(SMALL) == ""
        assert not budget.admits(HUGE)

    def test_memory_violation_reported_first_and_deterministically(self):
        budget = ResourceBudget(max_memory_bytes=8 * GB, max_disk_bytes=100 * GB)
        fat = ResourceFootprint(peak_memory_bytes=32 * GB, disk_bytes=2000 * GB)
        assert budget.violation(fat) == (
            "peak memory 32GB exceeds budget 8GB"
        )

    def test_disk_violation_message(self):
        budget = ResourceBudget(max_disk_bytes=100 * GB)
        fat = ResourceFootprint(peak_memory_bytes=1, disk_bytes=200 * GB)
        assert budget.violation(fat) == (
            "disk footprint 200GB exceeds budget 100GB"
        )

    def test_uncapped_resource_never_violates(self):
        assert ResourceBudget(max_memory_bytes=512 * GB).admits(
            ResourceFootprint(peak_memory_bytes=1, disk_bytes=10**18)
        )

    def test_budget_must_cap_something(self):
        with pytest.raises(ConfigurationError):
            ResourceBudget()

    def test_caps_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ResourceBudget(max_memory_bytes=0)
        with pytest.raises(ConfigurationError):
            ResourceBudget(max_disk_bytes=-1)

    def test_picklable_for_worker_options(self):
        budget = ResourceBudget(max_memory_bytes=8 * GB)
        assert pickle.loads(pickle.dumps(budget)) == budget

    def test_describe_round_trips_through_parse(self):
        budget = ResourceBudget(max_memory_bytes=8 * GB, max_disk_bytes=100 * GB)
        assert budget.describe() == "ram=8GB,disk=100GB"
        assert parse_budget(budget.describe()) == budget


class TestParseBudget:
    def test_full_form(self):
        budget = parse_budget("ram=8GB,disk=100GB")
        assert budget.max_memory_bytes == 8 * GB
        assert budget.max_disk_bytes == 100 * GB

    def test_single_component_and_whitespace(self):
        assert parse_budget(" ram = 512MB ") == ResourceBudget(
            max_memory_bytes=512 * 1024**2
        )

    @pytest.mark.parametrize(
        "text", ["", "cpu=4", "ram", "ram=8GB,ram=4GB", "ram=banana"]
    )
    def test_malformed_specs_raise_typed_error(self, text):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            parse_budget(text)


class TestHardwareTiers:
    def test_ladder_is_price_sorted_and_monotone(self):
        costs = [tier.monthly_cost for tier in DEFAULT_TIERS]
        assert costs == sorted(costs)
        rams = [tier.hardware.memory_bytes for tier in DEFAULT_TIERS]
        assert rams == sorted(rams)

    def test_tier_budget_reflects_its_hardware(self):
        tier = DEFAULT_TIERS[0]
        budget = tier.budget()
        assert budget.max_memory_bytes == tier.hardware.memory_bytes
        assert budget.max_disk_bytes == tier.disk_bytes

    def test_paper_hardware_is_on_the_ladder(self):
        # The paper's p3.2xlarge: 61 GB RAM, 8 cores.
        assert any(
            tier.hardware == HardwareSpec(61.0, 8) for tier in DEFAULT_TIERS
        )


class TestCheapestFeasibleTier:
    METHODS = ["auto", "branch_bound", "greedy"]

    @pytest.mark.parametrize("method", METHODS)
    def test_small_footprint_lands_on_small(self, method):
        tier = cheapest_feasible_tier(SMALL, method=method)
        assert tier is not None and tier.name == "small"

    @pytest.mark.parametrize("method", METHODS)
    def test_nothing_fits_returns_none(self, method):
        assert cheapest_feasible_tier(HUGE, method=method) is None

    def test_all_backends_agree_across_the_ladder(self):
        probes = [
            ResourceFootprint(peak_memory_bytes=m * GB, disk_bytes=d * GB)
            for m, d in [(1, 1), (12, 50), (12, 400), (40, 50), (100, 50)]
        ]
        for footprint in probes:
            picks = {
                method: getattr(
                    cheapest_feasible_tier(footprint, method=method),
                    "name",
                    None,
                )
                for method in self.METHODS
            }
            assert len(set(picks.values())) == 1, (footprint, picks)

    def test_memory_and_disk_both_constrain(self):
        # Fits small's RAM but not its disk: the disk pushes it up.
        footprint = ResourceFootprint(
            peak_memory_bytes=4 * GB, disk_bytes=200 * GB
        )
        tier = cheapest_feasible_tier(footprint)
        assert tier.name == "medium"

    def test_custom_ladder_and_empty_ladder(self):
        solo = (HardwareTier("only", HardwareSpec(8.0, 2), 100 * GB, 5.0),)
        assert cheapest_feasible_tier(SMALL, tiers=solo).name == "only"
        assert cheapest_feasible_tier(SMALL, tiers=()) is None
