"""EXPLAIN cost extraction and plan formatting tests."""

import pytest

from repro.db.explain import (
    format_plan,
    join_condition_values,
    workload_join_conditions,
)
from repro.db.indexes import Index
from repro.sql.analyzer import JoinCondition


JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)


class TestJoinConditionValues:
    def test_values_positive_per_condition(self, pg_engine, tiny_workload):
        values = join_condition_values(pg_engine, list(tiny_workload.queries))
        condition = JoinCondition.make("users.user_id", "events.user_id2")
        assert condition in values
        assert values[condition] > 0

    def test_values_accumulate_over_queries(self, pg_engine, tiny_workload):
        single = join_condition_values(
            pg_engine, [tiny_workload.query("join_all")]
        )
        double = join_condition_values(
            pg_engine,
            [tiny_workload.query("join_all"), tiny_workload.query("join_all")],
        )
        condition = JoinCondition.make("users.user_id", "events.user_id2")
        assert double[condition] == pytest.approx(2 * single[condition])

    def test_workload_join_conditions(self, pg_engine, tiny_workload):
        conditions = workload_join_conditions(
            pg_engine, list(tiny_workload.queries)
        )
        assert len(conditions) == 1

    def test_tpch_values_rank_expensive_joins(self, tpch):
        from repro.db.postgres import PostgresEngine

        engine = PostgresEngine(tpch.catalog)
        values = join_condition_values(engine, list(tpch.queries))
        top = max(values, key=values.get)
        # lineitem joins dominate TPC-H cost.
        assert "lineitem" in top.left or "lineitem" in top.right


class TestFormatPlan:
    def test_scan_only_query(self, pg_engine):
        text = format_plan(pg_engine, "SELECT count(*) FROM events WHERE events.kind = 'x'")
        assert "Seq Scan on events" in text
        assert "est=" in text and "act=" in text

    def test_join_query_shows_pipeline(self, pg_engine):
        text = format_plan(pg_engine, JOIN_SQL)
        assert "Hash Join" in text
        assert "Aggregate/Sort" in text
        assert "users" in text and "events" in text

    def test_index_plan_labelled(self, pg_engine):
        pg_engine.create_index(Index("events", ("user_id2",)))
        pg_engine.set_many(
            {"random_page_cost": 1.1, "effective_cache_size": "45GB"}
        )
        text = format_plan(pg_engine, JOIN_SQL)
        assert "Nested Loop" in text
        assert "idx_events_user_id2" in text

    def test_trivial_query(self, pg_engine):
        assert "Result" in format_plan(pg_engine, "SELECT 1")

    def test_costs_in_output_are_numbers(self, pg_engine):
        import re

        text = format_plan(pg_engine, JOIN_SQL)
        for match in re.finditer(r"(est|act)=([0-9.]+)", text):
            assert float(match.group(2)) >= 0
