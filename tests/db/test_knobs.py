"""Knob space tests: units, validation, PG/MySQL definitions."""

import pytest
from hypothesis import given, strategies as st

from repro.db.knobs import (
    GB,
    MB,
    Knob,
    KnobCategory,
    KnobKind,
    format_size,
    mysql_knob_space,
    parse_size,
    postgres_knob_space,
)
from repro.errors import KnobError


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("16MB", 16 * MB),
            ("2GB", 2 * GB),
            ("1024", 1024),
            ("128kB", 128 * 1024),
            ("1.5GB", int(1.5 * GB)),
            ("4g", 4 * GB),
            ("512m", 512 * MB),
            ("7B", 7),
            (" 8 MB ", 8 * MB),
        ],
    )
    def test_valid_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_plain_numbers_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(1.5) == 1

    @pytest.mark.parametrize("text", ["banana", "12XB", "", "MB"])
    def test_invalid_sizes_raise(self, text):
        with pytest.raises(KnobError):
            parse_size(text)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_format_parse_round_trip_is_close(self, size):
        rendered = format_size(size)
        parsed = parse_size(rendered)
        # format_size rounds to one decimal of the chosen unit.
        assert parsed == pytest.approx(size, rel=0.06, abs=1024)


class TestKnobCoercion:
    def test_size_knob_accepts_strings(self):
        knob = Knob("mem", KnobKind.SIZE, 1, KnobCategory.MEMORY,
                    minimum=0, maximum=10 * GB)
        assert knob.coerce("2GB") == 2 * GB

    def test_size_bounds_enforced(self):
        knob = Knob("mem", KnobKind.SIZE, 1, KnobCategory.MEMORY,
                    minimum=MB, maximum=GB)
        with pytest.raises(KnobError):
            knob.coerce("2GB")
        with pytest.raises(KnobError):
            knob.coerce(1024)

    def test_integer_knob(self):
        knob = Knob("n", KnobKind.INTEGER, 1, KnobCategory.IO,
                    minimum=0, maximum=100)
        assert knob.coerce("42") == 42
        assert knob.coerce(7.0) == 7
        with pytest.raises(KnobError):
            knob.coerce("lots")

    def test_float_knob(self):
        knob = Knob("f", KnobKind.FLOAT, 1.0, KnobCategory.OPTIMIZER,
                    minimum=0.0, maximum=10.0)
        assert knob.coerce("1.5") == 1.5
        with pytest.raises(KnobError):
            knob.coerce("NaN-ish-word")

    @pytest.mark.parametrize("raw,expected", [
        ("on", True), ("ON", True), ("true", True), ("1", True), (True, True),
        ("off", False), ("false", False), ("0", False), (False, False),
    ])
    def test_bool_knob(self, raw, expected):
        knob = Knob("b", KnobKind.BOOL, True, KnobCategory.LOGGING)
        assert knob.coerce(raw) is expected

    def test_bool_rejects_garbage(self):
        knob = Knob("b", KnobKind.BOOL, True, KnobCategory.LOGGING)
        with pytest.raises(KnobError):
            knob.coerce("maybe")

    def test_enum_knob(self):
        knob = Knob("e", KnobKind.ENUM, "fsync", KnobCategory.IO,
                    choices=("fsync", "o_direct"))
        assert knob.coerce("O_DIRECT") == "o_direct"
        with pytest.raises(KnobError):
            knob.coerce("turbo")

    def test_clamp(self):
        knob = Knob("n", KnobKind.INTEGER, 5, KnobCategory.IO,
                    minimum=1, maximum=10)
        assert knob.clamp(-5) == 1
        assert knob.clamp(50) == 10
        assert knob.clamp(7.9) == 7  # integers truncate


class TestKnobSpaces:
    def test_postgres_space_has_paper_knobs(self):
        space = postgres_knob_space()
        for name in ("shared_buffers", "work_mem", "effective_cache_size",
                     "maintenance_work_mem", "checkpoint_completion_target",
                     "wal_buffers", "default_statistics_target",
                     "random_page_cost", "effective_io_concurrency"):
            assert name in space

    def test_postgres_paramtree_constants_present(self):
        space = postgres_knob_space()
        for name in ("cpu_tuple_cost", "cpu_operator_cost",
                     "cpu_index_tuple_cost", "seq_page_cost",
                     "random_page_cost"):
            assert name in space

    def test_mysql_space_has_core_knobs(self):
        space = mysql_knob_space()
        for name in ("innodb_buffer_pool_size", "join_buffer_size",
                     "sort_buffer_size", "tmp_table_size",
                     "innodb_flush_method"):
            assert name in space

    def test_defaults_are_valid(self):
        for space in (postgres_knob_space(), mysql_knob_space()):
            for knob in space:
                assert knob.coerce(knob.default) == knob.default or isinstance(
                    knob.default, (int, float)
                )

    def test_postgres_defaults_match_real_system(self):
        space = postgres_knob_space()
        assert space.knob("shared_buffers").default == 128 * MB
        assert space.knob("work_mem").default == 4 * MB
        assert space.knob("random_page_cost").default == 4.0
        assert space.knob("effective_io_concurrency").default == 1

    def test_mysql_defaults_match_real_system(self):
        space = mysql_knob_space()
        assert space.knob("innodb_buffer_pool_size").default == 128 * MB
        assert space.knob("sort_buffer_size").default == 256 * 1024

    def test_unknown_knob_raises(self):
        with pytest.raises(KnobError):
            postgres_knob_space().knob("does_not_exist")

    def test_lookup_case_insensitive(self):
        assert postgres_knob_space().knob("SHARED_BUFFERS").name == "shared_buffers"

    def test_len_and_iteration(self):
        space = postgres_knob_space()
        assert len(space) == len(list(space)) == len(space.names())

    def test_duplicate_knobs_rejected(self):
        knob = Knob("x", KnobKind.INTEGER, 1, KnobCategory.IO)
        from repro.db.knobs import KnobSpace

        with pytest.raises(KnobError):
            KnobSpace("test", [knob, knob])

    def test_categories_cover_table5_groups(self):
        space = postgres_knob_space()
        categories = {knob.category for knob in space}
        assert {KnobCategory.MEMORY, KnobCategory.OPTIMIZER,
                KnobCategory.IO, KnobCategory.LOGGING} <= categories
