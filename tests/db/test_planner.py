"""Planner behaviour tests against the tiny schema."""

import pytest

from repro.db.indexes import Index
from repro.db.planner import Planner
from repro.db.cost_model import PlannerCosts


def plan_for(engine, sql):
    return engine.explain(sql)


class TestScanChoice:
    def test_seq_scan_without_indexes(self, pg_engine):
        plan = plan_for(pg_engine, "SELECT count(*) FROM events WHERE events.kind = 'x'")
        assert plan.scans[0].method == "seq"

    def test_index_scan_with_selective_filter(self, pg_engine):
        pg_engine.create_index(Index("events", ("payload",)))
        pg_engine.set_knob("random_page_cost", 1.1)
        plan = plan_for(
            pg_engine, "SELECT count(*) FROM events WHERE events.payload = 'x'"
        )
        assert plan.scans[0].method == "index"

    def test_high_random_page_cost_discourages_index(self, pg_engine):
        pg_engine.create_index(Index("events", ("kind",)))
        pg_engine.set_knob("random_page_cost", 100.0)
        pg_engine.set_knob("effective_cache_size", 8192)
        plan = plan_for(
            pg_engine, "SELECT count(*) FROM events WHERE events.kind = 'x'"
        )
        assert plan.scans[0].method == "seq"

    def test_unselective_predicate_prefers_seq(self, pg_engine):
        pg_engine.create_index(Index("events", ("kind",)))
        plan = plan_for(
            pg_engine, "SELECT count(*) FROM events WHERE events.kind <> 'x'"
        )
        assert plan.scans[0].method == "seq"

    def test_filtered_cardinality_reduces_out_rows(self, pg_engine):
        plan = plan_for(
            pg_engine, "SELECT count(*) FROM events WHERE events.kind = 'x'"
        )
        scan = plan.scans[0]
        assert scan.out_rows < scan.in_rows


class TestJoins:
    JOIN_SQL = (
        "SELECT u.country, count(*) FROM users u, events e "
        "WHERE u.user_id = e.user_id2 GROUP BY u.country"
    )

    def test_hash_join_default(self, pg_engine):
        plan = plan_for(pg_engine, self.JOIN_SQL)
        assert plan.joins[0].method == "hash"

    def test_join_condition_recorded(self, pg_engine):
        plan = plan_for(pg_engine, self.JOIN_SQL)
        assert plan.joins[0].condition is not None
        costs = plan.join_estimated_costs()
        assert len(costs) == 1
        assert list(costs.values())[0] > 0

    def test_indexed_nestloop_when_enabled(self, pg_engine):
        pg_engine.create_index(Index("events", ("user_id2",)))
        pg_engine.set_knob("random_page_cost", 1.1)
        pg_engine.set_knob("effective_cache_size", "45GB")
        plan = plan_for(pg_engine, self.JOIN_SQL)
        assert plan.joins[0].method == "nestloop"
        assert plan.joins[0].index is not None

    def test_inl_inner_scan_not_double_counted(self, pg_engine):
        pg_engine.create_index(Index("events", ("user_id2",)))
        pg_engine.set_knob("random_page_cost", 1.1)
        pg_engine.set_knob("effective_cache_size", "45GB")
        plan = plan_for(pg_engine, self.JOIN_SQL)
        probe_scans = [s for s in plan.scans if s.method == "probe"]
        assert probe_scans and all(s.actual_cost == 0.0 for s in probe_scans)

    def test_disabling_hashjoin_changes_method(self, pg_engine):
        pg_engine.set_knob("enable_hashjoin", False)
        pg_engine.set_knob("enable_nestloop", False)
        plan = plan_for(pg_engine, self.JOIN_SQL)
        assert plan.joins[0].method == "merge"

    def test_all_joins_disabled_falls_back_to_nestloop(self, pg_engine):
        for knob in ("enable_hashjoin", "enable_mergejoin", "enable_nestloop"):
            pg_engine.set_knob(knob, False)
        plan = plan_for(pg_engine, self.JOIN_SQL)
        assert plan.joins[0].method == "nestloop"

    def test_cross_product_when_no_condition(self, pg_engine):
        plan = plan_for(pg_engine, "SELECT count(*) FROM users, events")
        assert plan.joins[0].method == "cross"
        assert plan.joins[0].estimated_cost > 1e6

    def test_smaller_filtered_side_drives_join_order(self, pg_engine):
        plan = plan_for(
            pg_engine,
            "SELECT count(*) FROM users u, events e "
            "WHERE u.user_id = e.user_id2 AND u.age = 30",
        )
        # users shrinks to ~125 rows and should be scanned first.
        assert plan.scans[0].table == "users"


class TestPostProcessing:
    def test_group_by_adds_cost(self, pg_engine):
        flat = plan_for(pg_engine, "SELECT count(*) FROM events")
        grouped = plan_for(
            pg_engine, "SELECT events.kind, count(*) FROM events GROUP BY events.kind"
        )
        assert grouped.post_actual_cost > flat.post_actual_cost

    def test_order_by_adds_cost(self, pg_engine):
        plain = plan_for(
            pg_engine, "SELECT events.kind, count(*) FROM events GROUP BY events.kind"
        )
        ordered = plan_for(
            pg_engine,
            "SELECT events.kind, count(*) FROM events GROUP BY events.kind "
            "ORDER BY events.kind",
        )
        assert ordered.post_actual_cost > plain.post_actual_cost

    def test_empty_from_plan(self, pg_engine):
        plan = plan_for(pg_engine, "SELECT 1")
        assert plan.out_rows == 1.0
        assert plan.actual_cost == 0.0


class TestEstimatedVsActualSeparation:
    def test_planner_constants_change_estimates_not_actuals(self, pg_engine):
        sql = "SELECT count(*) FROM events WHERE events.kind = 'x'"
        before = plan_for(pg_engine, sql)
        pg_engine.set_knob("cpu_tuple_cost", 0.09)
        after = plan_for(pg_engine, sql)
        assert after.estimated_cost > before.estimated_cost
        # No plan change is possible here (no indexes), so actual cost
        # must be identical.
        assert after.actual_cost == pytest.approx(before.actual_cost)

    def test_join_search_depth_one_degrades_order(self, tpch):
        from repro.db.postgres import PostgresEngine

        engine = PostgresEngine(tpch.catalog)
        query = tpch.query("q5")
        full = engine.explain(query).actual_cost

        planner = Planner(
            tpch.catalog,
            {},
            PlannerCosts(join_search_depth=1),
            engine._runtime_env(),  # noqa: SLF001 - test introspection
        )
        truncated = planner.plan(query.info).actual_cost
        assert truncated >= full


class TestSelectivityMemoization:
    """The shared selectivity memo is transparent and invalidates correctly."""

    def plan_with_cache(self, engine, sql, cache):
        info = engine.analyze_query(sql)
        planner = Planner(
            engine.catalog,
            engine._indexes,  # noqa: SLF001 - test introspection
            engine.planner_costs(),
            engine._runtime_env(),  # noqa: SLF001 - test introspection
            selectivity_cache=cache,
        )
        return planner.plan(info)

    def test_memoized_plan_matches_unmemoized(self, pg_engine):
        sql = (
            "SELECT count(*) FROM events "
            "WHERE events.kind = 'x' AND events.payload = 'y'"
        )
        cache: dict = {}
        cold = self.plan_with_cache(pg_engine, sql, cache)
        assert cache  # the memo was actually populated
        warm = self.plan_with_cache(pg_engine, sql, cache)
        plain = self.plan_with_cache(pg_engine, sql, None)
        assert cold.actual_cost == warm.actual_cost == plain.actual_cost
        assert cold.estimated_cost == warm.estimated_cost == plain.estimated_cost
        assert [scan.out_rows for scan in cold.scans] == [
            scan.out_rows for scan in warm.scans
        ]

    def test_catalog_mutation_invalidates_memo(self, pg_engine):
        from repro.db.catalog import Column

        catalog = pg_engine.catalog
        sql = "SELECT count(*) FROM events WHERE events.kind = 'x'"
        cache: dict = {}
        before = self.plan_with_cache(pg_engine, sql, cache)
        generation = catalog.generation

        # Schema mutation bumps the generation, so stale entries can
        # never satisfy a lookup made after the change.
        catalog.add_column("events", Column("extra", 8, 10))
        assert catalog.generation > generation
        after = self.plan_with_cache(pg_engine, sql, cache)
        # Two generations coexist in the memo: nothing was overwritten,
        # the new generation simply keys fresh entries.
        generations = {key[1] for key in cache}
        assert generations == {generation, catalog.generation}
        assert after.scans[0].out_rows == before.scans[0].out_rows

    def test_knob_and_index_changes_reuse_memo_safely(self, pg_engine):
        sql = "SELECT count(*) FROM events WHERE events.payload = 'x'"
        cache: dict = {}
        seq_plan = self.plan_with_cache(pg_engine, sql, cache)
        entries = dict(cache)

        # Selectivity is independent of knobs and physical design, so
        # the memo is shared across them -- and the plan still responds
        # to both (an index flips the scan method here).
        pg_engine.set_knob("random_page_cost", 1.1)
        pg_engine.create_index(Index("events", ("payload",)))
        index_plan = self.plan_with_cache(pg_engine, sql, cache)
        assert entries == {
            key: value for key, value in cache.items() if key in entries
        }
        assert seq_plan.scans[0].method == "seq"
        assert index_plan.scans[0].method == "index"

    def test_engine_populates_shared_selectivity_cache(self, pg_engine):
        from repro.db.engine import shared_catalog_cache

        pg_engine.estimate_seconds(
            "SELECT count(*) FROM events WHERE events.kind = 'x'"
        )
        assert shared_catalog_cache(pg_engine.catalog, "selectivity")
