"""The shared engine conformance harness.

Every backend in the registry -- PostgreSQL, MySQL, the columnar
engine, and anything registered later -- must honour the same contract:
valid defaults, typed rejection of bad and hardware-infeasible knob
values, atomic apply/reset round-trips, bit-stable state capture and
fork, deterministic resource footprints, and independence from
``PYTHONHASHSEED``.  This replaces the generic system-identity tests
that used to be copy-pasted per engine in ``test_postgres.py`` /
``test_mysql.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.knobs import HARDWARE_HEADROOM, KnobCategory, KnobKind
from repro.db.registry import (
    available_engines,
    create_engine,
    display_name,
    engine_info,
    register_engine,
    unregister_engine,
)
from repro.errors import HardwareLimitError, KnobError, ReproError
from repro.llm.scripts import render_script

SYSTEMS = available_engines()
HARDWARE = HardwareSpec(memory_gb=61.0, cores=8)
#: Small enough that 4x RAM sits far below the static knob maxima.
TINY_HARDWARE = HardwareSpec(memory_gb=1.0, cores=2)

JOIN_SQL = (
    "SELECT u.country, count(*) FROM users u, events e "
    "WHERE u.user_id = e.user_id2 GROUP BY u.country"
)


@pytest.fixture(params=SYSTEMS)
def system(request) -> str:
    return request.param


@pytest.fixture()
def engine(system, tiny_catalog):
    return create_engine(system, tiny_catalog, HARDWARE)


def memory_pool_knobs(engine):
    """The SIZE/MEMORY knobs -- the ones hardware caps apply to."""
    return [
        knob
        for knob in engine.knob_space
        if knob.kind is KnobKind.SIZE and knob.category is KnobCategory.MEMORY
    ]


def tunable_knob(engine):
    """A deterministic numeric knob with room above its default."""
    for knob in sorted(engine.knob_space, key=lambda k: k.name):
        if knob.kind in (KnobKind.SIZE, KnobKind.INTEGER):
            if knob.maximum is not None and knob.maximum > knob.default:
                value = knob.clamp(knob.default * 2 + 1)
                if knob.hardware_maximum is not None:
                    value = min(value, knob.hardware_maximum)
                if value != knob.default:
                    return knob, value
    raise AssertionError(f"{engine.system}: no tunable numeric knob found")


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"postgres", "mysql", "columnar"} <= set(SYSTEMS)
        assert SYSTEMS == sorted(SYSTEMS)

    def test_create_engine_resolves_system(self, system, tiny_catalog):
        engine = create_engine(system, tiny_catalog, HARDWARE)
        assert engine.system == system
        assert engine.catalog is tiny_catalog
        assert engine.hardware == HARDWARE

    def test_info_carries_display_name(self, system):
        info = engine_info(system)
        assert info.system == system
        assert info.display_name
        assert display_name(system) == info.display_name

    def test_display_names_are_distinct(self):
        names = [display_name(system) for system in SYSTEMS]
        assert len(set(names)) == len(names)

    def test_unknown_system_lists_alternatives(self, tiny_catalog):
        with pytest.raises(ReproError, match="unknown system 'oracle'"):
            create_engine("oracle", tiny_catalog)

    def test_unregistered_display_name_passes_through(self):
        assert display_name("oracle") == "oracle"

    def test_register_duplicate_rejected_then_replaceable(self, tiny_catalog):
        from repro.db.postgres import PostgresEngine

        def factory(catalog, hardware=None, clock=None):
            return PostgresEngine(catalog, hardware, clock=clock)

        with pytest.raises(ReproError):
            register_engine("postgres", factory)
        register_engine("testdb", factory, display_name="TestDB")
        try:
            assert "testdb" in available_engines()
            assert create_engine("testdb", tiny_catalog).system == "postgres"
        finally:
            unregister_engine("testdb")
        assert "testdb" not in available_engines()


class TestKnobContract:
    def test_defaults_coerce_to_themselves(self, engine):
        for knob in engine.knob_space:
            assert knob.coerce(knob.default) == knob.default

    def test_unknown_knob_raises_typed_error(self, engine):
        with pytest.raises(KnobError):
            engine.knob_space.knob("definitely_not_a_knob")

    def test_clamp_respects_static_bounds(self, engine):
        for knob in engine.knob_space:
            if knob.kind in (KnobKind.SIZE, KnobKind.INTEGER, KnobKind.FLOAT):
                if knob.minimum is not None:
                    assert knob.clamp(knob.minimum - 1) == knob.minimum
                if knob.maximum is not None:
                    assert knob.clamp(knob.maximum * 2) == knob.maximum

    def test_memory_pools_carry_hardware_caps(self, engine):
        pools = memory_pool_knobs(engine)
        assert pools, f"{engine.system}: no SIZE/MEMORY knobs declared"
        floor = HARDWARE_HEADROOM * engine.hardware.memory_bytes
        for knob in pools:
            assert knob.hardware_maximum is not None
            assert knob.hardware_maximum == max(floor, knob.default)

    def test_non_memory_knobs_stay_uncapped(self, engine):
        for knob in engine.knob_space:
            if not (
                knob.kind is KnobKind.SIZE
                and knob.category is KnobCategory.MEMORY
            ):
                assert knob.hardware_maximum is None, knob.name


class TestHardwareLimits:
    """Satellite: hardware-derived maxima reject out-of-range samples."""

    def test_over_ram_value_raises_hardware_limit_error(
        self, system, tiny_catalog
    ):
        engine = create_engine(system, tiny_catalog, TINY_HARDWARE)
        for knob in memory_pool_knobs(engine):
            over = knob.hardware_maximum + 1
            if knob.maximum is not None and over > knob.maximum:
                continue  # static bound fires first; typed either way
            with pytest.raises(HardwareLimitError):
                knob.coerce(over)

    def test_hardware_limit_is_a_knob_error(self):
        # The quarantine path catches KnobError; the subtype must flow
        # through it unchanged.
        assert issubclass(HardwareLimitError, KnobError)

    def test_apply_config_rejects_atomically(self, system, tiny_catalog):
        engine = create_engine(system, tiny_catalog, TINY_HARDWARE)
        knob = memory_pool_knobs(engine)[0]
        before = engine.config
        with pytest.raises(KnobError):
            engine.apply_config({knob.name: knob.hardware_maximum + 1})
        assert engine.config == before
        assert engine.clock.now == 0.0

    def test_oversized_llm_sample_line_lands_in_rejected(
        self, system, tiny_catalog
    ):
        """An LLM script asking for >4x RAM parses to a rejected line,
        not a crash -- on every backend."""
        engine = create_engine(system, tiny_catalog, TINY_HARDWARE)
        from repro.core.config import parse_config_script

        knob = memory_pool_knobs(engine)[0]
        oversized = (knob.hardware_maximum or 0) + 7 * 1024**3
        script = render_script(system, {knob.name: oversized}, [])
        config = parse_config_script(script, engine.knob_space, tiny_catalog)
        assert knob.name not in config.settings
        assert len(config.rejected) == 1
        assert knob.name in config.rejected[0]

    def test_clamp_is_unaffected_by_hardware_caps(self, engine):
        # Baseline search trajectories depend on clamp(); the caps must
        # only bite at coercion time.
        for knob in memory_pool_knobs(engine):
            if knob.maximum is not None and knob.maximum > knob.hardware_maximum:
                assert knob.clamp(knob.maximum * 2) == knob.maximum


class TestConfigRoundTrip:
    def test_apply_advances_clock_by_restart(self, engine):
        knob, value = tunable_knob(engine)
        elapsed = engine.apply_config({knob.name: value})
        assert elapsed == engine.restart_seconds > 0
        assert engine.clock.now == engine.restart_seconds
        assert engine.get(knob.name) == value

    def test_reset_restores_every_default(self, engine):
        knob, value = tunable_knob(engine)
        engine.apply_config({knob.name: value})
        engine.reset_config()
        assert engine.config == engine.knob_space.defaults()

    def test_empty_config_is_free(self, engine):
        assert engine.apply_config({}) == 0.0
        assert engine.clock.now == 0.0

    def test_invalid_setting_rejected_atomically(self, engine):
        knob, value = tunable_knob(engine)
        before = engine.config
        with pytest.raises(KnobError):
            engine.apply_config({knob.name: value, "nonsense_knob": 1})
        assert engine.config == before
        assert engine.clock.now == 0.0

    def test_snapshot_names_the_system(self, engine):
        snapshot = engine.snapshot()
        assert snapshot["system"] == engine.system
        assert "config" in snapshot and "indexes" in snapshot


class TestStateAndFork:
    def test_capture_restore_round_trip(self, engine):
        knob, value = tunable_knob(engine)
        engine.apply_config({knob.name: value})
        engine.create_index(Index("events", ("kind",)))
        state = engine.capture_state()

        other = create_engine(engine.system, engine.catalog, HARDWARE)
        other.restore_state(state)
        assert other.config == engine.config
        assert [i.key for i in other.indexes] == [i.key for i in engine.indexes]
        assert other.clock.now == engine.clock.now

    def test_fork_times_match_bit_for_bit(self, engine):
        knob, value = tunable_knob(engine)
        engine.apply_config({knob.name: value})
        fork = engine.fork()
        assert repr(fork.estimate_seconds(JOIN_SQL)) == repr(
            engine.estimate_seconds(JOIN_SQL)
        )

    def test_execution_is_deterministic(self, engine):
        assert repr(engine.execute(JOIN_SQL).execution_time) == repr(
            engine.execute(JOIN_SQL).execution_time
        )


class TestResourceFootprint:
    def test_footprint_positive_and_pure(self, engine):
        footprint = engine.resource_footprint()
        assert footprint.peak_memory_bytes > 0
        assert footprint.disk_bytes > 0
        fresh = create_engine(engine.system, engine.catalog, HARDWARE)
        assert fresh.resource_footprint() == footprint

    def test_footprint_ignores_currently_applied_config(self, engine):
        """Feasibility must not depend on evaluation order: the engine's
        mutable config never leaks into a candidate's footprint."""
        default = engine.resource_footprint()
        knob, value = tunable_knob(engine)
        engine.apply_config({knob.name: value})
        assert engine.resource_footprint() == default

    def test_bigger_memory_pool_raises_peak_memory(self, engine):
        knob = memory_pool_knobs(engine)[0]
        base = engine.resource_footprint()
        grown = engine.resource_footprint(
            {knob.name: knob.default + 2 * 1024**3}
        )
        assert grown.peak_memory_bytes > base.peak_memory_bytes

    def test_candidate_indexes_add_disk(self, engine):
        base = engine.resource_footprint()
        indexed = engine.resource_footprint(
            indexes=(Index("events", ("kind",)),)
        )
        assert indexed.disk_bytes > base.disk_bytes
        assert indexed.peak_memory_bytes == base.peak_memory_bytes

    def test_installed_and_candidate_indexes_deduplicate(self, engine):
        index = Index("events", ("kind",))
        engine.create_index(index)
        installed = engine.resource_footprint()
        assert engine.resource_footprint(indexes=(index,)) == installed


class TestCrossProcessDeterminism:
    """Per-backend ``PYTHONHASHSEED`` independence (subprocess matrix)."""

    SCRIPT = (
        "from repro.db.registry import create_engine;"
        "from repro.workloads import load_workload;"
        "w = load_workload('synthetic:queries=12,scale=2');"
        "e = create_engine({system!r}, w.catalog);"
        "f = e.resource_footprint();"
        "print(repr(sum(e.estimate_seconds(q) for q in w.queries)),"
        " f.peak_memory_bytes, f.disk_bytes)"
    )

    def test_times_and_footprints_hash_seed_independent(self, system):
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        python_path = src_dir
        if os.environ.get("PYTHONPATH"):
            python_path += os.pathsep + os.environ["PYTHONPATH"]
        outputs = set()
        for hash_seed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT.format(system=system)],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                    "PYTHONPATH": python_path,
                },
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1
