"""Bit-transparency of the persistent artifact cache.

For every cached artifact type (plans, compiled workloads, ILP
solutions, LLM samples, plan orders) a warm hit must be byte-identical
to a cold computation -- across ``PYTHONHASHSEED`` values, across
serial/thread/process executors, and after a poisoning attack on every
disk entry.  The full tuning pipeline exercises all five artifact kinds
in one run, so it is the property under test.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cache import ArtifactCache, install_cache
from repro.core import BatchJob, LambdaTune, LambdaTuneOptions, tune_many
from repro.db.postgres import PostgresEngine
from repro.llm.mock import SimulatedLLM
from repro.workloads import tpch_workload

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

OPTIONS = LambdaTuneOptions(
    token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
)

#: Runs one tune against the cache dir in argv[1] and prints the result
#: fingerprint digest plus the persistent-cache hit/store counters.
TUNE_SCRIPT = """
import hashlib, sys
from repro.cache import configure_cache
from repro.core import LambdaTune, LambdaTuneOptions
from repro.db.postgres import PostgresEngine
from repro.llm.mock import SimulatedLLM
from repro.workloads import tpch_workload

cache = configure_cache(sys.argv[1]) if sys.argv[1] else None
workload = tpch_workload()
tuner = LambdaTune(
    PostgresEngine(workload.catalog),
    SimulatedLLM(),
    LambdaTuneOptions(token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9),
)
result = tuner.tune(list(workload.queries), workload_name=workload.name)
digest = hashlib.sha256(repr(result.fingerprint()).encode()).hexdigest()
hits = 0 if cache is None else cache.stats.disk_hits + cache.stats.memory_hits
stores = 0 if cache is None else cache.stats.stores
print(digest, hits, stores)
"""


def run_tune(cache_dir: str, hash_seed: str) -> tuple[str, int, int]:
    python_path = _SRC_DIR
    if os.environ.get("PYTHONPATH"):
        python_path += os.pathsep + os.environ["PYTHONPATH"]
    result = subprocess.run(
        [sys.executable, "-c", TUNE_SCRIPT, cache_dir],
        capture_output=True,
        text=True,
        check=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": python_path,
        },
    )
    digest, hits, stores = result.stdout.split()
    return digest, int(hits), int(stores)


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    previous = install_cache(None)
    yield
    install_cache(previous)


def test_warm_hits_identical_across_hash_seeds(tmp_path):
    """Cold (seed A) then warm (seeds B, C): one fingerprint, real hits.

    The warm runs read artifacts written by a process with a *different*
    hash seed, so any hash()-dependent key material or payload would
    surface as a digest mismatch or a changed fingerprint.
    """
    cache_dir = str(tmp_path / "cache")
    no_cache_digest, _, _ = run_tune("", "1")
    cold = run_tune(cache_dir, "2")
    warm_a = run_tune(cache_dir, "3")
    warm_b = run_tune(cache_dir, "4")

    assert cold[0] == no_cache_digest  # cache does not change results
    assert warm_a[0] == no_cache_digest
    assert warm_b[0] == no_cache_digest
    assert cold[1] == 0 and cold[2] > 0  # cold run stored artifacts
    assert warm_a[1] > 0 and warm_a[2] == 0  # warm runs only hit
    assert warm_b[1] > 0 and warm_b[2] == 0


def test_poisoned_entries_recomputed_end_to_end(tmp_path):
    """Corrupt every disk entry; the tune must detect and recompute."""
    cache_dir = str(tmp_path / "cache")
    cold_digest, _, _ = run_tune(cache_dir, "1")

    entries = glob.glob(os.path.join(cache_dir, "**", "*.bin"), recursive=True)
    assert entries
    for path in entries:
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            # Flip one payload byte: header and digest stay plausible,
            # only content verification can catch it.
            handle.write(raw[:-1] + bytes([raw[-1] ^ 0xFF]))

    cache = ArtifactCache(cache_dir)
    install_cache(cache)
    workload = tpch_workload()
    tuner = LambdaTune(
        PostgresEngine(workload.catalog), SimulatedLLM(), options=OPTIONS
    )
    result = tuner.tune(list(workload.queries), workload_name=workload.name)

    import hashlib

    digest = hashlib.sha256(repr(result.fingerprint()).encode()).hexdigest()
    assert digest == cold_digest
    assert cache.stats.poisoned == len(entries)
    assert cache.stats.disk_hits == 0  # nothing corrupt was ever trusted


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_executors_identical_with_cache(tmp_path, executor):
    """Parallel selection over a warm cache matches the uncached serial run."""
    workload = tpch_workload()
    reference = LambdaTune(
        PostgresEngine(workload.catalog), SimulatedLLM(), options=OPTIONS
    ).tune(list(workload.queries), workload_name=workload.name)

    options = (
        OPTIONS
        if executor == "serial"
        else OPTIONS.ablated(workers=2, executor=executor)
    )
    install_cache(ArtifactCache(tmp_path / "cache"))
    for _ in range(2):  # cold then warm
        tuned = LambdaTune(
            PostgresEngine(tpch_workload().catalog),
            SimulatedLLM(),
            options=options,
        ).tune(list(workload.queries), workload_name=workload.name)
        assert tuned.fingerprint() == reference.fingerprint()


def test_batch_results_identical_to_serial_reference(tmp_path):
    """tune_many over a shared cache returns serial-reference results."""
    def jobs():
        return [
            BatchJob(workload=tpch_workload(), options=OPTIONS),
            BatchJob(workload=tpch_workload(), options=OPTIONS.ablated(seed=11)),
            BatchJob(workload=tpch_workload(), options=OPTIONS),
        ]

    reference = tune_many(jobs(), max_workers=1)
    concurrent = tune_many(
        jobs(), max_workers=3, cache_dir=str(tmp_path / "cache")
    )
    for serial, batched in zip(reference, concurrent):
        assert batched.fingerprint() == serial.fingerprint()
