"""Cross-process artifact-cache races (PR 10).

Two processes publishing the same key concurrently must both succeed
(atomic tmpfile + ``os.replace`` -- last writer wins, every reader
sees a complete entry), and a worker that reads a half-written /
corrupted shared cache must degrade to recompute with identical
results.  These are the disk-tier guarantees the process executors
(`tune_many(executor="process")`, `TuningServer(executor="process")`)
stand on.
"""

from __future__ import annotations

import glob
import multiprocessing
import os

import pytest

from repro.cache import MISS, ArtifactCache, install_cache
from repro.core.parallel import preferred_mp_context


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    previous = install_cache(None)
    yield
    install_cache(previous)


def entry_files(root) -> list[str]:
    return sorted(
        glob.glob(os.path.join(str(root), "**", "*.bin"), recursive=True)
    )


def _publish_same_key(root, barrier, payload_tag):
    """Worker: race one store of the same (kind, material) key."""
    cache = ArtifactCache(root)
    value = {"tag": payload_tag, "rows": [1.5, 2.5, 3.5]}
    barrier.wait(timeout=60.0)
    cache.store("plan", ("q1", "config-A"), value)
    return payload_tag


def test_concurrent_same_key_stores_leave_one_valid_entry(tmp_path):
    """Both writers replace atomically; a later reader gets a complete,
    verifiable entry (one of the two payloads, never a torn mix)."""
    ctx = preferred_mp_context()
    barrier = ctx.Barrier(2)
    workers = [
        ctx.Process(
            target=_publish_same_key, args=(str(tmp_path), barrier, tag)
        )
        for tag in ("left", "right")
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120.0)
        assert worker.exitcode == 0

    assert len(entry_files(tmp_path)) == 1, "same key must map to one file"
    reader = ArtifactCache(tmp_path)
    value = reader.fetch("plan", ("q1", "config-A"))
    assert value is not MISS
    assert value["tag"] in ("left", "right")
    assert value["rows"] == [1.5, 2.5, 3.5]
    assert reader.stats.disk_hits == 1


def _corrupt(path: str, mode: str) -> None:
    raw = open(path, "rb").read()
    if mode == "truncate":
        open(path, "wb").write(raw[: len(raw) // 2])
    elif mode == "flip":
        mutated = bytearray(raw)
        mutated[-1] ^= 0xFF
        open(path, "wb").write(bytes(mutated))
    else:
        open(path, "wb").write(b"")


@pytest.mark.parametrize("mode", ["truncate", "flip", "empty"])
def test_poisoned_shared_entry_degrades_to_recompute(tmp_path, mode):
    """A half-written or bit-flipped entry is a miss, not an error, and
    the recomputed value is identical to the clean-cache one."""
    writer = ArtifactCache(tmp_path)
    clean = writer.get_or_compute(
        "plan", ("q7",), lambda: {"cost": 12.125, "rows": 4096}
    )
    (entry,) = entry_files(tmp_path)
    _corrupt(entry, mode)

    # A fresh instance simulates the worker process attaching the
    # shared directory: the poisoned read must fall through to compute.
    worker = ArtifactCache(tmp_path)
    recomputed = worker.get_or_compute(
        "plan", ("q7",), lambda: {"cost": 12.125, "rows": 4096}
    )
    assert recomputed == clean
    assert worker.stats.disk_hits == 0
    assert worker.stats.misses >= 1
    # The poisoned file was discarded and republished; a third reader
    # now disk-hits the fresh entry.
    third = ArtifactCache(tmp_path)
    assert third.fetch("plan", ("q7",)) == clean
    assert third.stats.disk_hits == 1


def _tune_with_shared_cache(root, workload_payload, queue):
    """Worker: run one tiny tune against the shared cache directory."""
    import pickle

    from repro.core import BatchJob, LambdaTuneOptions
    from repro.core.batch import run_job

    install_cache(ArtifactCache(root))
    workload = pickle.loads(workload_payload)
    options = LambdaTuneOptions(
        token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
    )
    result = run_job(BatchJob(workload=workload, options=options))
    queue.put(result.fingerprint())


def test_poisoned_shared_cache_keeps_tuning_bit_identical(
    tmp_path, tiny_workload
):
    """End-to-end: a worker over a fully corrupted shared cache still
    reproduces the clean result digest-for-digest."""
    import pickle

    payload = pickle.dumps(tiny_workload)
    ctx = preferred_mp_context()

    def run_worker(root):
        queue = ctx.Queue()
        worker = ctx.Process(
            target=_tune_with_shared_cache, args=(str(root), payload, queue)
        )
        worker.start()
        fingerprint = queue.get(timeout=300.0)
        worker.join(timeout=60.0)
        return fingerprint

    clean_fingerprint = run_worker(tmp_path)
    assert entry_files(tmp_path), "the warm run should have published entries"
    for entry in entry_files(tmp_path):
        _corrupt(entry, "truncate")
    poisoned_fingerprint = run_worker(tmp_path)
    assert poisoned_fingerprint == clean_fingerprint


def test_barrier_module_is_multiprocessing(tmp_path):
    """Guard: the race test must use real processes, not threads."""
    ctx = preferred_mp_context()
    assert isinstance(ctx, multiprocessing.context.BaseContext)
