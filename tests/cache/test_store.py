"""Mechanics of the two-tier artifact store."""

from __future__ import annotations

import glob
import os
import threading

import pytest

from repro.cache import (
    CACHE_FORMAT_VERSION,
    MISS,
    ArtifactCache,
    configure_cache,
    install_cache,
)
from repro.cache.keys import stable_key
from repro.cache.store import _decode_entry, _encode_entry


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    previous = install_cache(None)
    yield
    install_cache(previous)


def entry_files(root) -> list[str]:
    return sorted(
        glob.glob(os.path.join(str(root), "**", "*.bin"), recursive=True)
    )


def test_memory_tier_hit_without_disk():
    cache = ArtifactCache(None)
    assert cache.fetch("k", ("a",)) is MISS
    cache.store("k", ("a",), {"x": 1})
    assert cache.fetch("k", ("a",)) == {"x": 1}
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1


def test_disk_tier_survives_new_cache_instance(tmp_path):
    first = ArtifactCache(tmp_path)
    first.store("plan", ("q1",), [1.5, 2.5])
    # A new instance over the same root simulates a new process.
    second = ArtifactCache(tmp_path)
    assert second.fetch("plan", ("q1",)) == [1.5, 2.5]
    assert second.stats.disk_hits == 1
    # The value is now promoted to the memory tier.
    assert second.fetch("plan", ("q1",)) == [1.5, 2.5]
    assert second.stats.memory_hits == 1


def test_cached_none_is_distinguished_from_miss():
    cache = ArtifactCache(None)
    cache.store("k", ("key",), None)
    assert cache.fetch("k", ("key",)) is None
    assert cache.fetch("k", ("other",)) is MISS


def test_get_or_compute_computes_once(tmp_path):
    cache = ArtifactCache(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("k", ("a",), compute) == 42
    assert cache.get_or_compute("k", ("a",), compute) == 42
    assert len(calls) == 1


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda raw: raw[:-1],  # truncated payload
        lambda raw: b"XXXX" + raw[4:],  # wrong magic
        lambda raw: raw[:4] + (99).to_bytes(4, "big") + raw[8:],  # future version
        lambda raw: raw[:-1] + bytes([raw[-1] ^ 0xFF]),  # flipped payload byte
        lambda raw: raw[:20],  # shorter than the header
        lambda raw: b"",  # empty file
    ],
)
def test_poisoned_entries_are_recomputed_never_trusted(tmp_path, corrupt):
    cache = ArtifactCache(tmp_path)
    cache.store("k", ("a",), "good value")
    (path,) = entry_files(tmp_path)
    with open(path, "rb") as handle:
        raw = handle.read()
    with open(path, "wb") as handle:
        handle.write(corrupt(raw))

    fresh = ArtifactCache(tmp_path)  # no memory-tier copy
    assert fresh.fetch("k", ("a",)) is MISS
    assert fresh.stats.poisoned == 1
    # get_or_compute falls back to the real computation.
    assert fresh.get_or_compute("k", ("a",), lambda: "recomputed") == "recomputed"


def test_poisoned_entry_is_discarded_from_disk(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store("k", ("a",), "value")
    (path,) = entry_files(tmp_path)
    with open(path, "wb") as handle:
        handle.write(b"garbage")
    fresh = ArtifactCache(tmp_path)
    assert fresh.fetch("k", ("a",)) is MISS
    assert not os.path.exists(path)


def test_entry_encoding_round_trip_and_digest_check():
    raw = _encode_entry(b"payload")
    assert _decode_entry(raw) == b"payload"
    assert _decode_entry(raw[:-1]) is None
    assert _decode_entry(b"") is None


def test_entries_live_under_version_directory(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store("plan", ("a",), 1)
    (path,) = entry_files(tmp_path)
    assert f"v{CACHE_FORMAT_VERSION}" in path
    assert os.sep + "plan" + os.sep in path


def test_version_bump_orphans_old_entries(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    cache.store("k", ("a",), "old")
    monkeypatch.setattr("repro.cache.keys.CACHE_FORMAT_VERSION", 2)
    monkeypatch.setattr("repro.cache.store.CACHE_FORMAT_VERSION", 2)
    fresh = ArtifactCache(tmp_path)
    # Old entries are invisible under the new version: different digest
    # address space and a different directory.
    assert fresh.fetch("k", ("a",)) is MISS
    fresh.store("k", ("a",), "new")
    assert any("v2" in path for path in entry_files(tmp_path))
    assert fresh.fetch("k", ("a",)) == "new"


def test_memory_lru_is_bounded():
    cache = ArtifactCache(None, memory_entries=4)
    for i in range(10):
        cache.store("k", (i,), i)
    assert len(cache._memory.entries) == 4
    assert cache.fetch("k", (9,)) == 9
    assert cache.fetch("k", (0,)) is MISS


def test_failing_disk_writes_degrade_to_memory_only(tmp_path, monkeypatch):
    def refuse(*args, **kwargs):
        raise OSError("disk full")

    # chmod tricks don't work under root, so inject the failure where
    # the atomic publish happens.
    monkeypatch.setattr("os.replace", refuse)
    cache = ArtifactCache(tmp_path)
    cache.store("k", ("a",), "value")  # disk write fails silently
    assert cache.stats.errors >= 1
    assert cache.fetch("k", ("a",)) == "value"  # memory tier still works
    assert entry_files(tmp_path) == []


def test_failing_disk_reads_degrade_to_miss(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    cache.store("k", ("a",), "value")

    def refuse(*args, **kwargs):
        raise OSError("I/O error")

    monkeypatch.setattr("builtins.open", refuse)
    fresh = ArtifactCache(tmp_path)
    assert fresh.fetch("k", ("a",)) is MISS
    assert fresh.stats.errors == 1


def test_concurrent_readers_and_writers(tmp_path):
    cache = ArtifactCache(tmp_path)
    errors = []

    def worker(worker_id: int) -> None:
        try:
            for i in range(50):
                key = ("item", i % 10)
                value = cache.get_or_compute("k", key, lambda i=i: i % 10)
                assert value == i % 10
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    fresh = ArtifactCache(tmp_path)
    for i in range(10):
        assert fresh.fetch("k", ("item", i)) == i


def test_configure_and_install_cache_roundtrip(tmp_path):
    from repro.cache import active_cache

    installed = configure_cache(tmp_path)
    assert installed is not None and installed.root == str(tmp_path)
    assert active_cache() is installed
    restored = install_cache(None)
    assert restored is installed
    assert active_cache() is None


def test_stable_key_rejects_unknown_types():
    with pytest.raises(TypeError):
        stable_key(object())
