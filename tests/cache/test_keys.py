"""Key coverage: every input that can change an artifact changes its key.

The acceptance test for cache correctness-safety: for each cached
artifact type, mutate one input at a time -- catalog content, knob
settings, physical design, hardware profile, seed, SQL text, format
version -- and assert the persistent cache *misses* (a fresh store
happens instead of a hit).  A false hit here would mean a stale artifact
could silently change tuning results.
"""

from __future__ import annotations

import pytest

from repro.cache import ArtifactCache, digest_key, install_cache, stable_key
from repro.core.config import Configuration
from repro.core.evaluator import ConfigurationEvaluator
from repro.db.catalog import Catalog, Column
from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.postgres import PostgresEngine
from repro.llm.mock import SimulatedLLM
from repro.solver.model import ILPModel
from repro.workloads.base import Query, Workload
from repro.workloads.compile import compile_workload


@pytest.fixture()
def cache(tmp_path):
    """A fresh persistent cache installed process-wide for the test."""
    cache = ArtifactCache(tmp_path)
    previous = install_cache(cache)
    yield cache
    install_cache(previous)


def make_catalog(event_rows: int = 500_000) -> Catalog:
    """A fresh catalog object per call: in-process caches start cold, so
    every lookup actually consults the persistent tier."""
    catalog = Catalog("tiny")
    catalog.add_table("users", 10_000, [
        Column("user_id", 4, is_primary_key=True),
        Column("country", 2, 50),
        Column("age", 4, 80),
    ])
    catalog.add_table("events", event_rows, [
        Column("event_id", 4, is_primary_key=True),
        Column("user_id2", 4, 10_000),
        Column("kind", 8, 20),
    ])
    return catalog


SQL = "SELECT count(*) FROM users WHERE country = 'US'"


class Outcome:
    def __init__(self, cache: ArtifactCache, action):
        before = cache.stats.snapshot()
        action()
        after = cache.stats.snapshot()
        self.stored = after["stores"] - before["stores"]
        self.hits = (
            after["memory_hits"]
            + after["disk_hits"]
            - before["memory_hits"]
            - before["disk_hits"]
        )


def assert_miss(cache: ArtifactCache, action) -> None:
    outcome = Outcome(cache, action)
    assert outcome.stored > 0, "expected a cache miss (fresh store)"


def assert_hit(cache: ArtifactCache, action) -> None:
    outcome = Outcome(cache, action)
    assert outcome.stored == 0 and outcome.hits > 0, "expected a cache hit"


# -- query plans ------------------------------------------------------------------


def plan_once(
    cache,
    *,
    event_rows: int = 500_000,
    hardware: HardwareSpec | None = None,
    knobs: dict | None = None,
    index: Index | None = None,
    sql: str = SQL,
):
    engine = PostgresEngine(make_catalog(event_rows), hardware)
    if knobs:
        engine.set_many(knobs)
    if index is not None:
        engine.create_index(index)
    return lambda: engine.estimate_seconds(sql)


def test_plan_key_covers_every_input(cache):
    assert_miss(cache, plan_once(cache))  # populate
    assert_hit(cache, plan_once(cache))  # identical inputs hit

    assert_miss(cache, plan_once(cache, event_rows=600_000))  # catalog
    assert_miss(cache, plan_once(cache, knobs={"work_mem": "128MB"}))  # knob
    assert_miss(
        cache, plan_once(cache, index=Index("users", ("country",)))
    )  # physical design
    assert_miss(
        cache,
        plan_once(cache, hardware=HardwareSpec(memory_gb=16.0, cores=2)),
    )  # hardware
    assert_miss(
        cache, plan_once(cache, sql="SELECT count(*) FROM users WHERE age > 30")
    )  # SQL text


def test_plan_key_covers_format_version(cache, monkeypatch):
    assert_miss(cache, plan_once(cache))
    monkeypatch.setattr("repro.cache.keys.CACHE_FORMAT_VERSION", 2)
    monkeypatch.setattr("repro.cache.store.CACHE_FORMAT_VERSION", 2)
    assert_miss(cache, plan_once(cache))  # version bump = new key space


# -- LLM samples ---------------------------------------------------------------------


def test_llm_key_covers_prompt_seed_temperature_model(cache):
    llm = SimulatedLLM()
    prompt = "Recommend a postgres configuration.\nMemory: 61.0 GB\nCores: 8"

    call = lambda **kw: lambda: llm.complete_with_retry(
        kw.get("prompt", prompt),
        temperature=kw.get("temperature", 0.7),
        seed=kw.get("seed", 0),
    )
    assert_miss(cache, call())
    assert_hit(cache, call())
    assert_miss(cache, call(prompt=prompt + "\nExtra fact"))
    assert_miss(cache, call(seed=1))
    assert_miss(cache, call(temperature=0.2))

    other = SimulatedLLM()
    other.model = "simulated-gpt-4-turbo"
    assert_miss(cache, lambda: other.complete_with_retry(prompt, seed=0))


def test_uncacheable_clients_never_touch_the_cache(cache):
    llm = SimulatedLLM()
    llm.cacheable = False
    before = cache.stats.snapshot()
    llm.complete_with_retry("Recommend a postgres configuration.", seed=0)
    assert cache.stats.snapshot() == before


# -- ILP solutions ----------------------------------------------------------------------


def build_model(objective=(3.0, 2.0, 1.0), bound=2.0, coefficient=1.0):
    model = ILPModel()
    for i, value in enumerate(objective):
        model.add_variable(f"x{i}", value)
    model.add_constraint({0: coefficient, 1: 1.0, 2: 1.0}, bound)
    return model


def test_ilp_key_covers_model_content_and_backend(cache):
    assert_miss(cache, lambda: build_model().solve("greedy"))
    assert_hit(cache, lambda: build_model().solve("greedy"))

    assert_miss(cache, lambda: build_model(objective=(3.0, 2.5, 1.0)).solve("greedy"))
    assert_miss(cache, lambda: build_model(bound=1.0).solve("greedy"))
    assert_miss(cache, lambda: build_model(coefficient=2.0).solve("greedy"))
    # A different backend caches independently even on the same model.
    assert_miss(cache, lambda: build_model().solve("branch_bound"))


def test_ilp_variable_names_do_not_change_the_key(cache):
    model = build_model()
    assert_miss(cache, lambda: model.solve("greedy"))
    renamed = ILPModel()
    for i, value in enumerate((3.0, 2.0, 1.0)):
        renamed.add_variable(f"snippet-{i}", value)
    renamed.add_constraint({0: 1.0, 1: 1.0, 2: 1.0}, 2.0)
    assert_hit(cache, lambda: renamed.solve("greedy"))


def test_ilp_hit_returns_equal_but_unaliased_solution(cache):
    first = build_model().solve("greedy")
    second = build_model().solve("greedy")
    assert second.values == first.values
    assert repr(second.objective) == repr(first.objective)
    assert second is not first
    second.values[0] ^= 1
    assert build_model().solve("greedy").values == first.values


# -- compiled workloads --------------------------------------------------------------


def make_workload(sql: str = SQL, event_rows: int = 500_000) -> Workload:
    catalog = make_catalog(event_rows)
    queries = [
        Query.from_sql("q1", sql, catalog),
        Query.from_sql("q2", "SELECT count(*) FROM events WHERE kind = 'k'", catalog),
    ]
    return Workload(name="tiny", catalog=catalog, queries=queries)


def test_compiled_key_covers_queries_catalog_and_engine_state(cache):
    # compile_workload plans every query, so plan stores ride along;
    # track only the "compiled" artifact via a kind-scoped count.
    def compiled_stores() -> int:
        files = cache_root_files(cache, "compiled")
        return len(files)

    compile_workload(make_workload())
    baseline = compiled_stores()
    assert baseline == 1

    compile_workload(make_workload())  # identical -> no new entry
    assert compiled_stores() == baseline

    compile_workload(make_workload(event_rows=600_000))  # catalog content
    assert compiled_stores() == baseline + 1

    changed_sql = "SELECT count(*) FROM users WHERE age > 30"
    compile_workload(make_workload(sql=changed_sql))  # query text
    assert compiled_stores() == baseline + 2

    workload = make_workload()
    engine = PostgresEngine(workload.catalog)
    engine.set_many({"work_mem": "128MB"})
    compile_workload(workload, engine=engine)  # engine knob state
    assert compiled_stores() == baseline + 3


def cache_root_files(cache: ArtifactCache, kind: str) -> list[str]:
    import glob
    import os

    assert cache.root is not None
    return sorted(
        glob.glob(
            os.path.join(cache.root, "**", kind, "**", "*.bin"), recursive=True
        )
    )


# -- plan orders -------------------------------------------------------------------------


def order_once(cache, *, cluster_seed=0, max_dp_input=13, with_index=True):
    workload = make_workload()
    engine = PostgresEngine(workload.catalog)
    evaluator = ConfigurationEvaluator(
        engine, cluster_seed=cluster_seed, max_dp_input=max_dp_input
    )
    indexes = [Index("users", ("country",))] if with_index else []
    config = Configuration(name="c", indexes=indexes)
    return lambda: evaluator.plan_order(workload.queries, config)


def test_order_key_covers_seed_dp_cap_and_config(cache):
    def order_stores() -> int:
        return len(cache_root_files(cache, "order"))

    order_once(cache)()
    baseline = order_stores()
    assert baseline == 1
    order_once(cache)()  # identical -> hit
    assert order_stores() == baseline
    order_once(cache, cluster_seed=7)()
    assert order_stores() == baseline + 1
    order_once(cache, max_dp_input=2)()
    assert order_stores() == baseline + 2
    order_once(cache, with_index=False)()
    assert order_stores() == baseline + 3


# -- key rendering -----------------------------------------------------------------------


def test_stable_key_distinguishes_types_and_orders():
    assert stable_key(1) != stable_key("1")
    assert stable_key(1) != stable_key(1.0)
    assert stable_key(True) != stable_key(1)
    assert stable_key((1, 2)) != stable_key((2, 1))
    assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})
    assert stable_key({1, 2, 3}) == stable_key({3, 1, 2})
    assert stable_key(b"ab") != stable_key("ab")


def test_digest_key_separates_kinds():
    assert digest_key("plan", ("x",)) != digest_key("order", ("x",))
