"""Smoke test for ``scripts/bench.py``'s section registry (PR 10).

Imports the bench harness as a module and asserts every ``--sections``
name maps to a live callable, the full-tune dependency set is closed,
and the selector parses/rejects correctly -- so a typo in a section
name or a renamed benchmark function fails tier-1, not a nightly
bench run.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_harness", REPO / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_harness"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("bench_harness", None)


class TestSectionRegistry:
    def test_every_section_is_a_callable(self, bench):
        assert bench.SECTIONS, "registry must not be empty"
        for name, fn in bench.SECTIONS.items():
            assert callable(fn), f"section {name!r} is not callable"

    def test_expected_sections_present(self, bench):
        expected = {
            "dp_microbench", "full_tune", "regression_gate",
            "parallel_selection", "compile_cache", "fault_injection",
            "sessions", "artifact_cache", "batched_tuning",
            "service_throughput", "multi_objective", "planning_throughput",
            "evaluator_throughput", "scaling", "pytest",
        }
        assert set(bench.SECTIONS) == expected

    def test_full_tune_dependents_are_registered(self, bench):
        assert bench.NEEDS_FULL_TUNE <= set(bench.SECTIONS)
        assert "full_tune" not in bench.NEEDS_FULL_TUNE


class TestSectionSelector:
    def test_parse_selects_named_sections(self, bench):
        assert bench._parse_sections("scaling") == {"scaling"}
        assert bench._parse_sections("scaling, compile_cache") == {
            "scaling", "compile_cache",
        }

    def test_dependents_pull_in_full_tune(self, bench):
        for name in bench.NEEDS_FULL_TUNE:
            assert "full_tune" in bench._parse_sections(name)

    def test_unknown_section_rejected(self, bench):
        with pytest.raises(SystemExit, match="unknown section"):
            bench._parse_sections("scaling,warp_drive")

    def test_baseline_chain_starts_at_bench9(self, bench):
        assert bench._newest_baseline().name in {
            f"BENCH_{n}.json" for n in range(1, 10)
        }
