"""Harness tests: scenarios, runner, tables, figures, reporting."""

import json
import math

import pytest

from repro.bench.reporting import format_table, save_json
from repro.bench.runner import run_lambda_tune, run_scenario
from repro.bench.scenarios import (
    SCENARIOS,
    Scenario,
    default_indexes,
    make_engine,
    prepare_scenario,
)
from repro.core.tuner import LambdaTuneOptions
from repro.workloads import load_workload

FAST_OPTIONS = LambdaTuneOptions(
    token_budget=300, initial_timeout=0.1, alpha=2.0
)


class TestScenarios:
    def test_fourteen_scenarios_like_table3(self):
        assert len(SCENARIOS) == 14
        assert len({scenario.key for scenario in SCENARIOS}) == 14

    def test_half_with_initial_indexes(self):
        with_indexes = [s for s in SCENARIOS if s.initial_indexes]
        assert len(with_indexes) == 6  # paper rows 1-6

    def test_labels(self):
        scenario = Scenario("tpch-sf1", "postgres", True)
        assert scenario.label == "TPC-H 1GB PG"
        assert scenario.key == "tpch-sf1-postgres-idx"

    def test_make_engine_systems(self, tpch):
        assert make_engine(tpch, "postgres").system == "postgres"
        assert make_engine(tpch, "mysql").system == "mysql"
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            make_engine(tpch, "oracle")

    def test_default_indexes_cover_join_columns(self, tpch):
        indexes = default_indexes(tpch)
        names = {index.name for index in indexes}
        assert "idx_lineitem_l_orderkey" in names
        assert "idx_orders_o_orderkey" in names

    def test_prepare_scenario_with_indexes_resets_clock(self):
        scenario = Scenario("tpch-sf1", "postgres", True)
        workload, engine = prepare_scenario(scenario)
        assert engine.indexes
        assert engine.clock.now == 0.0

    def test_prepare_scenario_without_indexes(self):
        scenario = Scenario("tpch-sf1", "postgres", False)
        _, engine = prepare_scenario(scenario)
        assert engine.indexes == []


class TestRunner:
    @pytest.fixture(scope="class")
    def quick_run(self):
        scenario = Scenario("tpch-sf1", "postgres", False)
        return run_scenario(
            scenario,
            budget_seconds=150.0,
            seed=0,
            tuners=["lambda-tune", "gptuner", "paramtree"],
            lambda_options=FAST_OPTIONS,
        )

    def test_selected_tuners_present(self, quick_run):
        assert set(quick_run.results) == {"lambda-tune", "gptuner", "paramtree"}

    def test_default_time_recorded(self, quick_run):
        assert quick_run.default_time > 0

    def test_scaled_costs_at_least_one(self, quick_run):
        scaled = quick_run.scaled_costs()
        assert all(value >= 1.0 - 1e-9 for value in scaled.values())
        assert min(scaled.values()) == pytest.approx(1.0)

    def test_lambda_tune_evaluates_exactly_five(self, quick_run):
        assert quick_run.results["lambda-tune"].configs_evaluated == 5

    def test_paramtree_single_trial(self, quick_run):
        assert quick_run.results["paramtree"].configs_evaluated == 1

    def test_paramtree_is_worst(self, quick_run):
        scaled = quick_run.scaled_costs()
        assert scaled["paramtree"] == max(scaled.values())

    def test_run_lambda_tune_respects_parameter_scope(self):
        scenario = Scenario("tpch-sf1", "postgres", True)
        workload = load_workload("tpch-sf1")
        result = run_lambda_tune(scenario, workload, options=FAST_OPTIONS)
        assert result.best_config.indexes == []


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", float("inf")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.50" in text
        assert "-" in lines[3]

    def test_save_json_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "result.json"
        save_json(path, {"value": 1.5, "missing": float("inf")})
        loaded = json.loads(path.read_text())
        assert loaded == {"value": 1.5, "missing": None}


class TestFigureBuilders:
    def test_figure5_shape(self):
        from repro.bench.figures import figure5

        figure = figure5()
        assert len(figure.per_query) == 22
        names = [name for name, _, _ in figure.per_query]
        assert names[0] == "q1"
        # Paper Fig. 5: gains or at least equal performance per query.
        improved = sum(
            1 for _, default, tuned in figure.per_query if tuned <= default * 1.1
        )
        assert improved >= 18
        text = figure.to_text()
        assert "Query" in text

    def test_figure7_full_sql_is_worst(self):
        from repro.bench.figures import figure7

        figure = figure7(workload_name="tpch-sf1", budgets=(196, 800))
        by_variant = {p["variant"]: p for p in figure.points}
        assert by_variant["full-sql"]["tokens"] > by_variant["compressed-800"]["tokens"] * 5
        assert math.isfinite(by_variant["compressed-196"]["best_time"])

    def test_figure8_indexes_help_tpch(self):
        from repro.bench.figures import figure8

        figure = figure8(workload_names=("tpch-sf1",))
        row = figure.rows[0]
        assert row["lambda-tune"] < row["no_indexes"]
        assert row["dexter"] < row["no_indexes"]
        assert row["db2advis"] < row["no_indexes"]
