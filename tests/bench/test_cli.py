"""CLI smoke tests."""

import json

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_choices_cover_all_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5",
            "figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
        }

    def test_table5_run(self, tmp_path, capsys):
        code = main(["--experiment", "table5", "--out", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "shared_buffers" in output
        payload = json.loads((tmp_path / "table5.json").read_text())
        assert payload["best_time"] > 0

    def test_figure8_quick_run(self, tmp_path, capsys):
        code = main(["--experiment", "figure8", "--out", str(tmp_path)])
        assert code == 0
        rows = json.loads((tmp_path / "figure8.json").read_text())
        assert rows and "lambda-tune" in rows[0]

    def test_invalid_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--experiment", "table99", "--out", str(tmp_path)])
