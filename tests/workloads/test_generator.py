"""Synthetic workload generator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    synthetic_workload,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fact_tables": 0},
            {"dimension_tables": 0},
            {"queries": 0},
            {"max_joins_per_query": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            WorkloadGenerator(GeneratorConfig(**kwargs))


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = synthetic_workload(seed=7)
        b = synthetic_workload(seed=7)
        assert [q.sql for q in a.queries] == [q.sql for q in b.queries]
        assert {t.name for t in a.catalog.tables} == {
            t.name for t in b.catalog.tables
        }

    def test_different_seeds_differ(self):
        a = synthetic_workload(seed=1)
        b = synthetic_workload(seed=2)
        assert [q.sql for q in a.queries] != [q.sql for q in b.queries]

    def test_query_count_respected(self):
        workload = synthetic_workload(seed=3, queries=7)
        assert len(workload.queries) == 7

    def test_schema_shape(self):
        config = GeneratorConfig(fact_tables=2, dimension_tables=4, seed=5)
        workload = WorkloadGenerator(config).generate()
        facts = [t for t in workload.catalog.tables if t.name.startswith("fact_")]
        dims = [t for t in workload.catalog.tables if t.name.startswith("dim_")]
        assert len(facts) == 2
        assert len(dims) == 4

    def test_queries_analyze_with_joins(self):
        workload = synthetic_workload(seed=11, queries=20)
        joined = [q for q in workload.queries if q.info.join_conditions]
        assert joined  # star joins must appear

    def test_scale_parameter(self):
        small = synthetic_workload(seed=4, scale=0.1)
        large = synthetic_workload(seed=4, scale=10.0)
        assert large.catalog.total_size_bytes > small.catalog.total_size_bytes

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_seed_generates_valid_workload(self, seed):
        workload = synthetic_workload(seed=seed, queries=5)
        assert len(workload.queries) == 5
        for query in workload.queries:
            assert query.info.tables
            for table in query.info.tables:
                assert workload.catalog.has_table(table)


class TestGeneratedWorkloadsAreTunable:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_lambda_tune_never_crashes_and_never_loses(self, seed):
        """Property: on arbitrary synthetic workloads (which cannot be
        in any training data), lambda-Tune completes and returns a
        configuration no worse than ~the default."""
        from repro.core import LambdaTune, LambdaTuneOptions
        from repro.db.postgres import PostgresEngine
        from repro.llm import SimulatedLLM

        workload = synthetic_workload(seed=seed, queries=6, scale=0.3)
        engine = PostgresEngine(workload.catalog)
        default_time = sum(
            engine.estimate_seconds(query) for query in workload.queries
        )
        tuner = LambdaTune(
            PostgresEngine(workload.catalog),
            SimulatedLLM(),
            LambdaTuneOptions(initial_timeout=0.2, alpha=2.0, token_budget=300),
        )
        result = tuner.tune(list(workload.queries))
        assert result.best_config is not None
        assert result.best_time <= default_time * 1.1

    def test_baselines_run_on_synthetic(self):
        from repro.baselines import GPTunerTuner
        from repro.db.postgres import PostgresEngine

        workload = synthetic_workload(seed=42, queries=5, scale=0.2)
        engine = PostgresEngine(workload.catalog)
        result = GPTunerTuner(seed=0, trial_timeout=60.0).tune(
            workload, engine, 60.0
        )
        assert result.configs_evaluated > 0
