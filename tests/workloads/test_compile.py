"""The process-wide workload compile cache."""

import pickle

import pytest

from repro.db import engine as engine_module
from repro.db.indexes import Index
from repro.db.postgres import PostgresEngine
from repro.errors import ReproError
from repro.workloads import CompiledWorkload, compile_workload


class TestCompileWorkload:
    def test_memoized_per_catalog(self, tiny_workload):
        first = compile_workload(tiny_workload)
        second = compile_workload(tiny_workload)
        assert first is second

    def test_costs_match_direct_estimation(self, tiny_workload):
        compiled = compile_workload(tiny_workload)
        engine = PostgresEngine(tiny_workload.catalog)
        for query in tiny_workload.queries:
            assert repr(compiled.default_costs[query.name]) == repr(
                engine.estimate_seconds(query)
            )
        assert compiled.default_time == sum(compiled.default_costs.values())

    def test_engine_state_is_part_of_the_key(self, tiny_workload):
        plain = compile_workload(tiny_workload)
        engine = PostgresEngine(tiny_workload.catalog)
        engine.create_index(Index(table="users", columns=("country",)))
        indexed = compile_workload(tiny_workload, engine=engine)
        assert indexed is not plain
        # Same engine state again: cache hit.
        assert compile_workload(tiny_workload, engine=engine) is indexed

    def test_artifact_is_picklable(self, tiny_workload):
        compiled = compile_workload(tiny_workload)
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledWorkload)
        assert clone.default_costs == compiled.default_costs
        assert clone.join_values == compiled.join_values
        assert [q.name for q in clone.queries] == [
            q.name for q in compiled.queries
        ]

    def test_rejects_foreign_engine(self, tiny_workload, tpch):
        engine = PostgresEngine(tpch.catalog)
        with pytest.raises(ReproError):
            compile_workload(tiny_workload, engine=engine)

    def test_query_lookup(self, tiny_workload):
        compiled = compile_workload(tiny_workload)
        assert compiled.query_by_name("join_all").name == "join_all"
        with pytest.raises(ReproError):
            compiled.query_by_name("nope")

    def test_caches_disabled_recomputes(self, tiny_workload, monkeypatch):
        monkeypatch.setattr(engine_module, "CACHES_ENABLED", False)
        first = compile_workload(tiny_workload)
        second = compile_workload(tiny_workload)
        assert first is not second
        assert first.default_costs == second.default_costs
