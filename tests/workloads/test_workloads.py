"""Workload construction tests: TPC-H, TPC-DS, JOB."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.workloads import WORKLOAD_NAMES, load_workload
from repro.workloads.base import Query, Workload
from repro.workloads.job import job_catalog, job_query_sql
from repro.workloads.tpcds import tpcds_catalog
from repro.workloads.tpch import tpch_catalog


class TestRegistry:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_all_registered_workloads_build(self, name):
        workload = load_workload(name)
        assert len(workload.queries) > 0

    def test_unknown_workload_raises(self):
        with pytest.raises(ReproError):
            load_workload("tpc-z")

    def test_aliases(self):
        assert load_workload("tpch").name == "tpch-sf1"

    def test_sf100_presets_scale_cardinalities(self):
        assert load_workload("tpch-sf100").catalog.table("lineitem").rows == 600_121_500
        assert (
            load_workload("tpcds-sf100").catalog.table("inventory").rows
            == 1_174_500_000
        )


class TestSyntheticSpec:
    def test_spec_string_sets_size_and_scale(self):
        workload = load_workload("synthetic:queries=64,scale=10")
        assert len(workload.queries) == 64
        baseline = load_workload("synthetic:queries=64,scale=1")
        assert max(t.rows for t in workload.catalog.tables) > max(
            t.rows for t in baseline.catalog.tables
        )

    def test_spec_string_full_option_set(self):
        workload = load_workload(
            "synthetic:queries=20,scale=2,seed=7,fact_tables=3,"
            "dimension_tables=8,max_joins=6,max_filters=4"
        )
        assert len(workload.queries) == 20
        assert len(workload.catalog.tables) == 11  # 3 fact + 8 dimension

    def test_spec_is_deterministic(self):
        first = load_workload("synthetic:queries=15,seed=3")
        second = load_workload("synthetic:queries=15,seed=3")
        assert [q.sql for q in first.queries] == [q.sql for q in second.queries]

    @pytest.mark.parametrize(
        "spec",
        [
            "synthetic:frobnicate=2",
            "synthetic:queries=abc",
            "synthetic:queries",
            "synthetic:,",
            "synthetic:queries=0",
            "synthetic:dimension_tables=0",
        ],
    )
    def test_bad_specs_raise_typed_error(self, spec):
        with pytest.raises(ConfigurationError):
            load_workload(spec)


class TestTPCH:
    def test_official_query_count(self, tpch):
        assert len(tpch.queries) == 22
        assert [q.name for q in tpch.queries] == [f"q{i}" for i in range(1, 23)]

    def test_official_table_cardinalities(self):
        catalog = tpch_catalog(1.0)
        assert catalog.table("lineitem").rows == 6_001_215
        assert catalog.table("orders").rows == 1_500_000
        assert catalog.table("region").rows == 5

    def test_scale_factor_ten(self):
        catalog = tpch_catalog(10.0)
        assert catalog.table("lineitem").rows == 60_012_150

    def test_q3_structure(self, tpch):
        info = tpch.query("q3").info
        assert info.tables == {"customer", "orders", "lineitem"}
        assert len(info.join_conditions) == 2

    def test_q1_has_no_joins(self, tpch):
        info = tpch.query("q1").info
        assert info.tables == {"lineitem"}
        assert not info.join_conditions

    def test_aggregates_present(self, tpch):
        assert "sum" in tpch.query("q1").info.aggregates

    def test_workload_join_conditions_union(self, tpch):
        conditions = {str(c) for c in tpch.join_conditions}
        assert "lineitem.l_orderkey = orders.o_orderkey" in conditions
        assert "customer.c_custkey = orders.o_custkey" in conditions


class TestJOB:
    def test_official_query_count(self, job):
        assert len(job.queries) == 113

    def test_family_variant_naming(self, job):
        names = [q.name for q in job.queries]
        assert "1a" in names and "17f" in names and "33c" in names

    def test_imdb_cardinalities(self):
        catalog = job_catalog()
        assert catalog.table("cast_info").rows == 36_244_344
        assert catalog.table("title").rows == 2_528_312
        assert len(catalog.tables) == 21

    def test_queries_parse_uniquely(self):
        pairs = job_query_sql()
        names = [name for name, _ in pairs]
        assert len(names) == len(set(names)) == 113

    def test_every_query_joins_title_family(self, job):
        # Every JOB query touches a movie-graph table.
        for query in job.queries:
            assert query.info.tables & {"title", "movie_link"}, query.name

    def test_variants_share_structure_not_constants(self, job):
        a = job.query("2a")
        b = job.query("2b")
        assert a.info.join_conditions == b.info.join_conditions
        assert a.sql != b.sql


class TestTPCDS:
    def test_query_count(self):
        workload = load_workload("tpcds-sf1")
        assert len(workload.queries) == 25

    def test_fact_table_cardinalities(self):
        catalog = tpcds_catalog(1.0)
        assert catalog.table("store_sales").rows == 2_880_404
        assert catalog.table("inventory").rows == 11_745_000

    def test_star_join_structure(self):
        workload = load_workload("tpcds-sf1")
        info = workload.query("q3").info
        assert info.tables == {"date_dim", "store_sales", "item"}


class TestWorkloadContainer:
    def test_duplicate_query_names_rejected(self, tiny_catalog):
        query = Query.from_sql("q", "SELECT count(*) FROM users", tiny_catalog)
        with pytest.raises(ReproError):
            Workload("w", tiny_catalog, [query, query])

    def test_query_lookup(self, tiny_workload):
        assert tiny_workload.query("join_all").name == "join_all"
        with pytest.raises(ReproError):
            tiny_workload.query("missing")

    def test_subset(self, tiny_workload):
        subset = tiny_workload.subset(["join_all", "by_country"])
        assert [q.name for q in subset.queries] == ["join_all", "by_country"]

    def test_from_sql_rejects_unknown_table(self, tiny_catalog):
        with pytest.raises(ReproError):
            Query.from_sql("bad", "SELECT 1 FROM ghosts", tiny_catalog)

    def test_len(self, tiny_workload):
        assert len(tiny_workload) == 3
