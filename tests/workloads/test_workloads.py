"""Workload construction tests: TPC-H, TPC-DS, JOB."""

import pytest

from repro.errors import ReproError
from repro.workloads import WORKLOAD_NAMES, load_workload
from repro.workloads.base import Query, Workload
from repro.workloads.job import job_catalog, job_query_sql
from repro.workloads.tpcds import tpcds_catalog
from repro.workloads.tpch import tpch_catalog


class TestRegistry:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_all_registered_workloads_build(self, name):
        workload = load_workload(name)
        assert len(workload.queries) > 0

    def test_unknown_workload_raises(self):
        with pytest.raises(ReproError):
            load_workload("tpc-z")

    def test_aliases(self):
        assert load_workload("tpch").name == "tpch-sf1"


class TestTPCH:
    def test_official_query_count(self, tpch):
        assert len(tpch.queries) == 22
        assert [q.name for q in tpch.queries] == [f"q{i}" for i in range(1, 23)]

    def test_official_table_cardinalities(self):
        catalog = tpch_catalog(1.0)
        assert catalog.table("lineitem").rows == 6_001_215
        assert catalog.table("orders").rows == 1_500_000
        assert catalog.table("region").rows == 5

    def test_scale_factor_ten(self):
        catalog = tpch_catalog(10.0)
        assert catalog.table("lineitem").rows == 60_012_150

    def test_q3_structure(self, tpch):
        info = tpch.query("q3").info
        assert info.tables == {"customer", "orders", "lineitem"}
        assert len(info.join_conditions) == 2

    def test_q1_has_no_joins(self, tpch):
        info = tpch.query("q1").info
        assert info.tables == {"lineitem"}
        assert not info.join_conditions

    def test_aggregates_present(self, tpch):
        assert "sum" in tpch.query("q1").info.aggregates

    def test_workload_join_conditions_union(self, tpch):
        conditions = {str(c) for c in tpch.join_conditions}
        assert "lineitem.l_orderkey = orders.o_orderkey" in conditions
        assert "customer.c_custkey = orders.o_custkey" in conditions


class TestJOB:
    def test_official_query_count(self, job):
        assert len(job.queries) == 113

    def test_family_variant_naming(self, job):
        names = [q.name for q in job.queries]
        assert "1a" in names and "17f" in names and "33c" in names

    def test_imdb_cardinalities(self):
        catalog = job_catalog()
        assert catalog.table("cast_info").rows == 36_244_344
        assert catalog.table("title").rows == 2_528_312
        assert len(catalog.tables) == 21

    def test_queries_parse_uniquely(self):
        pairs = job_query_sql()
        names = [name for name, _ in pairs]
        assert len(names) == len(set(names)) == 113

    def test_every_query_joins_title_family(self, job):
        # Every JOB query touches a movie-graph table.
        for query in job.queries:
            assert query.info.tables & {"title", "movie_link"}, query.name

    def test_variants_share_structure_not_constants(self, job):
        a = job.query("2a")
        b = job.query("2b")
        assert a.info.join_conditions == b.info.join_conditions
        assert a.sql != b.sql


class TestTPCDS:
    def test_query_count(self):
        workload = load_workload("tpcds-sf1")
        assert len(workload.queries) == 25

    def test_fact_table_cardinalities(self):
        catalog = tpcds_catalog(1.0)
        assert catalog.table("store_sales").rows == 2_880_404
        assert catalog.table("inventory").rows == 11_745_000

    def test_star_join_structure(self):
        workload = load_workload("tpcds-sf1")
        info = workload.query("q3").info
        assert info.tables == {"date_dim", "store_sales", "item"}


class TestWorkloadContainer:
    def test_duplicate_query_names_rejected(self, tiny_catalog):
        query = Query.from_sql("q", "SELECT count(*) FROM users", tiny_catalog)
        with pytest.raises(ReproError):
            Workload("w", tiny_catalog, [query, query])

    def test_query_lookup(self, tiny_workload):
        assert tiny_workload.query("join_all").name == "join_all"
        with pytest.raises(ReproError):
            tiny_workload.query("missing")

    def test_subset(self, tiny_workload):
        subset = tiny_workload.subset(["join_all", "by_country"])
        assert [q.name for q in subset.queries] == ["join_all", "by_country"]

    def test_from_sql_rejects_unknown_table(self, tiny_catalog):
        with pytest.raises(ReproError):
            Query.from_sql("bad", "SELECT 1 FROM ghosts", tiny_catalog)

    def test_len(self, tiny_workload):
        assert len(tiny_workload) == 3
