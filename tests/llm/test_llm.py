"""LLM layer tests: client contract, simulated LLM, script rendering."""

import pytest

from repro.db.hardware import HardwareSpec
from repro.db.indexes import Index
from repro.db.knobs import GB, MB
from repro.errors import LLMError
from repro.llm import SimulatedLLM, render_script
from repro.llm.corpus import hint_setting, hints_for
from repro.llm.scripts import render_index, render_setting

PROMPT = """Recommend some configuration parameters for PostgreSQL to
optimize the system's performance.
Each row in the following list has the following format:
{a join key A}:{all the joins with A in the workload}
lineitem.l_orderkey: orders.o_orderkey
orders.o_custkey: customer.c_custkey
The workload runs on a system with the following specs:
memory: 61GB
cores: 8
"""

MYSQL_PROMPT = PROMPT.replace("PostgreSQL", "MySQL")


class TestScriptRendering:
    def test_postgres_setting(self):
        line = render_setting("postgres", "work_mem", 1 * GB)
        assert line == "ALTER SYSTEM SET work_mem = '1GB';"

    def test_mysql_setting(self):
        line = render_setting("mysql", "innodb_buffer_pool_size", 42 * GB)
        assert line == "SET GLOBAL innodb_buffer_pool_size = '42GB';"

    def test_bool_rendering(self):
        assert "= on;" in render_setting("postgres", "jit", True)
        assert "= OFF;" in render_setting("mysql", "flag", False)

    def test_float_rendering(self):
        assert "1.1" in render_setting("postgres", "random_page_cost", 1.1)

    def test_non_size_int_not_unitized(self):
        line = render_setting("postgres", "effective_io_concurrency", 200)
        assert line.endswith("= 200;")

    def test_index_rendering(self):
        line = render_index(Index("lineitem", ("l_orderkey",)))
        assert line == (
            "CREATE INDEX idx_lineitem_l_orderkey ON lineitem (l_orderkey);"
        )

    def test_full_script(self):
        text = render_script(
            "postgres",
            {"work_mem": 64 * MB},
            [Index("t", ("a",))],
            commentary="-- hello",
        )
        assert text.startswith("-- hello")
        assert "ALTER SYSTEM SET work_mem" in text
        assert "CREATE INDEX" in text


class TestSimulatedLLMPromptReading:
    def test_empty_prompt_rejected(self):
        with pytest.raises(LLMError):
            SimulatedLLM().complete("   ")

    def test_detects_mysql(self):
        response = SimulatedLLM().complete(MYSQL_PROMPT, temperature=0.0)
        assert "SET GLOBAL innodb_buffer_pool_size" in response.text

    def test_detects_postgres(self):
        response = SimulatedLLM().complete(PROMPT, temperature=0.0)
        assert "ALTER SYSTEM SET shared_buffers" in response.text

    def test_applies_25_percent_rule(self):
        # The paper's §6.3 observation: shared_buffers = 25% of 61GB.
        response = SimulatedLLM().complete(PROMPT, temperature=0.0)
        assert "shared_buffers = '15GB'" in response.text

    def test_indexes_derived_from_prompt_columns(self):
        response = SimulatedLLM().complete(PROMPT, temperature=0.0)
        assert "ON lineitem (l_orderkey)" in response.text
        assert "ON customer (c_custkey)" in response.text

    def test_no_workload_lines_no_indexes(self):
        bare = (
            "Recommend some configuration parameters for PostgreSQL.\n"
            "memory: 61GB\ncores: 8\n"
        )
        response = SimulatedLLM().complete(bare, temperature=0.0)
        assert "CREATE INDEX" not in response.text

    def test_raw_sql_fallback_finds_joins(self):
        prompt = (
            "Recommend configuration for PostgreSQL.\n"
            "SELECT 1 FROM a, b WHERE a.x = b.y;\n"
            "memory: 61GB\ncores: 8\n"
        )
        response = SimulatedLLM().complete(prompt, temperature=0.0)
        assert "ON a (x)" in response.text or "ON b (y)" in response.text

    def test_token_accounting(self):
        response = SimulatedLLM().complete(PROMPT, temperature=0.0)
        assert response.prompt_tokens > 0
        assert response.completion_tokens > 0
        assert response.total_tokens == (
            response.prompt_tokens + response.completion_tokens
        )


class TestSampling:
    def test_deterministic_per_seed(self):
        llm = SimulatedLLM()
        a = llm.complete(PROMPT, seed=3).text
        b = llm.complete(PROMPT, seed=3).text
        assert a == b

    def test_different_seeds_vary(self):
        llm = SimulatedLLM()
        texts = {llm.complete(PROMPT, seed=seed).text for seed in range(8)}
        assert len(texts) > 1

    def test_temperature_zero_is_stable_balanced(self):
        llm = SimulatedLLM()
        texts = {
            llm.complete(PROMPT, temperature=0.0, seed=seed).text
            for seed in range(5)
        }
        assert len(texts) == 1

    def test_sample_returns_n(self):
        responses = SimulatedLLM().sample(PROMPT, 5)
        assert len(responses) == 5

    def test_sample_rejects_zero(self):
        with pytest.raises(LLMError):
            SimulatedLLM().sample(PROMPT, 0)

    def test_outliers_appear_at_high_temperature(self):
        llm = SimulatedLLM()
        oversubscribed = 0
        for seed in range(30):
            text = llm.complete(PROMPT, temperature=0.7, seed=seed).text
            if "effective_cache_size = '122GB'" in text:
                oversubscribed += 1
        # ~20% outlier rate over 30 seeds.
        assert 1 <= oversubscribed <= 15

    def test_style_independent_of_prompt_text(self):
        # Equivalent prompts (e.g. obfuscated identifiers) must draw the
        # same style sequence.
        llm = SimulatedLLM()
        plain = llm.complete(PROMPT, seed=4).text
        renamed = llm.complete(PROMPT.replace("lineitem", "t1"), seed=4).text
        assert ("outlier" in plain) == ("outlier" in renamed)


class TestManualCorpus:
    def test_hints_per_system(self):
        assert all(h.system == "postgres" for h in hints_for("postgres"))
        assert all(h.system == "mysql" for h in hints_for("mysql"))
        assert hints_for("postgres") and hints_for("mysql")

    def test_fraction_hint_scales_with_hardware(self):
        hint = next(
            h for h in hints_for("postgres")
            if h.parameter == "shared_buffers" and h.value == 0.25
        )
        hardware = HardwareSpec(memory_gb=64, cores=8)
        assert hint.concrete_value(hardware) == 16 * GB

    def test_cores_hint(self):
        hint = next(
            h for h in hints_for("postgres")
            if h.parameter == "max_parallel_workers"
        )
        assert hint.concrete_value(HardwareSpec(8, 16)) == 16

    def test_flush_method_translated_to_enum(self):
        hint = next(
            h for h in hints_for("mysql") if h.parameter == "innodb_flush_method"
        )
        parameter, value = hint_setting(hint, HardwareSpec(8, 4))
        assert value == "o_direct"

    def test_every_hint_has_text(self):
        from repro.llm.corpus import MANUAL_CORPUS

        assert all(hint.text for hint in MANUAL_CORPUS)
