"""Script rendering: dialects, value formatting, and parse round-trip."""

import pytest

from repro.core.config import parse_config_script
from repro.db.hardware import HardwareSpec
from repro.db.columnar import ColumnarEngine
from repro.db.indexes import Index
from repro.db.mysql import MySQLEngine
from repro.db.postgres import PostgresEngine
from repro.llm.scripts import render_index, render_script, render_setting

MB = 1 << 20
GB = 1 << 30


class TestRenderSetting:
    def test_postgres_dialect(self):
        assert (
            render_setting("postgres", "work_mem", 64 * MB)
            == "ALTER SYSTEM SET work_mem = '64MB';"
        )

    def test_mysql_dialect(self):
        assert (
            render_setting("mysql", "sort_buffer_size", 64 * MB)
            == "SET GLOBAL sort_buffer_size = '64MB';"
        )

    def test_columnar_dialect_is_bare_set(self):
        # An embedded engine has no ALTER SYSTEM / GLOBAL scope.
        assert (
            render_setting("columnar", "memory_limit", 8 * GB)
            == "SET memory_limit = '8GB';"
        )

    @pytest.mark.parametrize(
        "system,value,expected",
        [("postgres", True, "on"), ("postgres", False, "off"),
         ("mysql", True, "ON"), ("mysql", False, "OFF"),
         ("columnar", True, "true"), ("columnar", False, "false")],
    )
    def test_booleans(self, system, value, expected):
        assert f"= {expected};" in render_setting(system, "autovacuum", value)

    def test_size_formatting_only_for_size_knobs(self):
        # Same large integer: formatted as a size for memory knobs,
        # left numeric for counters.
        sized = render_setting("postgres", "shared_buffers", 4 * GB)
        assert "'4GB'" in sized
        plain = render_setting("postgres", "max_connections", 4 * GB)
        assert "'" not in plain

    def test_small_int_stays_numeric(self):
        assert render_setting("postgres", "work_mem", 512) == (
            "ALTER SYSTEM SET work_mem = 512;"
        )

    def test_string_values_quoted(self):
        assert render_setting("mysql", "innodb_flush_method", "o_direct") == (
            "SET GLOBAL innodb_flush_method = 'o_direct';"
        )

    def test_float_values(self):
        assert render_setting(
            "postgres", "checkpoint_completion_target", 0.9
        ).endswith("= 0.9;")


class TestRenderIndexAndScript:
    def test_render_index(self):
        index = Index("users", ("country", "age"))
        assert render_index(index) == (
            f"CREATE INDEX {index.name} ON users (country, age);"
        )

    def test_script_sorts_settings_and_appends_indexes(self):
        script = render_script(
            "postgres",
            {"work_mem": 512, "shared_buffers": 1024},
            [Index("users", ("country",))],
            commentary="-- hello",
        )
        lines = script.split("\n")
        assert lines[0] == "-- hello"
        assert lines[1] == ""
        assert "shared_buffers" in lines[2]  # sorted before work_mem
        assert "work_mem" in lines[3]
        assert lines[4].startswith("CREATE INDEX")

    def test_no_commentary_no_leading_blank(self):
        script = render_script("postgres", {"work_mem": 512}, [])
        assert script.startswith("ALTER SYSTEM SET")


class TestRoundTrip:
    """What render_script emits, parse_config_script must accept."""

    @pytest.mark.parametrize(
        "engine_cls", [PostgresEngine, MySQLEngine, ColumnarEngine]
    )
    def test_settings_round_trip(self, tiny_catalog, engine_cls):
        engine = engine_cls(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))
        knobs = engine.knob_space
        # Pick a few real knobs with their default values.
        names = sorted(knobs.names())[:4]
        settings = {name: knobs.knob(name).default for name in names}
        script = render_script(engine.system, settings, [])
        config = parse_config_script(script, knobs, tiny_catalog)
        assert not config.rejected
        assert set(config.settings) == set(settings)

    def test_index_round_trip(self, tiny_catalog):
        engine = PostgresEngine(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))
        index = Index("users", ("country",))
        script = render_script("postgres", {}, [index])
        config = parse_config_script(script, engine.knob_space, tiny_catalog)
        assert [i.key for i in config.indexes] == [index.key]
