"""Retrieval-augmented prompting tests."""

from repro.llm.corpus import MANUAL_CORPUS
from repro.llm.retrieval import RetrievalAugmenter


class TestRetrieve:
    def test_relevant_passage_found(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve(
            "recommend shared_buffers memory settings", system="postgres"
        )
        assert passages
        assert passages[0].hint.parameter == "shared_buffers"

    def test_system_filter(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve("buffer pool memory", system="mysql")
        assert all(p.hint.system == "mysql" for p in passages)

    def test_top_k_respected(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve("memory settings for indexes", top_k=2)
        assert len(passages) <= 2

    def test_scores_descending(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve(
            "memory cache index parallel workers", top_k=5
        )
        scores = [p.score for p in passages]
        assert scores == sorted(scores, reverse=True)

    def test_no_match_returns_empty(self):
        augmenter = RetrievalAugmenter()
        assert augmenter.retrieve("zzzz qqqq xxxx") == []

    def test_custom_corpus(self):
        augmenter = RetrievalAugmenter(corpus=MANUAL_CORPUS[:3])
        passages = augmenter.retrieve("shared_buffers memory", top_k=10)
        assert len(passages) <= 3


class TestAugment:
    def test_appends_documentation_section(self):
        augmenter = RetrievalAugmenter()
        prompt = "Recommend configuration for PostgreSQL shared_buffers memory."
        augmented = augmenter.augment(prompt, system="postgres")
        assert augmented.startswith(prompt)
        assert "Relevant documentation:" in augmented

    def test_budget_limits_passages(self):
        augmenter = RetrievalAugmenter()
        prompt = "memory cache index parallel random_page_cost work_mem"
        tight = augmenter.augment(prompt, token_budget=30, top_k=5)
        loose = augmenter.augment(prompt, token_budget=500, top_k=5)
        assert len(tight) <= len(loose)

    def test_no_match_leaves_prompt_untouched(self):
        augmenter = RetrievalAugmenter()
        assert augmenter.augment("zzzz qqqq") == "zzzz qqqq"

    def test_zero_budget_leaves_prompt_untouched(self):
        augmenter = RetrievalAugmenter()
        prompt = "shared_buffers memory"
        assert augmenter.augment(prompt, token_budget=0) == prompt

    def test_augmented_prompt_still_drives_llm(self):
        from repro.llm import SimulatedLLM

        augmenter = RetrievalAugmenter()
        prompt = (
            "Recommend configuration parameters for PostgreSQL.\n"
            "a.x: b.y\nmemory: 61GB\ncores: 8\n"
        )
        augmented = augmenter.augment(prompt, system="postgres")
        response = SimulatedLLM().complete(augmented, temperature=0.0)
        assert "ALTER SYSTEM SET" in response.text
