"""Retrieval-augmented prompting tests."""

from repro.llm.corpus import MANUAL_CORPUS
from repro.llm.retrieval import RetrievalAugmenter


class TestRetrieve:
    def test_relevant_passage_found(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve(
            "recommend shared_buffers memory settings", system="postgres"
        )
        assert passages
        assert passages[0].hint.parameter == "shared_buffers"

    def test_system_filter(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve("buffer pool memory", system="mysql")
        assert all(p.hint.system == "mysql" for p in passages)

    def test_top_k_respected(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve("memory settings for indexes", top_k=2)
        assert len(passages) <= 2

    def test_scores_descending(self):
        augmenter = RetrievalAugmenter()
        passages = augmenter.retrieve(
            "memory cache index parallel workers", top_k=5
        )
        scores = [p.score for p in passages]
        assert scores == sorted(scores, reverse=True)

    def test_no_match_returns_empty(self):
        augmenter = RetrievalAugmenter()
        assert augmenter.retrieve("zzzz qqqq xxxx") == []

    def test_custom_corpus(self):
        augmenter = RetrievalAugmenter(corpus=MANUAL_CORPUS[:3])
        passages = augmenter.retrieve("shared_buffers memory", top_k=10)
        assert len(passages) <= 3


class TestAugment:
    def test_appends_documentation_section(self):
        augmenter = RetrievalAugmenter()
        prompt = "Recommend configuration for PostgreSQL shared_buffers memory."
        augmented = augmenter.augment(prompt, system="postgres")
        assert augmented.startswith(prompt)
        assert "Relevant documentation:" in augmented

    def test_budget_limits_passages(self):
        augmenter = RetrievalAugmenter()
        prompt = "memory cache index parallel random_page_cost work_mem"
        tight = augmenter.augment(prompt, token_budget=30, top_k=5)
        loose = augmenter.augment(prompt, token_budget=500, top_k=5)
        assert len(tight) <= len(loose)

    def test_no_match_leaves_prompt_untouched(self):
        augmenter = RetrievalAugmenter()
        assert augmenter.augment("zzzz qqqq") == "zzzz qqqq"

    def test_zero_budget_leaves_prompt_untouched(self):
        augmenter = RetrievalAugmenter()
        prompt = "shared_buffers memory"
        assert augmenter.augment(prompt, token_budget=0) == prompt

    def test_augmented_prompt_still_drives_llm(self):
        from repro.llm import SimulatedLLM

        augmenter = RetrievalAugmenter()
        prompt = (
            "Recommend configuration parameters for PostgreSQL.\n"
            "a.x: b.y\nmemory: 61GB\ncores: 8\n"
        )
        augmented = augmenter.augment(prompt, system="postgres")
        response = SimulatedLLM().complete(augmented, temperature=0.0)
        assert "ALTER SYSTEM SET" in response.text


class TestRetrieveScoring:
    def corpus(self):
        from repro.llm.corpus import ManualHint

        return [
            ManualHint("postgres", "b_param", "absolute", 1.0, "alpha beta gamma"),
            ManualHint("postgres", "a_param", "absolute", 1.0, "alpha beta gamma"),
            ManualHint("postgres", "c_param", "absolute", 1.0, "alpha delta"),
            ManualHint("postgres", "rare", "absolute", 1.0, "epsilon zeta"),
        ]

    def test_equal_scores_tie_break_by_parameter_name(self):
        augmenter = RetrievalAugmenter(corpus=self.corpus())
        passages = augmenter.retrieve("alpha beta gamma", top_k=3)
        # a_param and b_param score identically; the deterministic
        # tie-break orders them by parameter name.
        assert [p.hint.parameter for p in passages[:2]] == ["a_param", "b_param"]
        assert passages[0].score == passages[1].score

    def test_rare_terms_outweigh_common_ones(self):
        augmenter = RetrievalAugmenter(corpus=self.corpus())
        # "alpha" appears in 3 of 4 documents, "epsilon" in 1: IDF must
        # rank the document matching the rare term first.
        passages = augmenter.retrieve("alpha epsilon", top_k=4)
        assert passages[0].hint.parameter == "rare"

    def test_repeated_query_terms_do_not_inflate_scores(self):
        augmenter = RetrievalAugmenter(corpus=self.corpus())
        once = augmenter.retrieve("epsilon", top_k=1)
        thrice = augmenter.retrieve("epsilon epsilon epsilon", top_k=1)
        assert once[0].score == thrice[0].score

    def test_top_k_zero_returns_nothing(self):
        augmenter = RetrievalAugmenter(corpus=self.corpus())
        assert augmenter.retrieve("alpha", top_k=0) == []


class TestAugmentBudget:
    def test_all_passages_over_budget_leave_prompt_untouched(self):
        from repro.llm.corpus import ManualHint

        huge = ManualHint(
            "postgres", "big", "absolute", 1.0, "shared_buffers " + "word " * 400
        )
        augmenter = RetrievalAugmenter(corpus=[huge])
        prompt = "tune shared_buffers"
        # The passage matches but cannot fit: the header alone must not
        # be appended.
        assert augmenter.augment(prompt, token_budget=50) == prompt

    def test_budget_exhaustion_stops_mid_list(self):
        from repro.llm.corpus import ManualHint
        from repro.core.prompt.tokens import count_tokens

        short = ManualHint("postgres", "a_small", "absolute", 1.0, "alpha hint")
        long = ManualHint(
            "postgres", "b_large", "absolute", 1.0, "alpha " + "filler " * 100
        )
        augmenter = RetrievalAugmenter(corpus=[short, long])
        budget = count_tokens("\nRelevant documentation:") + count_tokens(
            short.text
        ) + 1
        augmented = augmenter.augment("alpha", token_budget=budget, top_k=5)
        assert short.text in augmented
        assert "filler" not in augmented

    def test_augmented_text_ends_with_newline(self):
        augmenter = RetrievalAugmenter()
        augmented = augmenter.augment(
            "shared_buffers memory settings", system="postgres"
        )
        assert augmented.endswith("\n")
