"""The versioned JSON codec must round-trip session state *exactly*."""

import math

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta
from repro.core.result import TracePoint, TuningResult
from repro.core.rounds import BestConfig, RoundCursor, SelectionState, new_stats
from repro.core.tuner import LambdaTuneOptions
from repro.db.engine import EngineState
from repro.db.indexes import Index
from repro.errors import SessionError
from repro.faults import FaultPlan
from repro.session import codec


def roundtrip(obj):
    return codec.loads(codec.dumps(obj))


class TestPrimitives:
    def test_scalars(self):
        for value in (None, True, False, 0, -17, "text", ""):
            assert roundtrip(value) == value
            assert type(roundtrip(value)) is type(value)

    @pytest.mark.parametrize(
        "value",
        [
            0.1 + 0.2,          # classic shortest-repr case
            1.0 / 3.0,
            6.62607015e-34,
            1.7976931348623157e308,
            5e-324,             # smallest subnormal
            -0.0,
            math.inf,
            -math.inf,
        ],
    )
    def test_floats_bit_exact(self, value):
        decoded = roundtrip(value)
        assert repr(decoded) == repr(value)

    def test_containers_keep_types(self):
        obj = {
            "list": [1, 2, 3],
            "tuple": (1, "two", 3.0),
            "set": {3, 1, 2},
            "frozenset": frozenset({"b", "a"}),
            "nested": [((1, 2), {"x": (3,)})],
        }
        decoded = roundtrip(obj)
        assert decoded == obj
        assert isinstance(decoded["tuple"], tuple)
        assert isinstance(decoded["set"], set)
        assert isinstance(decoded["frozenset"], frozenset)
        assert isinstance(decoded["nested"][0][0], tuple)

    def test_sets_serialize_sorted_for_stable_bytes(self):
        a = codec.dumps({"s": {"b", "a", "c"}})
        b = codec.dumps({"s": {"c", "a", "b"}})
        assert a == b

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SessionError, match="non-string key"):
            codec.dumps({1: "x"})

    def test_unknown_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(SessionError, match="no codec"):
            codec.dumps(Mystery())

    def test_unknown_kind_rejected(self):
        with pytest.raises(SessionError, match="unknown codec kind"):
            codec.decode({"__k__": "Nonsense"})


class TestRegisteredTypes:
    def test_index(self):
        index = Index("users", ("country", "age"))
        decoded = roundtrip(index)
        assert decoded == index
        assert decoded.name == index.name

    def test_configuration(self):
        config = Configuration(
            name="llm-config-1",
            settings={"work_mem": "512MB", "random_page_cost": 1.1},
            indexes=[Index("users", ("country",))],
            raw_text="SET work_mem = '512MB';",
            rejected=["bogus command"],
        )
        decoded = roundtrip(config)
        assert decoded.name == config.name
        assert decoded.settings == config.settings
        assert decoded.indexes == config.indexes
        assert decoded.raw_text == config.raw_text
        assert decoded.rejected == config.rejected

    def test_config_meta(self):
        meta = ConfigMeta(
            time=1.5,
            is_complete=True,
            index_time=0.25,
            completed_queries={"q1", "q3"},
            failed=True,
            failure="crash [site='engine.query_crash']",
        )
        decoded = roundtrip(meta)
        for field in (
            "time",
            "is_complete",
            "index_time",
            "completed_queries",
            "failed",
            "failure",
        ):
            assert getattr(decoded, field) == getattr(meta, field)

    def test_selection_state_full_graph(self):
        config = Configuration(name="c1", settings={"work_mem": "1GB"})
        state = SelectionState(
            timeout=5.0,
            rounds=3,
            meta={"c1": ConfigMeta(time=0.7, is_complete=True)},
            best=BestConfig(time=0.7, config=config),
            trace=[(1.25, 0.7)],
            candidates=["c2", "c3"],
            stats=new_stats(),
        )
        decoded = roundtrip(state)
        assert repr(decoded.timeout) == repr(state.timeout)
        assert decoded.rounds == state.rounds
        assert decoded.meta["c1"].time == 0.7
        assert decoded.best.config.name == "c1"
        assert decoded.trace == [(1.25, 0.7)]
        assert isinstance(decoded.trace[0], tuple)
        assert decoded.candidates == ["c2", "c3"]
        assert decoded.stats == state.stats

    def test_fresh_selection_state_has_inf_best(self):
        state = SelectionState.initial([Configuration(name="x")], 10.0)
        decoded = roundtrip(state)
        assert math.isinf(decoded.best.time)
        assert decoded.best.config is None

    def test_round_cursor(self):
        cursor = RoundCursor(phase="final", order=["b", "a"], position=1)
        decoded = roundtrip(cursor)
        assert (decoded.phase, decoded.order, decoded.position) == (
            "final",
            ["b", "a"],
            1,
        )

    def test_engine_state(self):
        state = EngineState(
            settings=(("shared_buffers", "1GB"), ("work_mem", 4096)),
            indexes=(Index("users", ("country",)),),
            clock=123.456789,
        )
        decoded = roundtrip(state)
        assert decoded == state
        assert repr(decoded.clock) == repr(state.clock)

    def test_fault_plan(self):
        plan = FaultPlan(seed=7, density=0.15)
        assert roundtrip(plan) == plan

    def test_tuning_result(self):
        result = TuningResult(
            tuner="lambda-tune",
            workload="tpch",
            system="postgres",
            best_time=12.5,
            best_config=Configuration(name="winner"),
            trace=[TracePoint(1.0, 20.0), TracePoint(2.0, 12.5)],
            configs_evaluated=5,
            tuning_seconds=42.0,
            extras={"rounds": 2, "meta": {"winner": ConfigMeta(time=12.5)}},
        )
        decoded = roundtrip(result)
        assert decoded.workload == "tpch"
        assert repr(decoded.best_time) == repr(result.best_time)
        assert decoded.best_config.name == "winner"
        assert decoded.trace == result.trace
        assert decoded.extras["meta"]["winner"].time == 12.5

    def test_options(self):
        options = LambdaTuneOptions(
            token_budget=None, workers=4, executor="thread", seed=3
        )
        assert roundtrip(options) == options

    def test_resource_budget(self):
        from repro.db.resources import ResourceBudget

        budget = ResourceBudget(
            max_memory_bytes=8 * 1024**3, max_disk_bytes=100 * 1024**3
        )
        assert roundtrip(budget) == budget
        assert roundtrip(ResourceBudget(max_memory_bytes=1)) == ResourceBudget(
            max_memory_bytes=1
        )

    def test_options_with_budget(self):
        from repro.db.resources import parse_budget

        options = LambdaTuneOptions(seed=3, budget=parse_budget("ram=8GB"))
        decoded = roundtrip(options)
        assert decoded == options
        assert decoded.budget.max_memory_bytes == 8 * 1024**3


class TestVersioning:
    def test_current_version_accepted(self):
        codec.check_version(codec.CODEC_VERSION)

    @pytest.mark.parametrize("version", [0, 2, None, "1"])
    def test_other_versions_rejected(self, version):
        with pytest.raises(SessionError, match="codec version"):
            codec.check_version(version)
