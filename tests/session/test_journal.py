"""The write-ahead journal: contiguous, crash-tolerant, append-able."""

import json

import pytest

from repro.core.config import Configuration
from repro.errors import SessionError
from repro.session import TuningJournal


class TestWriteRead:
    def test_appends_contiguous_sequence(self, tmp_path):
        path = tmp_path / "run.journal"
        with TuningJournal(path) as journal:
            assert journal.append("a", {"n": 1}) == 0
            assert journal.append("b", {"n": 2}) == 1
            assert journal.append("c", {"n": 3}, sync=True) == 2
        events = TuningJournal.read(path)
        assert [(e.seq, e.kind, e.payload["n"]) for e in events] == [
            (0, "a", 1),
            (1, "b", 2),
            (2, "c", 3),
        ]

    def test_payloads_round_trip_codec_types(self, tmp_path):
        path = tmp_path / "run.journal"
        config = Configuration(name="c1", settings={"work_mem": "1GB"})
        with TuningJournal(path) as journal:
            journal.append("sample_accepted", {"ordinal": 0, "config": config})
        [event] = TuningJournal.read(path)
        decoded = event.payload["config"]
        assert decoded.name == "c1"
        assert decoded.settings == {"work_mem": "1GB"}

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TuningJournal.read(tmp_path / "absent.journal")


class TestCrashTolerance:
    def write_events(self, path, count=3):
        with TuningJournal(path) as journal:
            for n in range(count):
                journal.append("tick", {"n": n})

    def test_torn_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "run.journal"
        self.write_events(path)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 3, "kind": "tick", "payl')  # died mid-write
        events = TuningJournal.read(path)
        assert [e.seq for e in events] == [0, 1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        self.write_events(path)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:10] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SessionError, match="corrupt journal line 2"):
            TuningJournal.read(path)

    def test_non_contiguous_sequence_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        self.write_events(path)
        record = json.dumps({"seq": 7, "kind": "tick", "payload": {}})
        with open(path, "a", encoding="utf-8") as f:
            f.write(record + "\n")
        with pytest.raises(SessionError, match="non-contiguous"):
            TuningJournal.read(path)


class TestAppendMode:
    def test_continues_sequence(self, tmp_path):
        path = tmp_path / "run.journal"
        with TuningJournal(path) as journal:
            journal.append("a", {})
            journal.append("b", {})
        with TuningJournal(path, append=True) as journal:
            assert journal.append("c", {}) == 2
        assert [e.kind for e in TuningJournal.read(path)] == ["a", "b", "c"]

    def test_truncates_torn_tail_before_continuing(self, tmp_path):
        path = tmp_path / "run.journal"
        with TuningJournal(path) as journal:
            journal.append("a", {})
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"torn')
        with TuningJournal(path, append=True) as journal:
            assert journal.append("b", {}) == 1
        events = TuningJournal.read(path)
        assert [e.kind for e in events] == ["a", "b"]
        assert "torn" not in path.read_text()

    def test_append_to_fresh_path_starts_at_zero(self, tmp_path):
        path = tmp_path / "new.journal"
        with TuningJournal(path, append=True) as journal:
            assert journal.append("a", {}) == 0
