"""Shared helpers for the crash-safe session suite."""

from __future__ import annotations

import pytest

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.postgres import PostgresEngine
from repro.faults import FaultyLLMClient
from repro.llm.mock import SimulatedLLM
from repro.session import TuningSession
from repro.workloads.base import Workload

#: Small, fast tuning options shared by every session test; seeds are
#: layered on top so each sweep sees different LLM samples.
FAST_OPTIONS = LambdaTuneOptions(
    token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
)


def fingerprint(result):
    """Bit-exact identity of a TuningResult (floats via ``repr``).

    Mirrors the chaos-suite fingerprint and additionally pins the
    fields the session layer is responsible for restoring: the workload
    name and the tuning-clock total.  Parallel merge ``stats`` are
    deliberately excluded -- a resumed run legitimately folds fewer
    outcomes than an uninterrupted one.
    """
    meta = result.extras.get("meta", {})
    return (
        repr(result.best_time),
        result.best_config.name if result.best_config else None,
        tuple(
            (
                name,
                repr(m.time),
                m.is_complete,
                repr(m.index_time),
                m.failed,
                m.failure,
                tuple(sorted(m.completed_queries)),
            )
            for name, m in sorted(meta.items())
        ),
        tuple((repr(p.time), repr(p.best_time)) for p in result.trace),
        result.extras.get("rounds"),
        result.extras.get("fallback"),
        tuple(result.extras.get("failed_configs", ())),
        tuple(result.extras.get("dropped_samples", ())),
        result.workload,
        repr(result.tuning_seconds),
    )


def make_llm(plan=None):
    llm = SimulatedLLM()
    if plan is not None:
        llm = FaultyLLMClient(llm, plan)
        llm.sleep = lambda seconds: None
    return llm


def make_tuner(
    workload: Workload,
    *,
    seed=9,
    workers=0,
    executor="process",
    plan=None,
    engine_cls=PostgresEngine,
    budget=None,
) -> LambdaTune:
    options = FAST_OPTIONS.ablated(
        seed=seed, workers=workers, executor=executor, budget=budget
    )
    engine = engine_cls(workload.catalog)
    if plan is not None:
        engine.install_faults(plan)
    return LambdaTune(engine, make_llm(plan), options)


def plain_tune(workload, **kwargs):
    """An unjournaled reference run."""
    tuner = make_tuner(workload, **kwargs)
    return tuner.tune(list(workload.queries), workload_name=workload.name)


def journaled_tune(workload, path, **kwargs):
    """The same run through :class:`TuningSession`."""
    tuner = make_tuner(workload, **kwargs)
    session = TuningSession(tuner, path, workload_name=workload.name)
    return session.run(list(workload.queries))


def resume_tune(workload, path, *, plan=None, engine_cls=PostgresEngine):
    """Continue ``path`` on a *fresh* engine and LLM client.

    The engine is created without the fault plan installed: resume must
    reinstall the journaled plan itself, and these tests rely on that.
    Likewise the resource budget is *not* passed in here -- resume must
    recover it from the journaled options.
    """
    engine = engine_cls(workload.catalog)
    return TuningSession.resume(path, engine=engine, llm=make_llm(plan))


@pytest.fixture()
def no_rerun_guard(monkeypatch):
    """Fail the test if any evaluation re-runs a completed query."""
    original = ConfigurationEvaluator.evaluate

    def checked(self, config, queries, timeout, meta):
        overlap = {query.name for query in queries} & meta.completed_queries
        assert not overlap, (
            f"re-ran completed queries {sorted(overlap)} for {config.name}"
        )
        return original(self, config, queries, timeout, meta)

    monkeypatch.setattr(ConfigurationEvaluator, "evaluate", checked)
