"""TuningSession semantics: journaling is free, rehydration is strict."""

import json

import pytest

from repro.db.postgres import PostgresEngine
from repro.errors import SessionError
from repro.llm.mock import SimulatedLLM
from repro.session import (
    JournalEvent,
    TuningJournal,
    TuningSession,
    codec,
    rehydrate,
)
from tests.session.conftest import (
    fingerprint,
    journaled_tune,
    plain_tune,
    resume_tune,
)


class TestJournaledRun:
    def test_matches_unjournaled_run_exactly(self, tiny_workload, tmp_path):
        plain = plain_tune(tiny_workload)
        journaled = journaled_tune(tiny_workload, tmp_path / "run.journal")
        assert fingerprint(journaled) == fingerprint(plain)

    def test_threads_workload_name(self, tiny_workload, tmp_path):
        result = journaled_tune(tiny_workload, tmp_path / "run.journal")
        assert result.workload == "tiny"

    def test_journal_shape(self, tiny_workload, tmp_path):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        kinds = [e.kind for e in TuningJournal.read(path)]
        assert kinds[0] == "session_start"
        assert kinds[-1] == "done"
        assert "prompt_generated" in kinds
        assert kinds.count("selection_started") == kinds.count(
            "selection_finished"
        )
        # Every main round checkpoints; the final pass never does (its
        # updates are not idempotent, so resume must not re-enter it
        # from a post-final checkpoint).
        rounds = [k for k in kinds if k == "round_started"]
        checkpoints = [k for k in kinds if k == "checkpoint"]
        assert len(checkpoints) == len(rounds) - kinds.count(
            "selection_started"
        )

    def test_session_start_header_is_complete(self, tiny_workload, tmp_path):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path, seed=3)
        header = TuningJournal.read(path)[0].payload
        assert header["codec_version"] == codec.CODEC_VERSION
        assert header["workload_name"] == "tiny"
        assert header["system"] == "postgres"
        assert header["options"].seed == 3
        assert [name for name, _ in header["queries"]] == [
            q.name for q in tiny_workload.queries
        ]
        assert header["start_clock"] == 0.0


class TestResumeOfFinishedJournal:
    def test_returns_recorded_result_without_touching_engine(
        self, tiny_workload, tmp_path
    ):
        path = tmp_path / "run.journal"
        original = journaled_tune(tiny_workload, path)
        engine = PostgresEngine(tiny_workload.catalog)
        resumed = TuningSession.resume(path, engine=engine, llm=SimulatedLLM())
        assert fingerprint(resumed) == fingerprint(original)
        # The run was already done: the engine must not have been
        # restored, faulted, or driven.
        assert engine.clock.now == 0.0
        fresh = PostgresEngine(tiny_workload.catalog)
        assert engine.capture_state() == fresh.capture_state()

    def test_resume_is_idempotent(self, tiny_workload, tmp_path):
        path = tmp_path / "run.journal"
        original = journaled_tune(tiny_workload, path)
        first = resume_tune(tiny_workload, path)
        second = resume_tune(tiny_workload, path)
        assert fingerprint(first) == fingerprint(original)
        assert fingerprint(second) == fingerprint(original)


class TestRehydrateStrictness:
    def test_empty_journal_rejected(self):
        with pytest.raises(SessionError, match="session_start"):
            rehydrate([], catalog=None)

    def test_journal_not_starting_with_header_rejected(
        self, tiny_workload, tmp_path
    ):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        events = TuningJournal.read(path)[1:]
        with pytest.raises(SessionError, match="session_start"):
            rehydrate(events, tiny_workload.catalog)

    def test_codec_version_mismatch_rejected(self, tiny_workload, tmp_path):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["payload"]["codec_version"] = codec.CODEC_VERSION + 1
        lines[0] = json.dumps(header, separators=(",", ":")) + "\n"
        path.write_text("".join(lines))
        engine = PostgresEngine(tiny_workload.catalog)
        with pytest.raises(SessionError, match="codec version"):
            TuningSession.resume(path, engine=engine, llm=SimulatedLLM())

    def test_unknown_event_kind_rejected(self, tiny_workload, tmp_path):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        events = TuningJournal.read(path)
        events[1] = JournalEvent(seq=1, kind="mystery", payload={})
        with pytest.raises(SessionError, match="unknown journal event"):
            rehydrate(events, tiny_workload.catalog)

    def test_selection_event_before_selection_started_rejected(
        self, tiny_workload, tmp_path
    ):
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        events = TuningJournal.read(path)
        header = events[0]
        round_event = next(e for e in events if e.kind == "round_started")
        with pytest.raises(SessionError, match="before any selection_started"):
            rehydrate([header, round_event], tiny_workload.catalog)
