"""Kill-at-every-journal-boundary resume sweeps (the PR's acceptance bar).

For ≥8 seeds × {serial, thread, process} executors, a journaled tune is
truncated after *every* event line -- simulating a crash at each
durability boundary -- and resumed on a fresh engine.  Every resumed
run must

- reproduce the uninterrupted run's result byte-for-byte (floats via
  ``repr``, trace, meta, workload name, tuning clock), and
- never re-execute a query the journal already recorded as completed
  (enforced by ``no_rerun_guard`` for the whole sweep).

A chaos variant repeats the sweep with a PR-3 ``FaultPlan`` installed
engine- and LLM-side: resume must reinstall the journaled plan and
still converge to the identical fingerprint.
"""

import json

import pytest

from repro.db.columnar import ColumnarEngine
from repro.db.resources import parse_budget
from repro.faults import FaultPlan
from repro.session import TuningJournal
from tests.session.conftest import (
    fingerprint,
    journaled_tune,
    plain_tune,
    resume_tune,
)

#: ≥8 distinct LLM seeds; worker counts cycle with the seed.
RESUME_SEEDS = list(range(8))
EXECUTORS = ["serial", "thread", "process"]


def boundary_sweep(
    workload,
    tmp_path,
    *,
    seed,
    workers,
    executor,
    plan=None,
    engine_cls=None,
    budget=None,
):
    """Truncate after every journal line; resume; compare fingerprints."""
    kwargs = dict(seed=seed, workers=workers, executor=executor, plan=plan)
    if engine_cls is not None:
        kwargs["engine_cls"] = engine_cls
    if budget is not None:
        kwargs["budget"] = budget
    reference = plain_tune(workload, **kwargs)

    path = tmp_path / "run.journal"
    journaled = journaled_tune(workload, path, **kwargs)
    assert fingerprint(journaled) == fingerprint(reference), (
        f"journaling changed the result (seed={seed}, executor={executor})"
    )

    lines = path.read_text().splitlines(keepends=True)
    assert len(lines) >= 8, "journal suspiciously short for a full tune"
    kinds = [json.loads(line)["kind"] for line in lines]
    for boundary in range(1, len(lines) + 1):
        trunc = tmp_path / "crash.journal"
        trunc.write_text("".join(lines[:boundary]))
        resume_kwargs = {"plan": plan}
        if engine_cls is not None:
            resume_kwargs["engine_cls"] = engine_cls
        resumed = resume_tune(workload, trunc, **resume_kwargs)
        assert fingerprint(resumed) == fingerprint(reference), (
            f"resume diverged at boundary {boundary}/{len(lines)} "
            f"(after {kinds[boundary - 1]!r}; seed={seed}, "
            f"workers={workers}, executor={executor}, plan={plan!r})"
        )


class TestBoundarySweep:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("seed", RESUME_SEEDS)
    def test_resume_is_byte_identical_at_every_boundary(
        self, tiny_workload, tmp_path, seed, executor, no_rerun_guard
    ):
        workers = 0 if executor == "serial" else 2 + seed % 3
        boundary_sweep(
            tiny_workload,
            tmp_path,
            seed=seed,
            workers=workers,
            executor=executor,
        )

    def test_resume_after_torn_tail(self, tiny_workload, tmp_path):
        # A crash mid-write leaves a torn final line; resume must drop
        # it and continue from the last intact event.
        reference = plain_tune(tiny_workload)
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        lines = path.read_text().splitlines(keepends=True)
        trunc = tmp_path / "crash.journal"
        trunc.write_text("".join(lines[:10]) + lines[10][: len(lines[10]) // 2])
        resumed = resume_tune(tiny_workload, trunc)
        assert fingerprint(resumed) == fingerprint(reference)


class TestChaosBoundarySweep:
    """The sweep under PR-3 fault injection."""

    @pytest.mark.parametrize(
        "seed,density,executor",
        [
            (0, 0.05, "serial"),
            (1, 0.15, "serial"),
            (2, 0.4, "thread"),
            (3, 0.15, "thread"),
            (4, 0.05, "process"),
            (5, 0.4, "serial"),
        ],
    )
    def test_resume_under_faults(
        self, tiny_workload, tmp_path, seed, density, executor, no_rerun_guard
    ):
        plan = FaultPlan(seed=seed, density=density)
        workers = 0 if executor == "serial" else 3
        boundary_sweep(
            tiny_workload,
            tmp_path,
            seed=seed,
            workers=workers,
            executor=executor,
            plan=plan,
        )

    def test_fault_plan_reinstalled_on_resume(self, tiny_workload, tmp_path):
        # resume_tune builds the engine WITHOUT the plan; equality with
        # the faulted reference proves resume reinstalled it from the
        # journal header.
        plan = FaultPlan(seed=2, density=0.4)
        reference = plain_tune(tiny_workload, plan=plan)
        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path, plan=plan)
        lines = path.read_text().splitlines(keepends=True)
        trunc = tmp_path / "crash.journal"
        trunc.write_text("".join(lines[: len(lines) // 2]))
        resumed = resume_tune(tiny_workload, trunc, plan=plan)
        assert fingerprint(resumed) == fingerprint(reference)
        assert reference.extras["failed_configs"] or reference.extras[
            "dropped_samples"
        ], "plan injected no faults; chaos sweep is vacuous"


class TestBudgetBoundarySweep:
    """The sweep with the resource-budget objective active.

    ``resume_tune`` never sees the budget -- resume must recover it
    from the journaled options, or the resumed run would admit the
    quarantined configs and diverge.
    """

    @pytest.mark.parametrize(
        "seed,executor", [(9, "serial"), (9, "thread"), (9, "process")]
    )
    def test_resume_preserves_quarantine(
        self, tiny_workload, tmp_path, seed, executor, no_rerun_guard
    ):
        budget = parse_budget("ram=32GB")
        workers = 0 if executor == "serial" else 2
        boundary_sweep(
            tiny_workload,
            tmp_path,
            seed=seed,
            workers=workers,
            executor=executor,
            budget=budget,
        )
        # The scenario must actually exercise the gate.
        reference = plain_tune(tiny_workload, seed=seed, budget=budget)
        assert reference.extras["failed_configs"], (
            "budget quarantined nothing; sweep is vacuous"
        )
        assert all(
            "infeasible under budget" in m.failure
            for m in reference.extras["meta"].values()
            if m.failed
        )

    def test_resume_preserves_fallback_under_budget(
        self, tiny_workload, tmp_path
    ):
        # Every LLM sample is infeasible: the run must fall back to the
        # default config, on resume exactly as uninterrupted.
        budget = parse_budget("ram=16GB")
        boundary_sweep(
            tiny_workload, tmp_path, seed=9, workers=0, executor="serial",
            budget=budget,
        )
        reference = plain_tune(tiny_workload, budget=budget)
        assert reference.extras["fallback"] is True


class TestColumnarBoundarySweep:
    """The sweep on the third backend, with and without chaos."""

    @pytest.mark.parametrize(
        "seed,executor", [(0, "serial"), (3, "thread"), (6, "process")]
    )
    def test_resume_is_byte_identical(
        self, tiny_workload, tmp_path, seed, executor, no_rerun_guard
    ):
        workers = 0 if executor == "serial" else 2
        boundary_sweep(
            tiny_workload,
            tmp_path,
            seed=seed,
            workers=workers,
            executor=executor,
            engine_cls=ColumnarEngine,
        )

    def test_resume_under_faults_and_budget(
        self, tiny_workload, tmp_path, no_rerun_guard
    ):
        boundary_sweep(
            tiny_workload,
            tmp_path,
            seed=2,
            workers=2,
            executor="thread",
            plan=FaultPlan(seed=2, density=0.15),
            engine_cls=ColumnarEngine,
            budget=parse_budget("ram=60GB,disk=200GB"),
        )


class TestNoReexecution:
    def test_completed_queries_never_rerun_on_resume(
        self, tiny_workload, tmp_path, monkeypatch
    ):
        """Strict form: resumed evaluations may only see pending queries."""
        from repro.core.evaluator import ConfigurationEvaluator

        path = tmp_path / "run.journal"
        journaled_tune(tiny_workload, path)
        lines = path.read_text().splitlines(keepends=True)

        executed: list[tuple[str, str]] = []
        original = ConfigurationEvaluator.evaluate

        def spying(self, config, queries, timeout, meta):
            overlap = {q.name for q in queries} & meta.completed_queries
            assert not overlap, f"re-ran {sorted(overlap)} for {config.name}"
            executed.extend((config.name, q.name) for q in queries)
            return original(self, config, queries, timeout, meta)

        monkeypatch.setattr(ConfigurationEvaluator, "evaluate", spying)

        # Resume from the last checkpoint: the replayed prefix holds
        # completed work that must not be touched again.
        checkpoint_at = max(
            i
            for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "checkpoint"
        )
        trunc = tmp_path / "crash.journal"
        trunc.write_text("".join(lines[: checkpoint_at + 1]))
        resume_tune(tiny_workload, trunc)
        assert executed, "resume did no work at all -- sweep is vacuous"
