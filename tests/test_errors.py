"""Exception hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SQLError,
            errors.CatalogError,
            errors.ConfigurationError,
            errors.KnobError,
            errors.SolverError,
            errors.LLMError,
            errors.BudgetExceededError,
            errors.SchedulerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_knob_error_is_configuration_error(self):
        assert issubclass(errors.KnobError, errors.ConfigurationError)

    def test_sql_error_position(self):
        error = errors.SQLError("bad", position=7)
        assert error.position == 7
        assert errors.SQLError("bad").position is None

    def test_package_reexports(self):
        import repro

        assert repro.ReproError is errors.ReproError
        assert repro.__version__
