"""Exception hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SQLError,
            errors.CatalogError,
            errors.ConfigurationError,
            errors.KnobError,
            errors.SolverError,
            errors.LLMError,
            errors.BudgetExceededError,
            errors.SchedulerError,
            errors.ConfigurationRejectedError,
            errors.EngineFaultError,
            errors.TransientEngineError,
            errors.LLMTransientError,
            errors.LLMTimeoutError,
            errors.LLMRateLimitError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_knob_error_is_configuration_error(self):
        assert issubclass(errors.KnobError, errors.ConfigurationError)

    def test_rejected_is_configuration_error(self):
        # Selection code catches ConfigurationError to quarantine a
        # candidate; a whole-script rejection must be caught with it.
        assert issubclass(
            errors.ConfigurationRejectedError, errors.ConfigurationError
        )

    def test_transient_engine_error_is_engine_fault(self):
        assert issubclass(errors.TransientEngineError, errors.EngineFaultError)

    def test_llm_transient_hierarchy(self):
        # Retry loops catch LLMTransientError; both concrete transient
        # failures must be subclasses, and all remain LLMErrors.
        assert issubclass(errors.LLMTimeoutError, errors.LLMTransientError)
        assert issubclass(errors.LLMRateLimitError, errors.LLMTransientError)
        assert issubclass(errors.LLMTransientError, errors.LLMError)
        assert not issubclass(errors.LLMError, errors.LLMTransientError)

    def test_sql_error_position(self):
        error = errors.SQLError("bad", position=7)
        assert error.position == 7
        assert errors.SQLError("bad").position is None

    def test_package_reexports(self):
        import repro

        assert repro.ReproError is errors.ReproError
        assert repro.EngineFaultError is errors.EngineFaultError
        assert repro.ConfigurationRejectedError is errors.ConfigurationRejectedError
        assert repro.__version__


class TestEngineFaultError:
    def test_replay_label_in_message(self):
        error = errors.EngineFaultError(
            "query crashed", site="engine.query_crash", key="query:q1|00", seed=17
        )
        assert error.site == "engine.query_crash"
        assert error.key == "query:q1|00"
        assert error.seed == 17
        text = str(error)
        assert "site='engine.query_crash'" in text
        assert "seed=17" in text

    def test_plain_message_without_site(self):
        error = errors.EngineFaultError("disk on fire")
        assert error.site is None
        assert error.key is None
        assert error.seed is None
        assert str(error) == "disk on fire"
