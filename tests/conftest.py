"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.db.catalog import Catalog, Column
from repro.db.hardware import HardwareSpec
from repro.db.mysql import MySQLEngine
from repro.db.postgres import PostgresEngine
from repro.workloads.base import Query, Workload
from repro.workloads.job import job_workload
from repro.workloads.tpch import tpch_workload


@pytest.fixture()
def tiny_catalog() -> Catalog:
    """A two-table schema small enough to reason about by hand."""
    catalog = Catalog("tiny")
    catalog.add_table("users", 10_000, [
        Column("user_id", 4, is_primary_key=True),
        Column("country", 2, 50),
        Column("age", 4, 80),
    ])
    catalog.add_table("events", 500_000, [
        Column("event_id", 4, is_primary_key=True),
        Column("user_id2", 4, 10_000),
        Column("kind", 8, 20),
        Column("payload", 60, 100_000),
    ])
    return catalog


@pytest.fixture()
def tiny_workload(tiny_catalog: Catalog) -> Workload:
    queries = [
        Query.from_sql(
            "by_country",
            "SELECT count(*) FROM users WHERE country = 'US'",
            tiny_catalog,
        ),
        Query.from_sql(
            "join_all",
            "SELECT u.country, count(*) FROM users u, events e "
            "WHERE u.user_id = e.user_id2 GROUP BY u.country",
            tiny_catalog,
        ),
        Query.from_sql(
            "kind_filter",
            "SELECT count(*) FROM events WHERE kind = 'click' AND payload LIKE 'a%'",
            tiny_catalog,
        ),
    ]
    return Workload(name="tiny", catalog=tiny_catalog, queries=queries)


@pytest.fixture()
def pg_engine(tiny_catalog: Catalog) -> PostgresEngine:
    return PostgresEngine(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))


@pytest.fixture()
def mysql_engine(tiny_catalog: Catalog) -> MySQLEngine:
    return MySQLEngine(tiny_catalog, HardwareSpec(memory_gb=61.0, cores=8))


@pytest.fixture(scope="session")
def tpch() -> Workload:
    return tpch_workload(1.0)


@pytest.fixture(scope="session")
def job() -> Workload:
    return job_workload()
