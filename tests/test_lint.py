"""Tier-1 lint gate: ``scripts/lint.sh`` must pass wherever ruff exists.

The script deliberately exits 0 with a notice when ruff is absent (the
repo never installs dependencies on the fly), so this gate is a hard
failure only on machines that have ruff -- exactly the environments
where lint regressions could otherwise land silently.
"""

import shutil
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "scripts" / "lint.sh"


class TestLintGate:
    def test_lint_script_exists_and_is_executable(self):
        assert LINT.exists()
        assert LINT.stat().st_mode & 0o111, "scripts/lint.sh is not executable"

    def test_lint_passes(self):
        proc = subprocess.run(
            ["sh", str(LINT)], capture_output=True, text=True, timeout=300
        )
        assert proc.returncode == 0, (
            f"lint failed:\n{proc.stdout}\n{proc.stderr}"
        )
        if shutil.which("ruff") is None:
            # Without ruff the script must say it is skipping, never
            # silently pretend it linted.
            assert "skipping" in proc.stderr
