"""The ``executor="process"`` path of ``tune_many`` (PR 10).

Byte-identity across serial / thread / process executors -- with and
without a deterministic :class:`FaultPlan` -- plus the executor-aware
``max_workers`` heuristic and journaled resume from a worker process.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cache import install_cache
from repro.core import BatchJob, LambdaTuneOptions, tune_many
from repro.core.batch import _default_max_workers, resume_job, run_job
from repro.core.parallel import ensure_pool_env, preferred_mp_context
from repro.db.postgres import PostgresEngine
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.llm.mock import SimulatedLLM

OPTIONS = LambdaTuneOptions(
    token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
)

SEEDS = list(range(8))


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    previous = install_cache(None)
    yield
    install_cache(previous)


def seeded_jobs(workload, *, fault_plan=None, journal_dir=None):
    return [
        BatchJob(
            workload=workload,
            options=OPTIONS.ablated(seed=9 + seed),
            fault_plan=fault_plan,
            journal_path=(
                None if journal_dir is None else journal_dir / f"job-{seed}.wal"
            ),
        )
        for seed in SEEDS
    ]


def fingerprints(results):
    return [result.fingerprint() for result in results]


class TestByteIdentity:
    def test_process_matches_serial_and_thread(self, tiny_workload):
        serial = tune_many(seeded_jobs(tiny_workload), max_workers=1)
        thread = tune_many(
            seeded_jobs(tiny_workload), executor="thread", max_workers=4
        )
        process = tune_many(
            seeded_jobs(tiny_workload), executor="process", max_workers=4
        )
        assert fingerprints(serial) == fingerprints(thread)
        assert fingerprints(serial) == fingerprints(process)

    def test_process_matches_serial_under_faults(self, tiny_workload):
        plan = FaultPlan(seed=3, density=0.05)
        serial = tune_many(
            seeded_jobs(tiny_workload, fault_plan=plan), max_workers=1
        )
        process = tune_many(
            seeded_jobs(tiny_workload, fault_plan=plan),
            executor="process",
            max_workers=4,
        )
        assert fingerprints(serial) == fingerprints(process)

    def test_shared_disk_cache_is_transparent(self, tiny_workload, tmp_path):
        serial = tune_many(seeded_jobs(tiny_workload), max_workers=1)
        process = tune_many(
            seeded_jobs(tiny_workload),
            executor="process",
            max_workers=2,
            cache_dir=tmp_path / "cache",
        )
        assert fingerprints(serial) == fingerprints(process)

    def test_journaled_process_jobs_match_plain(self, tiny_workload, tmp_path):
        plain = tune_many(seeded_jobs(tiny_workload), max_workers=1)
        journaled = tune_many(
            seeded_jobs(tiny_workload, journal_dir=tmp_path),
            executor="process",
            max_workers=4,
        )
        assert fingerprints(plain) == fingerprints(journaled)
        assert sorted(tmp_path.glob("*.wal"))


class TestProcessResume:
    def test_resume_in_worker_process(self, tiny_workload, tmp_path):
        """A journal begun anywhere resumes bit-identically in a pool worker."""
        job = BatchJob(
            workload=tiny_workload,
            options=OPTIONS,
            journal_path=tmp_path / "resume.wal",
        )
        reference = run_job(
            BatchJob(workload=tiny_workload, options=OPTIONS)
        ).fingerprint()
        run_job(job)  # complete journal on disk
        ensure_pool_env()
        with ProcessPoolExecutor(
            max_workers=1, mp_context=preferred_mp_context()
        ) as pool:
            resumed = pool.submit(resume_job, job).result()
        assert resumed.fingerprint() == reference


class TestValidation:
    def test_unknown_executor_rejected(self, tiny_workload):
        with pytest.raises(ConfigurationError, match="unknown batch executor"):
            tune_many(
                [BatchJob(workload=tiny_workload, options=OPTIONS)],
                executor="fiber",
            )

    def test_explicit_engine_rejected_for_process(self, tiny_workload):
        job = BatchJob(
            workload=tiny_workload,
            options=OPTIONS,
            engine=PostgresEngine(tiny_workload.catalog),
        )
        with pytest.raises(ConfigurationError, match="process"):
            tune_many([job, job], executor="process", max_workers=2)

    def test_explicit_llm_rejected_for_process(self, tiny_workload):
        job = BatchJob(
            workload=tiny_workload, options=OPTIONS, llm=SimulatedLLM()
        )
        with pytest.raises(ConfigurationError, match="process"):
            tune_many([job, job], executor="process", max_workers=2)


class TestWorkerHeuristic:
    """``max_workers=None`` must not oversubscribe a process pool."""

    def test_process_default_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: set(range(4)))
        assert _default_max_workers(64, "process") == 4

    def test_process_default_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {0, 1})
        assert _default_max_workers(64, "process") == 2

    def test_process_default_without_affinity_support(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.delattr("os.sched_getaffinity", raising=False)
        assert _default_max_workers(64, "process") == 4

    def test_thread_default_keeps_prior_behavior(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {0})
        assert _default_max_workers(64, "thread") == 4
        assert _default_max_workers(2, "thread") == 2

    def test_fewer_jobs_than_cores(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 16)
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: set(range(16)))
        assert _default_max_workers(3, "process") == 3
