"""Query clustering tests (paper §5.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    QueryCluster,
    cluster_queries,
    index_vectors,
    kmeans,
)
from repro.core.scheduler import MAX_DP_INPUT
from repro.errors import SchedulerError


class TestIndexVectors:
    def test_binary_matrix(self):
        index_map = {"q1": frozenset({"a"}), "q2": frozenset({"a", "b"})}
        matrix, indexes = index_vectors(["q1", "q2"], index_map)
        assert matrix.shape == (2, 2)
        assert indexes == ["a", "b"]
        assert matrix.tolist() == [[1.0, 0.0], [1.0, 1.0]]

    def test_queries_without_indexes(self):
        matrix, indexes = index_vectors(["q"], {})
        assert matrix.shape == (1, 1)
        assert indexes == []


class TestKMeans:
    def test_k_at_least_points_identity(self):
        points = np.array([[0.0], [1.0]])
        labels = kmeans(points, 5)
        assert list(labels) == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(SchedulerError):
            kmeans(np.zeros((3, 1)), 0)

    def test_separable_clusters_found(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = kmeans(points, 2, seed=1)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_deterministic_for_seed(self):
        points = np.random.default_rng(0).random((20, 3))
        assert np.array_equal(kmeans(points, 4, seed=7), kmeans(points, 4, seed=7))

    def test_identical_points_handled(self):
        points = np.ones((6, 2))
        labels = kmeans(points, 2, seed=0)
        assert len(labels) == 6


class TestClusterQueries:
    def test_empty(self):
        assert cluster_queries([], {}) == []

    def test_identical_signatures_merge(self):
        """The paper's q1:A, q2:A example -- one cluster labelled A."""
        index_map = {"q1": frozenset({"a"}), "q2": frozenset({"a"})}
        clusters = cluster_queries(["q1", "q2"], index_map)
        assert len(clusters) == 1
        assert set(clusters[0].queries) == {"q1", "q2"}
        assert clusters[0].indexes == frozenset({"a"})

    def test_distinct_signatures_stay_apart_under_cap(self):
        index_map = {
            "q1": frozenset({"a"}),
            "q2": frozenset({"b"}),
            "q3": frozenset(),
        }
        clusters = cluster_queries(["q1", "q2", "q3"], index_map)
        assert len(clusters) == 3

    def test_cap_enforced(self):
        index_map = {
            f"q{i}": frozenset({f"i{i}"}) for i in range(MAX_DP_INPUT + 10)
        }
        clusters = cluster_queries(list(index_map), index_map)
        assert len(clusters) <= MAX_DP_INPUT

    def test_all_queries_assigned_exactly_once(self):
        index_map = {
            f"q{i}": frozenset({f"i{i % 20}", f"i{(i * 7) % 20}"})
            for i in range(40)
        }
        clusters = cluster_queries(list(index_map), index_map, max_clusters=5)
        assigned = [query for cluster in clusters for query in cluster.queries]
        assert sorted(assigned) == sorted(index_map)

    def test_cluster_indexes_are_union_of_members(self):
        index_map = {
            f"q{i}": frozenset({f"i{i % 18}"}) for i in range(30)
        }
        clusters = cluster_queries(list(index_map), index_map, max_clusters=4)
        for cluster in clusters:
            union = frozenset().union(
                *(index_map[query] for query in cluster.queries)
            )
            assert cluster.indexes == union

    def test_deterministic(self):
        index_map = {
            f"q{i}": frozenset({f"i{(i * 3) % 17}"}) for i in range(25)
        }
        a = cluster_queries(list(index_map), index_map, max_clusters=6, seed=2)
        b = cluster_queries(list(index_map), index_map, max_clusters=6, seed=2)
        assert [c.queries for c in a] == [c.queries for c in b]

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 30),
            st.frozensets(st.integers(0, 8), max_size=4),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=MAX_DP_INPUT),
    )
    def test_partition_property(self, raw_map, cap):
        index_map = {f"q{k}": v for k, v in raw_map.items()}
        clusters = cluster_queries(list(index_map), index_map, max_clusters=cap)
        assert len(clusters) <= max(cap, 1)
        assigned = [q for cluster in clusters for q in cluster.queries]
        assert sorted(assigned) == sorted(index_map)


class TestQueryClusterObject:
    def test_hashable(self):
        cluster = QueryCluster(queries=["a"], indexes=frozenset({"x"}))
        assert hash(cluster) == hash(QueryCluster(queries=["a"]))
