"""Paper §4 "Avoiding Redundancy": completed queries never re-run.

An instrumented engine records every (configuration, query, completed)
execution event; across all of Algorithm 2's rounds, no query may
complete twice under the same configuration.
"""

from collections import Counter

from repro.core.config import Configuration
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.selector import ConfigurationSelector
from repro.db.postgres import PostgresEngine


class RecordingEngine(PostgresEngine):
    """PostgresEngine that logs execution events keyed by the *content*
    of the last applied configuration, so the same candidate evaluated
    in different rounds maps to the same key."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.events: list[tuple[frozenset, str, bool]] = []
        self._config_key: frozenset = frozenset()

    def apply_config(self, settings):
        self._config_key = frozenset(
            (name, str(value)) for name, value in settings.items()
        )
        return super().apply_config(settings)

    def execute(self, query, timeout=None):
        result = super().execute(query, timeout=timeout)
        name = getattr(query, "name", str(query))
        self.events.append((self._config_key, name, result.complete))
        return result

    def execute_many(self, queries, timeout=None):
        # The batched evaluate path runs whole segments through one
        # call; translate it back into the per-query events the scalar
        # loop would have produced: one completed event per finished
        # query, one interrupted event for the query the timeout cut
        # (a fault truncates the segment without an event, exactly as
        # a raising ``execute`` records none).
        batch = super().execute_many(queries, timeout=timeout)
        for query in queries[: batch.completed]:
            name = getattr(query, "name", str(query))
            self.events.append((self._config_key, name, True))
        if batch.fault is None and not batch.complete:
            cut = queries[batch.completed]
            name = getattr(cut, "name", str(cut))
            self.events.append((self._config_key, name, False))
        return batch


def run_selection(engine, workload, configs, *, timeout=0.05, alpha=2.0):
    selector = ConfigurationSelector(
        engine,
        ConfigurationEvaluator(engine),
        initial_timeout=timeout,
        alpha=alpha,
    )
    return selector.select(list(workload.queries), configs)


class TestNoRedundantWork:
    def make_configs(self):
        return [
            Configuration("a", settings={}),
            Configuration("b", settings={"work_mem": "64MB"}),
            Configuration("c", settings={"work_mem": "256MB",
                                         "shared_buffers": "2GB"}),
        ]

    def test_no_query_completes_twice_per_config(self, tiny_catalog, tiny_workload):
        engine = RecordingEngine(tiny_catalog)
        result = run_selection(engine, tiny_workload, self.make_configs())
        assert result.best.config is not None

        completions = Counter(
            (key, name)
            for key, name, completed in engine.events
            if completed
        )
        duplicates = {key: n for key, n in completions.items() if n > 1}
        assert not duplicates

    def test_interrupted_queries_may_retry(self, tiny_catalog, tiny_workload):
        engine = RecordingEngine(tiny_catalog)
        run_selection(engine, tiny_workload, self.make_configs(), timeout=0.01)
        # With a tiny initial timeout some executions are interrupted
        # and legitimately retried in later rounds.
        interrupted = [
            name for _, name, completed in engine.events if not completed
        ]
        assert interrupted  # the small timeout must actually bite

    def test_total_executions_bounded(self, tiny_catalog, tiny_workload):
        """Each (config, query) pair executes at most rounds+1 times."""
        engine = RecordingEngine(tiny_catalog)
        result = run_selection(
            engine, tiny_workload, self.make_configs(), timeout=0.01
        )
        attempts = Counter(
            (key, name) for key, name, _ in engine.events
        )
        assert max(attempts.values()) <= result.rounds + 1
