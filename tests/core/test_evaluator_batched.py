"""Batched execution (``execute_many`` + segment-batched evaluate).

The batched path must be *byte-identical* to the retained scalar
reference loop -- same completed-query sets, same ``ConfigMeta.time``
floats, same quarantine labels, same ``TuningResult.fingerprint()`` --
across seeds, executors and chaos fault plans.  The suite pins:

- the keystone numeric fact: ``np.cumsum`` over float64 performs the
  same left-to-right IEEE-754 addition chain as sequential ``+=``
  (and ``a - b == a + (-b)``), so prefix-sum timeout cuts and one-jump
  clock advances are exact;
- micro equivalence of ``execute_many`` against a scalar ``execute``
  loop, including exact-tie timeouts, exhausted budgets, ``None``
  timeouts, and fault plans (crash / OOM / transient-storm truncation);
- ``evaluate`` equivalence with lazy index creation (multi-segment
  orders) and quarantine parity under chaos plans;
- full-tune fingerprints across 8 seeds x serial/thread/process
  executors x chaos densities; and
- resume from a journal boundary that falls mid-segment: the resumed
  evaluate starts inside what the uninterrupted run executed as one
  index-stable segment, and must still fingerprint identically.
"""

import json
from contextlib import contextmanager

import numpy as np
import pytest

import repro.db.planner as planner_module
from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.db.clock import RecordingClock, VirtualClock
from repro.db.indexes import Index
from repro.db.postgres import PostgresEngine
from repro.errors import EngineFaultError
from repro.faults import FaultPlan
from repro.session import codec
from tests.faults.test_chaos import chaos_plan, chaos_tune
from tests.faults.test_chaos import fingerprint as tune_fingerprint
from tests.session.conftest import (
    fingerprint as session_fingerprint,
)
from tests.session.conftest import (
    journaled_tune,
    plain_tune,
    resume_tune,
)

SEEDS = list(range(8))
EXECUTORS = ("serial", "thread", "process")
DENSITIES = (0.05, 0.15, 0.4)


@contextmanager
def scalar_reference():
    """Run the retained scalar reference implementation."""
    previous = planner_module.VECTORIZED_ENABLED
    planner_module.VECTORIZED_ENABLED = False
    try:
        yield
    finally:
        planner_module.VECTORIZED_ENABLED = previous


def scalar_segment_run(engine, queries, timeout):
    """The scalar loop ``execute_many`` replaces, threading the timeout
    exactly as ``ConfigurationEvaluator._evaluate_scalar`` does."""
    remaining = timeout
    times = []
    complete = True
    fault = None
    for query in queries:
        try:
            result = engine.execute(query, timeout=remaining)
        except EngineFaultError as error:
            fault = error
            complete = False
            break
        if not result.complete:
            complete = False
            break
        if remaining is not None:
            remaining -= result.execution_time
        times.append(result.execution_time)
    return times, complete, remaining, fault


def fault_label(fault):
    if fault is None:
        return None
    return (type(fault).__name__, str(fault), fault.site, fault.key, fault.seed)


# -- the keystone numeric facts ------------------------------------------------


class TestCumsumBitIdentity:
    def test_cumsum_matches_sequential_accumulation(self):
        rng = np.random.default_rng(7)
        for trial in range(50):
            values = rng.uniform(1e-4, 30.0, size=rng.integers(1, 200))
            start = float(rng.uniform(0.0, 1e4))
            chain = np.cumsum(np.concatenate(((start,), values)))
            acc = start
            for position, value in enumerate(values, start=1):
                acc += float(value)
                assert repr(acc) == repr(float(chain[position])), (
                    f"cumsum diverged from += at trial {trial}, "
                    f"position {position}"
                )

    def test_subtraction_chain_matches_negated_cumsum(self):
        rng = np.random.default_rng(11)
        for trial in range(50):
            values = rng.uniform(1e-4, 5.0, size=rng.integers(1, 100))
            timeout = float(rng.uniform(0.0, 100.0))
            chain = np.cumsum(np.concatenate(((timeout,), np.negative(values))))
            remaining = timeout
            for position, value in enumerate(values, start=1):
                remaining -= float(value)
                assert repr(remaining) == repr(float(chain[position])), (
                    f"a - b != a + (-b) chain at trial {trial}"
                )

    def test_advance_many_matches_advance_loop(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            values = rng.uniform(1e-4, 10.0, size=rng.integers(0, 50))
            one = VirtualClock(5.0)
            many = VirtualClock(5.0)
            for value in values:
                one.advance(float(value))
            many.advance_many(values)
            assert repr(one.now) == repr(many.now)

    def test_recording_clock_records_per_element(self):
        clock = RecordingClock(0.0)
        values = np.array([0.5, 1.25, 0.125])
        clock.advance_many(values)
        clock.advance(2.0)
        assert clock.advances == [0.5, 1.25, 0.125, 2.0]
        replay = VirtualClock(0.0)
        clock.replay_onto(replay)
        assert repr(replay.now) == repr(clock.now)


# -- execute_many micro equivalence --------------------------------------------


class TestExecuteManyMicro:
    def check(self, workload, queries, timeout, plan=None):
        scalar_engine = PostgresEngine(workload.catalog)
        batched_engine = PostgresEngine(workload.catalog)
        if plan is not None:
            scalar_engine.install_faults(plan)
            batched_engine.install_faults(plan)

        times, complete, remaining, fault = scalar_segment_run(
            scalar_engine, queries, timeout
        )
        batch = batched_engine.execute_many(queries, timeout=timeout)

        context = f"timeout={timeout!r}, plan={plan!r}"
        assert [repr(t) for t in times] == [
            repr(float(t)) for t in batch.times
        ], context
        assert complete == batch.complete, context
        if remaining is None:
            assert batch.remaining is None, context
        else:
            assert repr(remaining) == repr(batch.remaining), context
        assert fault_label(fault) == fault_label(batch.fault), context
        assert repr(scalar_engine.clock.now) == repr(
            batched_engine.clock.now
        ), context

    def test_no_timeout_runs_everything(self, tpch):
        self.check(tpch, list(tpch.queries), None)

    def test_exhausted_budget_is_an_immediate_cut(self, tpch):
        self.check(tpch, list(tpch.queries), 0.0)
        self.check(tpch, list(tpch.queries), -1.0)

    def test_timeout_sweep(self, tpch):
        queries = list(tpch.queries)
        probe = PostgresEngine(tpch.catalog)
        full = probe.execute_many(queries, timeout=None)
        total = float(np.cumsum(full.times)[-1])
        for fraction in (0.001, 0.01, 0.2, 0.5, 0.9, 0.999, 1.5):
            self.check(tpch, queries, total * fraction)

    def test_exact_tie_timeout(self, tpch):
        """A budget equal to the float prefix sum, to the bit: the next
        query must see remaining == 0.0 and cut with no clock advance."""
        queries = list(tpch.queries)
        probe = PostgresEngine(tpch.catalog)
        full = probe.execute_many(queries, timeout=None)
        for prefix in (1, 3, len(queries) - 1):
            remaining = 0.0
            for value in full.times[:prefix]:
                remaining += float(value)
            self.check(tpch, queries, remaining)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_plans(self, tpch, seed):
        queries = list(tpch.queries)
        plan = FaultPlan(seed=seed, density=DENSITIES[seed % len(DENSITIES)])
        for timeout in (None, 0.5, 5.0, 50.0):
            self.check(tpch, queries, timeout, plan=plan)

    def test_transient_storm_truncates_identically(self, tpch):
        """A storm beyond the retry budget surfaces the same
        TransientEngineError at the same query."""
        queries = list(tpch.queries)
        for seed in SEEDS:
            plan = FaultPlan(
                seed=seed, density=0.6, sites={"engine.io_transient"}
            )
            for timeout in (None, 0.05, 10.0):
                self.check(tpch, queries, timeout, plan=plan)


# -- evaluate equivalence (multi-segment, quarantine) --------------------------


def eval_config():
    return Configuration(
        name="batched-probe",
        settings={"work_mem": "64MB", "shared_buffers": "2GB"},
        indexes=[Index("events", ("user_id2",)), Index("users", ("age",))],
    )


def meta_label(meta):
    return (
        repr(meta.time),
        meta.is_complete,
        repr(meta.index_time),
        tuple(sorted(meta.completed_queries)),
        meta.failed,
        meta.failure,
    )


class TestEvaluateBatchedEqualsScalar:
    def run_pair(self, workload, timeout, plan=None, **options):
        labels = []
        clocks = []
        for batched in (True, False):
            engine = PostgresEngine(workload.catalog)
            if plan is not None:
                engine.install_faults(plan)
            evaluator = ConfigurationEvaluator(engine, **options)
            meta = ConfigMeta()
            previous = planner_module.VECTORIZED_ENABLED
            planner_module.VECTORIZED_ENABLED = batched
            try:
                evaluator.evaluate(
                    eval_config(), list(workload.queries), timeout, meta
                )
            finally:
                planner_module.VECTORIZED_ENABLED = previous
            labels.append(meta_label(meta))
            clocks.append(repr(engine.clock.now))
        assert labels[0] == labels[1], f"timeout={timeout!r}, plan={plan!r}"
        assert clocks[0] == clocks[1], f"timeout={timeout!r}, plan={plan!r}"

    def test_lazy_multi_segment(self, tiny_workload):
        for timeout in (0.001, 0.05, 0.5, 10.0):
            self.run_pair(tiny_workload, timeout)

    def test_eager_indexes_single_segment(self, tiny_workload):
        self.run_pair(tiny_workload, 10.0, lazy_indexes=False)

    def test_no_scheduler(self, tiny_workload):
        self.run_pair(tiny_workload, 10.0, use_scheduler=False)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quarantine_labels_match(self, tiny_workload, seed):
        plan = FaultPlan(seed=seed, density=0.5)
        for timeout in (0.05, 10.0):
            self.run_pair(tiny_workload, timeout, plan=plan)


# -- full-tune fingerprints: seeds x executors x chaos densities ---------------


class TestFullTuneEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_tune_fingerprints_scalar(self, tpch, seed):
        executor = EXECUTORS[seed % len(EXECUTORS)]
        workers = 0 if executor == "serial" else 2
        faulty = seed % 4 != 0
        plan = chaos_plan(seed) if faulty else None
        kwargs = dict(workers=workers, executor=executor, llm_faults=faulty)
        if plan is None:
            kwargs["llm_faults"] = False
            plan_installed = None
        else:
            plan_installed = plan

        batched = chaos_tune(tpch, plan_installed, **kwargs)
        with scalar_reference():
            scalar = chaos_tune(tpch, plan_installed, **kwargs)
        assert tune_fingerprint(batched) == tune_fingerprint(scalar), (
            f"batched tune diverged from scalar reference "
            f"(seed={seed}, executor={executor}, plan={plan!r})"
        )


# -- resume across a mid-segment journal boundary ------------------------------


class TestResumeMidSegment:
    def test_mid_segment_boundaries_resume_identically(self, tpch, tmp_path):
        reference = plain_tune(tpch)
        with scalar_reference():
            scalar = plain_tune(tpch)
        assert session_fingerprint(reference) == session_fingerprint(scalar)

        path = tmp_path / "run.journal"
        journaled = journaled_tune(tpch, path)
        assert session_fingerprint(journaled) == session_fingerprint(reference)

        lines = path.read_text().splitlines(keepends=True)
        records = [json.loads(line) for line in lines]
        # A boundary is *mid-segment* when the interrupted candidate has
        # partial progress: its journaled meta shows completed queries
        # but no completion, so the resumed evaluate re-enters the
        # workload inside what the uninterrupted run executed as one
        # index-stable segment (the pending set starts mid-run).
        boundaries = []
        for position, record in enumerate(records):
            if record["kind"] != "update_folded":
                continue
            meta = codec.decode(record["payload"])["meta"]
            if meta.completed_queries and not meta.is_complete:
                boundaries.append(position + 1)
        assert boundaries, "no mid-segment update boundary in the journal"

        for boundary in boundaries[:6]:
            trunc = tmp_path / "crash.journal"
            trunc.write_text("".join(lines[:boundary]))
            resumed = resume_tune(tpch, trunc)
            assert session_fingerprint(resumed) == session_fingerprint(
                reference
            ), f"mid-segment resume diverged at boundary {boundary}"
