"""Edge-case and failure-injection tests across the core pipeline."""

import pytest

from repro.core.config import Configuration, parse_config_script
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.selector import ConfigurationSelector
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.errors import BudgetExceededError, LLMError
from repro.llm.client import LLMClient


class BrokenLLM(LLMClient):
    """An LLM that returns prose with no usable commands."""

    model = "broken"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        return self._make_response(
            prompt,
            "I am sorry, as a language model I cannot recommend settings "
            "without more information about your workload.",
        )


class HalfBrokenLLM(LLMClient):
    """Returns garbage for even seeds, a valid script for odd seeds."""

    model = "half-broken"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        if seed % 2 == 0:
            return self._make_response(prompt, "no commands here")
        return self._make_response(
            prompt, "ALTER SYSTEM SET work_mem = '64MB';"
        )


class FailingLLM(LLMClient):
    model = "failing"

    def complete(self, prompt, *, temperature=0.7, seed=0):
        raise LLMError("service unavailable")


class TestLLMFailureModes:
    def test_unusable_scripts_yield_empty_configs_but_still_tune(
        self, pg_engine, tiny_workload
    ):
        # All k configs are empty -> they all equal the default config;
        # selection still completes and returns "a" configuration.
        tuner = LambdaTune(
            pg_engine,
            BrokenLLM(),
            LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, num_configs=2),
        )
        result = tuner.tune(list(tiny_workload.queries))
        assert result.best_config is not None
        assert result.best_config.is_empty

    def test_partially_broken_llm_still_finds_valid_config(
        self, pg_engine, tiny_workload
    ):
        tuner = LambdaTune(
            pg_engine,
            HalfBrokenLLM(),
            LambdaTuneOptions(initial_timeout=0.5, alpha=2.0, num_configs=4),
        )
        result = tuner.tune(list(tiny_workload.queries))
        assert result.best_config is not None

    def test_llm_exception_propagates(self, pg_engine, tiny_workload):
        tuner = LambdaTune(pg_engine, FailingLLM(), LambdaTuneOptions())
        with pytest.raises(LLMError):
            tuner.tune(list(tiny_workload.queries))


class TestSelectorEdgeCases:
    def test_empty_candidate_list_rejected(self, pg_engine, tiny_workload):
        selector = ConfigurationSelector(
            pg_engine,
            ConfigurationEvaluator(pg_engine),
            initial_timeout=1.0,
            alpha=2.0,
        )
        with pytest.raises(BudgetExceededError):
            selector.select(list(tiny_workload.queries), [])

    def test_duplicate_equivalent_configs(self, pg_engine, tiny_workload):
        configs = [
            Configuration(f"same-{i}", settings={"work_mem": "64MB"})
            for i in range(3)
        ]
        selector = ConfigurationSelector(
            pg_engine,
            ConfigurationEvaluator(pg_engine),
            initial_timeout=0.5,
            alpha=2.0,
        )
        result = selector.select(list(tiny_workload.queries), configs)
        assert result.best.config is not None

    def test_empty_workload_selects_trivially(self, pg_engine):
        selector = ConfigurationSelector(
            pg_engine,
            ConfigurationEvaluator(pg_engine),
            initial_timeout=0.5,
            alpha=2.0,
        )
        result = selector.select([], [Configuration("only")])
        assert result.best.config.name == "only"
        assert result.best.time == 0.0


class TestEvaluatorEdgeCases:
    def test_evaluate_empty_query_list_completes(self, pg_engine):
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        evaluator.evaluate(Configuration("c"), [], 1.0, meta)
        assert meta.is_complete
        assert meta.time == 0.0

    def test_invalid_index_in_config_rejected_at_parse(self, pg_engine):
        config = parse_config_script(
            "CREATE INDEX ON missing_table (col);",
            pg_engine.knob_space,
            pg_engine.catalog,
        )
        assert not config.indexes  # never reaches the evaluator


class TestConfigurationRobustness:
    def test_empty_script(self, pg_engine):
        config = parse_config_script("", pg_engine.knob_space, pg_engine.catalog)
        assert config.is_empty

    def test_sql_injectionish_text_ignored(self, pg_engine):
        config = parse_config_script(
            "DROP TABLE users; -- hostile\nALTER SYSTEM SET work_mem = '8MB';",
            pg_engine.knob_space,
            pg_engine.catalog,
        )
        assert config.settings == {"work_mem": 8 * 1024**2}

    def test_weird_whitespace_tolerated(self, pg_engine):
        config = parse_config_script(
            "ALTER   SYSTEM\n  SET   work_mem   =   '8MB'  ;",
            pg_engine.knob_space,
            pg_engine.catalog,
        )
        assert "work_mem" in config.settings
