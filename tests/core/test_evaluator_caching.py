"""Evaluator memoization: hits, invalidation, transparency.

The evaluator caches query-index maps, index-cost maps and scheduler
orders keyed by (pending queries, configuration content, engine state
signature).  These tests verify that

- repeated calls with unchanged inputs reuse the memoized DP order,
- any change to the engine's physical design or knob settings, the
  configuration content, or the pending-query set invalidates the
  cached order,
- cached and uncached evaluators return identical results.
"""

import pytest

import repro.core.evaluator as evaluator_module
from repro.core.config import Configuration
from repro.core.evaluator import ConfigurationEvaluator
from repro.db.indexes import Index


@pytest.fixture()
def config(pg_engine):
    return Configuration(
        name="cache-probe",
        settings={"work_mem": "64MB"},
        indexes=[Index("events", ("user_id2",)), Index("users", ("age",))],
    )


@pytest.fixture()
def count_dp(monkeypatch):
    """Count invocations of the DP core inside plan_order."""
    calls = {"n": 0}
    real = evaluator_module.compute_order_dp

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(evaluator_module, "compute_order_dp", counting)
    return calls


class TestOrderCacheHits:
    def test_repeat_call_reuses_order(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        first = evaluator.plan_order(queries, config)
        second = evaluator.plan_order(queries, config)
        assert count_dp["n"] == 1
        assert [q.name for q in first] == [q.name for q in second]

    def test_caches_disabled_recomputes(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine, enable_caches=False)
        queries = list(tiny_workload.queries)
        evaluator.plan_order(queries, config)
        evaluator.plan_order(queries, config)
        assert count_dp["n"] == 2


class TestOrderCacheInvalidation:
    def test_engine_index_change_invalidates(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        evaluator.plan_order(queries, config)
        # A new physical index zeroes its creation cost, changing the
        # DP input -- the memoized order must not be reused.
        pg_engine.create_index(Index("events", ("user_id2",)))
        evaluator.plan_order(queries, config)
        assert count_dp["n"] == 2

    def test_engine_knob_change_invalidates(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        evaluator.plan_order(queries, config)
        # maintenance memory sizes index builds => different DP costs.
        pg_engine.set_knob("maintenance_work_mem", "1GB")
        evaluator.plan_order(queries, config)
        assert count_dp["n"] == 2

    def test_config_content_change_invalidates(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        evaluator.plan_order(queries, config)
        mutated = Configuration(
            name=config.name,
            settings=dict(config.settings),
            indexes=list(config.indexes) + [Index("users", ("country",))],
        )
        evaluator.plan_order(queries, mutated)
        assert count_dp["n"] == 2

    def test_pending_set_change_invalidates(
        self, pg_engine, tiny_workload, config, count_dp
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        evaluator.plan_order(queries, config)
        evaluator.plan_order(queries[1:], config)
        assert count_dp["n"] == 2


class TestEvictionKeepsRecentEntries:
    def make_config(self, position: int) -> Configuration:
        return Configuration(
            name=f"stream-{position}",
            settings={"work_mem": f"{16 + position}MB"},
            indexes=[Index("events", ("user_id2",))],
        )

    def test_pathological_stream_keeps_hit_rate_nonzero(
        self, pg_engine, tiny_workload, config, count_dp, monkeypatch
    ):
        """A stream of distinct configurations overflowing the cache must
        evict oldest-first, not clear wholesale: the configurations of
        the *current* selection round (inserted last) keep hitting."""
        monkeypatch.setattr(evaluator_module, "_MAX_CACHE_ENTRIES", 4)
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)

        stream = [self.make_config(position) for position in range(10)]
        for candidate in stream:
            evaluator.plan_order(queries, candidate)
        filled = count_dp["n"]
        assert filled == len(stream)
        assert len(evaluator._order_cache) == 4

        # The four most-recent configurations survive: re-planning them
        # is pure cache hits (the old clear-on-overflow emptied the
        # cache here, forcing a DP recomputation for every one).
        for candidate in stream[-4:]:
            evaluator.plan_order(queries, candidate)
        assert count_dp["n"] == filled

        # The evicted oldest entries recompute -- and evict the current
        # front, never the entries just inserted.
        evaluator.plan_order(queries, stream[0])
        assert count_dp["n"] == filled + 1
        assert len(evaluator._order_cache) == 4

    def test_eviction_is_oldest_first(self, pg_engine, tiny_workload, monkeypatch):
        monkeypatch.setattr(evaluator_module, "_MAX_CACHE_ENTRIES", 2)
        evaluator = ConfigurationEvaluator(pg_engine)
        queries = list(tiny_workload.queries)
        keys = []
        for position in range(4):
            evaluator.plan_order(queries, self.make_config(position))
            keys.append(list(evaluator._order_cache))
        assert len(keys[-1]) == 2
        # Each overflow drops the front entry; the newest key is always last.
        assert keys[2][0] == keys[1][1]
        assert keys[3][0] == keys[2][1]


class TestCacheTransparency:
    def test_cached_and_uncached_orders_identical(
        self, pg_engine, tiny_workload, config
    ):
        queries = list(tiny_workload.queries)
        cached = ConfigurationEvaluator(pg_engine)
        uncached = ConfigurationEvaluator(pg_engine, enable_caches=False)
        for pending in (queries, queries[1:], queries):
            assert [
                q.name for q in cached.plan_order(pending, config)
            ] == [q.name for q in uncached.plan_order(pending, config)]

    def test_index_cost_map_tracks_engine_state(self, pg_engine, config):
        evaluator = ConfigurationEvaluator(pg_engine)
        before = evaluator.index_cost_map(config)
        target = config.indexes[0]
        assert before[target] > 0.0
        pg_engine.create_index(target)
        after = evaluator.index_cost_map(config)
        assert after[target] == 0.0
