"""Query scheduler tests: Equation 1, Algorithm 4, oracle cross-checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    MAX_DP_INPUT,
    brute_force_order,
    compute_order_dp,
    expected_cost,
    greedy_order,
    marginal_index_cost,
)
from repro.errors import SchedulerError


def scenario(index_map, costs):
    return (
        {q: frozenset(indexes) for q, indexes in index_map.items()},
        costs,
    )


class TestMarginalCost:
    def test_all_new_indexes(self):
        index_map, costs = scenario({"q": {"a", "b"}}, {"a": 1.0, "b": 2.0})
        assert marginal_index_cost("q", frozenset(), index_map, costs) == 3.0

    def test_existing_indexes_free(self):
        index_map, costs = scenario({"q": {"a", "b"}}, {"a": 1.0, "b": 2.0})
        assert marginal_index_cost("q", frozenset({"a"}), index_map, costs) == 2.0

    def test_query_without_indexes(self):
        assert marginal_index_cost("q", frozenset(), {}, {}) == 0.0


class TestExpectedCost:
    def test_paper_example_5_1(self):
        """Example 5.1: q1 costs 1, q2 costs 5, interruption after each
        position equally likely."""
        index_map, costs = scenario(
            {"q1": {"i1"}, "q2": {"i2"}}, {"i1": 1.0, "i2": 5.0}
        )
        # Order q1-q2: pay 1 always, 5 with probability 1/2 => 3.5.
        assert expected_cost(["q1", "q2"], index_map, costs) == pytest.approx(3.5)
        # Order q2-q1: 5 + 0.5*1 = 5.5.
        assert expected_cost(["q2", "q1"], index_map, costs) == pytest.approx(5.5)

    def test_empty_order(self):
        assert expected_cost([], {}, {}) == 0.0

    def test_shared_index_paid_once(self):
        index_map, costs = scenario(
            {"q1": {"a"}, "q2": {"a"}}, {"a": 10.0}
        )
        # Position 1 weight 2/2, q2 adds nothing.
        assert expected_cost(["q1", "q2"], index_map, costs) == pytest.approx(10.0)

    def test_order_of_shared_indexes_irrelevant(self):
        index_map, costs = scenario(
            {"q1": {"a"}, "q2": {"a"}}, {"a": 7.0}
        )
        forward = expected_cost(["q1", "q2"], index_map, costs)
        backward = expected_cost(["q2", "q1"], index_map, costs)
        assert forward == backward


class TestDPScheduler:
    def test_matches_paper_example(self):
        index_map, costs = scenario(
            {"q1": {"i1"}, "q2": {"i2"}}, {"i1": 1.0, "i2": 5.0}
        )
        assert compute_order_dp(["q2", "q1"], index_map, costs) == ["q1", "q2"]

    def test_empty_input(self):
        assert compute_order_dp([], {}, {}) == []

    def test_single_query(self):
        index_map, costs = scenario({"q": {"a"}}, {"a": 1.0})
        assert compute_order_dp(["q"], index_map, costs) == ["q"]

    def test_queries_without_indexes_first_is_optimal(self):
        index_map, costs = scenario(
            {"free": set(), "costly": {"big"}}, {"big": 100.0}
        )
        order = compute_order_dp(["costly", "free"], index_map, costs)
        assert order[0] == "free"

    def test_input_cap_enforced(self):
        queries = [f"q{i}" for i in range(MAX_DP_INPUT + 1)]
        with pytest.raises(SchedulerError):
            compute_order_dp(queries, {}, {})

    def test_duplicate_handles_rejected(self):
        with pytest.raises(SchedulerError):
            compute_order_dp(["q", "q"], {}, {})

    def test_preserves_all_queries(self):
        index_map, costs = scenario(
            {"a": {"x"}, "b": {"y"}, "c": {"x", "y"}},
            {"x": 1.0, "y": 2.0},
        )
        order = compute_order_dp(["a", "b", "c"], index_map, costs)
        assert sorted(order) == ["a", "b", "c"]


@st.composite
def scheduling_instance(draw):
    n_queries = draw(st.integers(min_value=1, max_value=6))
    n_indexes = draw(st.integers(min_value=1, max_value=5))
    index_names = [f"i{k}" for k in range(n_indexes)]
    costs = {
        name: draw(st.floats(0.1, 20.0, allow_nan=False))
        for name in index_names
    }
    index_map = {}
    for q in range(n_queries):
        subset = draw(st.sets(st.sampled_from(index_names), max_size=n_indexes))
        index_map[f"q{q}"] = frozenset(subset)
    return list(index_map), index_map, costs


class TestOptimalityProperties:
    @settings(max_examples=60, deadline=None)
    @given(scheduling_instance())
    def test_dp_matches_brute_force(self, instance):
        queries, index_map, costs = instance
        dp = compute_order_dp(queries, index_map, costs)
        oracle = brute_force_order(queries, index_map, costs)
        assert expected_cost(dp, index_map, costs) == pytest.approx(
            expected_cost(oracle, index_map, costs)
        )

    @settings(max_examples=60, deadline=None)
    @given(scheduling_instance())
    def test_dp_never_worse_than_greedy_or_input_order(self, instance):
        queries, index_map, costs = instance
        dp_cost = expected_cost(
            compute_order_dp(queries, index_map, costs), index_map, costs
        )
        greedy_cost = expected_cost(
            greedy_order(queries, index_map, costs), index_map, costs
        )
        input_cost = expected_cost(queries, index_map, costs)
        assert dp_cost <= greedy_cost + 1e-9
        assert dp_cost <= input_cost + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(scheduling_instance())
    def test_dp_output_is_permutation(self, instance):
        queries, index_map, costs = instance
        order = compute_order_dp(queries, index_map, costs)
        assert sorted(map(str, order)) == sorted(map(str, queries))

    @settings(max_examples=40, deadline=None)
    @given(scheduling_instance())
    def test_principle_of_optimality_theorem_5_2(self, instance):
        """Improving a prefix never worsens the total (Theorem 5.2)."""
        queries, index_map, costs = instance
        if len(queries) < 3:
            return
        order = list(queries)
        k = len(order) // 2
        prefix, suffix = order[:k], order[k:]
        best_prefix = brute_force_order(prefix, index_map, costs)
        original = expected_cost(order, index_map, costs)
        improved = expected_cost(best_prefix + suffix, index_map, costs)
        assert improved <= original + 1e-9
