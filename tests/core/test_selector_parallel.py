"""Parallel selection equivalence: byte-identical to the serial path.

The property the tentpole rests on: for any seed, worker count, and
executor flavor, ``ParallelConfigurationSelector`` produces the same
``SelectionResult`` as ``ConfigurationSelector`` -- same floats (by
``repr``, i.e. bit-identical), same trace, same rounds.
"""

import math

import pytest

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.parallel import TaskRunner, WorkerContext
from repro.core.selector import ConfigurationSelector, ParallelConfigurationSelector
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.postgres import PostgresEngine
from repro.errors import ConfigurationError
from repro.llm.mock import SimulatedLLM


def fingerprint(selection):
    """Bit-exact identity of a SelectionResult (floats via repr)."""
    return (
        repr(selection.best.time),
        selection.best.config.name if selection.best.config else None,
        tuple(
            (
                name,
                repr(meta.time),
                meta.is_complete,
                repr(meta.index_time),
                tuple(sorted(meta.completed_queries)),
            )
            for name, meta in sorted(selection.meta.items())
        ),
        tuple((repr(at), repr(best)) for at, best in selection.trace),
        selection.rounds,
    )


def sampled_configs(tpch, seed):
    """Engine + the k LLM-sampled candidate configurations for a seed."""
    engine = PostgresEngine(tpch.catalog)
    options = LambdaTuneOptions(
        token_budget=400, initial_timeout=0.5, alpha=2.0, seed=seed
    )
    tuner = LambdaTune(engine, SimulatedLLM(), options)
    prompt = tuner.generate_prompt(list(tpch.queries))
    return engine, tuner.sample_configurations(prompt)


def serial_selection(tpch, seed, initial_timeout=0.5):
    engine, configs = sampled_configs(tpch, seed)
    evaluator = ConfigurationEvaluator(engine, cluster_seed=seed)
    selector = ConfigurationSelector(
        engine, evaluator, initial_timeout=initial_timeout, alpha=2.0
    )
    return selector.select(list(tpch.queries), configs)


def parallel_selection(tpch, seed, initial_timeout=0.5, **selector_kwargs):
    engine, configs = sampled_configs(tpch, seed)
    evaluator = ConfigurationEvaluator(engine, cluster_seed=seed)
    selector = ParallelConfigurationSelector(
        engine,
        evaluator,
        initial_timeout=initial_timeout,
        alpha=2.0,
        **selector_kwargs,
    )
    return selector.select(list(tpch.queries), configs), selector


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    @pytest.mark.parametrize(
        "workers,executor",
        [(1, "serial"), (2, "serial"), (2, "thread"), (4, "thread")],
    )
    def test_matches_serial(self, tpch, seed, workers, executor):
        expected = fingerprint(serial_selection(tpch, seed))
        selection, _ = parallel_selection(
            tpch, seed, workers=workers, executor=executor
        )
        assert fingerprint(selection) == expected

    @pytest.mark.parametrize("seed", [0, 9])
    def test_matches_serial_process_pool(self, tpch, seed):
        expected = fingerprint(serial_selection(tpch, seed))
        selection, _ = parallel_selection(
            tpch, seed, workers=2, executor="process"
        )
        assert fingerprint(selection) == expected

    @pytest.mark.slow
    def test_matches_serial_under_spawn(self, tpch):
        """Spawned workers re-import repro; env propagation keeps them
        deterministic (PYTHONPATH + PYTHONHASHSEED pinned)."""
        expected = fingerprint(serial_selection(tpch, 0))
        selection, _ = parallel_selection(
            tpch, 0, workers=2, executor="process", mp_context="spawn"
        )
        assert fingerprint(selection) == expected

    def test_recompute_path_still_identical(self, tpch):
        """Seed 0 at this timeout mispredicts final-phase timeouts (a
        wave-2 candidate improves ``best`` after the inline leader),
        forcing serial recomputes -- the merged result must still be
        byte-identical."""
        expected = fingerprint(serial_selection(tpch, 0, initial_timeout=1.0))
        selection, selector = parallel_selection(
            tpch, 0, initial_timeout=1.0, workers=2, executor="thread"
        )
        assert selector.last_stats["recomputed"] > 0
        assert fingerprint(selection) == expected

    def test_speculation_actually_folds(self, tpch):
        _, selector = parallel_selection(tpch, 3, workers=2, executor="thread")
        assert selector.last_stats["folded"] > 0
        assert selector.last_stats["recomputed"] == 0

    def test_duplicate_candidates_at_exact_timeout_ties(self, tpch):
        """Regression: duplicate candidate configurations make
        ``best.time - meta.time`` hit a completed run's length to the
        bit.  Deciding fold validity by comparing summed execution time
        against the timeout disagrees with the serial per-query cascade
        by one ulp at such ties; the merge must replay the cascade
        exactly.  (k=32 makes the mock LLM emit duplicates.)"""

        def selection(parallel):
            engine = PostgresEngine(tpch.catalog)
            options = LambdaTuneOptions(
                num_configs=32, token_budget=400, initial_timeout=0.1,
                alpha=1.5, seed=9,
            )
            tuner = LambdaTune(engine, SimulatedLLM(), options)
            configs = tuner.sample_configurations(
                tuner.generate_prompt(list(tpch.queries))
            )
            evaluator = ConfigurationEvaluator(engine, cluster_seed=9)
            if parallel:
                selector = ParallelConfigurationSelector(
                    engine, evaluator, initial_timeout=0.1, alpha=1.5,
                    workers=2, executor="serial",
                )
            else:
                selector = ConfigurationSelector(
                    engine, evaluator, initial_timeout=0.1, alpha=1.5
                )
            return selector.select(list(tpch.queries), configs)

        assert fingerprint(selection(parallel=True)) == fingerprint(
            selection(parallel=False)
        )


class TestTunerIntegration:
    def test_workers_option_is_transparent(self, tpch):
        def tune(workers):
            engine = PostgresEngine(tpch.catalog)
            options = LambdaTuneOptions(
                token_budget=400,
                initial_timeout=0.5,
                alpha=2.0,
                seed=9,
                workers=workers,
                executor="thread",
            )
            result = LambdaTune(engine, SimulatedLLM(), options).tune(
                list(tpch.queries)
            )
            return (
                repr(result.best_time),
                repr(result.tuning_seconds),
                tuple((repr(p.time), repr(p.best_time)) for p in result.trace),
                result.extras["rounds"],
            )

        assert tune(0) == tune(4)


class TestRunner:
    def test_rejects_unknown_executor(self, pg_engine, tiny_workload):
        ctx = WorkerContext(
            engine_cls=type(pg_engine),
            catalog=pg_engine.catalog,
            hardware=pg_engine.hardware,
            workload=tuple(tiny_workload.queries),
        )
        with pytest.raises(ConfigurationError):
            TaskRunner(ctx, workers=2, executor="fiber")

    def test_single_worker_degenerates_to_serial(self, pg_engine, tiny_workload):
        ctx = WorkerContext(
            engine_cls=type(pg_engine),
            catalog=pg_engine.catalog,
            hardware=pg_engine.hardware,
            workload=tuple(tiny_workload.queries),
        )
        runner = TaskRunner(ctx, workers=1, executor="process")
        assert runner.kind == "serial"
        assert runner.run([None, None]) == [None, None]

    def test_parallel_selector_on_tiny_engine(self, pg_engine, tiny_workload):
        """The machinery also holds on a hand-sized workload."""
        from repro.core.config import Configuration

        candidates = [
            Configuration(name="a", settings={"work_mem": "256MB"}),
            Configuration(name="b", settings={"shared_buffers": "2GB"}),
        ]
        engine2 = pg_engine.fork()

        serial = ConfigurationSelector(
            pg_engine,
            ConfigurationEvaluator(pg_engine),
            initial_timeout=0.05,
            alpha=2.0,
        ).select(list(tiny_workload.queries), candidates)
        parallel = ParallelConfigurationSelector(
            engine2,
            ConfigurationEvaluator(engine2),
            workers=2,
            executor="thread",
            initial_timeout=0.05,
            alpha=2.0,
        ).select(list(tiny_workload.queries), candidates)

        assert fingerprint(parallel) == fingerprint(serial)
        assert math.isfinite(parallel.best.time)
