"""Prompt generation tests: tokens, ILP selection, compression, template."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prompt.compression import WorkloadCompressor, render_lines
from repro.core.prompt.ilp import build_snippet_ilp, select_snippets
from repro.core.prompt.obfuscate import Obfuscator
from repro.core.prompt.template import PromptGenerator, render_prompt
from repro.core.prompt.tokens import column_tokens, count_tokens
from repro.db.hardware import HardwareSpec
from repro.db.postgres import PostgresEngine
from repro.sql.analyzer import JoinCondition


class TestTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_words_and_punctuation(self):
        assert count_tokens("a b") == 2
        assert count_tokens("a.b") == 3

    def test_long_words_cost_more(self):
        assert count_tokens("effective_cache_size") > count_tokens("x")

    def test_monotone_in_text(self):
        assert count_tokens("abc def") <= count_tokens("abc def ghi")

    def test_column_tokens_includes_separator(self):
        assert column_tokens("t.c") == count_tokens("t.c") + 1

    @given(st.text(max_size=200))
    def test_never_negative(self, text):
        assert count_tokens(text) >= 0


def make_values(*triples):
    return {
        JoinCondition.make(left, right): value for left, right, value in triples
    }


class TestSnippetILP:
    def test_empty_values(self):
        selection = select_snippets({}, 100)
        assert selection.lines == {}
        assert selection.value == 0.0

    def test_zero_budget(self):
        values = make_values(("a.x", "b.y", 10.0))
        assert select_snippets(values, 0).lines == {}

    def test_single_condition_selected(self):
        values = make_values(("a.x", "b.y", 10.0))
        selection = select_snippets(values, 100)
        assert selection.conditions == set(values)
        assert selection.value == pytest.approx(10.0)

    def test_merging_shares_line_head(self):
        # A joins B, C, D: one line "a.x: b.y, c.y, d.y" is cheaper than
        # three separate lines.
        values = make_values(
            ("a.x", "b.y", 5.0), ("a.x", "c.y", 5.0), ("a.x", "d.y", 5.0)
        )
        selection = select_snippets(values, 1000)
        assert len(selection.lines) == 1
        head, partners = next(iter(selection.lines.items()))
        assert head == "a.x"
        assert len(partners) == 3

    def test_budget_prefers_high_value(self):
        cheap_budget = column_tokens("a.x") + column_tokens("b.y")
        values = make_values(("a.x", "b.y", 100.0), ("c.z", "d.w", 1.0))
        selection = select_snippets(values, cheap_budget)
        assert selection.conditions == {JoinCondition.make("a.x", "b.y")}

    def test_no_symmetric_duplicates(self):
        values = make_values(("a.x", "b.y", 10.0))
        selection = select_snippets(values, 1000)
        rendered = render_lines(selection, values)
        text = "\n".join(rendered)
        assert text.count("a.x") + text.count("b.y") == 2

    def test_tokens_used_within_budget(self):
        values = make_values(
            ("a.x", "b.y", 3.0), ("b.y", "c.z", 2.0), ("c.z", "d.w", 1.0)
        )
        for budget in (5, 10, 20, 50):
            selection = select_snippets(values, budget)
            assert selection.tokens_used <= budget

    def test_greedy_method_feasible(self):
        values = make_values(("a.x", "b.y", 3.0), ("c.z", "d.w", 2.0))
        selection = select_snippets(values, 12, method="greedy")
        assert selection.tokens_used <= 12

    def test_model_constraint_structure(self):
        values = make_values(("a.x", "b.y", 1.0))
        model, left_vars, right_vars = build_snippet_ilp(values, 10)
        # 2 columns => 2 L vars; 1 condition => 2 directed R vars.
        assert len(left_vars) == 2
        assert len(right_vars) == 2
        assert model.variable_count == 4

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(
                st.sampled_from(["a.c1", "b.c2", "c.c3", "d.c4"]),
                st.sampled_from(["e.k1", "f.k2", "g.k3"]),
            ),
            st.floats(0.1, 100.0, allow_nan=False),
            max_size=8,
        ),
        st.integers(min_value=0, max_value=80),
    )
    def test_selection_always_within_budget(self, pairs, budget):
        values = {
            JoinCondition.make(left, right): value
            for (left, right), value in pairs.items()
        }
        selection = select_snippets(values, budget)
        assert selection.tokens_used <= budget
        assert selection.value <= sum(values.values()) + 1e-9


class TestCompressor:
    def test_compress_tiny_workload(self, pg_engine, tiny_workload):
        compressor = WorkloadCompressor(pg_engine)
        result = compressor.compress(list(tiny_workload.queries), 200)
        assert result.lines
        assert "users.user_id" in result.text or "events.user_id2" in result.text

    def test_coverage_fraction(self, pg_engine, tiny_workload):
        compressor = WorkloadCompressor(pg_engine)
        full = compressor.compress(list(tiny_workload.queries), 10_000)
        assert full.coverage == pytest.approx(1.0)
        nothing = compressor.compress(list(tiny_workload.queries), 0)
        assert nothing.coverage == 0.0

    def test_lines_ordered_by_value(self, tpch):
        engine = PostgresEngine(tpch.catalog)
        compressor = WorkloadCompressor(engine)
        result = compressor.compress(list(tpch.queries), 10_000)
        values = compressor.snippet_values(list(tpch.queries))

        def line_total(line):
            head, _, rest = line.partition(":")
            return sum(
                values.get(JoinCondition.make(head.strip(), p.strip()), 0.0)
                for p in rest.split(",")
            )

        totals = [line_total(line) for line in result.lines]
        assert totals == sorted(totals, reverse=True)

    def test_co_occurrence_relation(self, pg_engine, tiny_workload):
        compressor = WorkloadCompressor(pg_engine, relation="co_occurrence")
        values = compressor.snippet_values(list(tiny_workload.queries))
        assert any("_table" in c.left for c in values)

    def test_column_usage_relation(self, pg_engine, tiny_workload):
        compressor = WorkloadCompressor(pg_engine, relation="column_usage")
        values = compressor.snippet_values(list(tiny_workload.queries))
        assert values

    def test_unknown_relation_rejected(self, pg_engine):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            WorkloadCompressor(pg_engine, relation="astrology")

    def test_expensive_joins_survive_small_budget(self, tpch):
        engine = PostgresEngine(tpch.catalog)
        compressor = WorkloadCompressor(engine)
        values = compressor.snippet_values(list(tpch.queries))
        top_condition = max(values, key=values.get)
        result = compressor.compress(list(tpch.queries), 60)
        assert any(
            top_condition.left in line and "." in line for line in result.lines
        ) or any(top_condition.right in line for line in result.lines)


class TestTemplate:
    def test_listing1_structure(self):
        text = render_prompt("postgres", "a.x: b.y", HardwareSpec(61, 8))
        assert "Recommend some configuration parameters for PostgreSQL" in text
        assert "a.x: b.y" in text
        assert "memory: 61GB" in text
        assert "cores: 8" in text

    def test_mysql_name(self):
        text = render_prompt("mysql", "", HardwareSpec(16, 4))
        assert "MySQL" in text

    def test_generator_compressed(self, pg_engine, tiny_workload):
        prompt = PromptGenerator(pg_engine).generate(
            list(tiny_workload.queries), 300
        )
        assert prompt.compression is not None
        assert prompt.tokens > 0

    def test_generator_raw_sql_mode(self, pg_engine, tiny_workload):
        prompt = PromptGenerator(pg_engine, use_compressor=False).generate(
            list(tiny_workload.queries), 10_000
        )
        assert prompt.compression is None
        assert "SELECT" in prompt.text

    def test_raw_sql_respects_budget(self, pg_engine, tiny_workload):
        prompt = PromptGenerator(pg_engine, use_compressor=False).generate(
            list(tiny_workload.queries), 15
        )
        assert prompt.text.count("SELECT") <= 1


class TestObfuscator:
    def test_encode_deterministic(self):
        obfuscator = Obfuscator()
        assert obfuscator.encode_qualified("lineitem.l_orderkey") == "t1.c1"
        assert obfuscator.encode_qualified("lineitem.l_partkey") == "t1.c2"
        assert obfuscator.encode_qualified("orders.o_orderkey") == "t2.c3"

    def test_encode_line(self):
        obfuscator = Obfuscator()
        line = obfuscator.encode_line("a.x: b.y, c.z")
        assert line == "t1.c1: t2.c2, t3.c3"

    def test_decode_round_trip(self):
        obfuscator = Obfuscator()
        obfuscator.encode_line("lineitem.l_orderkey: orders.o_orderkey")
        encoded = "CREATE INDEX ON t1 (c1); ALTER SYSTEM SET work_mem = '1GB';"
        decoded = obfuscator.decode_text(encoded)
        assert "ON lineitem (l_orderkey)" in decoded
        assert "work_mem" in decoded

    def test_decode_handles_double_digit_codes(self):
        obfuscator = Obfuscator()
        for i in range(12):
            obfuscator.encode_table(f"table{i}")
        decoded = obfuscator.decode_text("t12 t1")
        assert decoded == "table11 table0"

    def test_obfuscated_prompt_hides_names(self, pg_engine, tiny_workload):
        prompt = PromptGenerator(pg_engine, obfuscate=True).generate(
            list(tiny_workload.queries), 300
        )
        assert "users" not in prompt.text.split("Recommend")[1].split("memory")[0]
        assert prompt.obfuscator is not None


class TestBatchedSnippetValues:
    """PR 10: the compressor's value passes run through one ``plan_many``
    call; values must be bit-identical to a per-query ``explain`` loop."""

    @pytest.mark.parametrize("relation", ["co_occurrence", "column_usage"])
    def test_batched_values_match_per_query_reference(
        self, pg_engine, tiny_workload, relation
    ):
        queries = list(tiny_workload.queries)
        batched = WorkloadCompressor(pg_engine, relation=relation)
        values = batched.snippet_values(queries)

        # Reference: the pre-batching formulation, one explain per query.
        reference: dict = {}
        if relation == "co_occurrence":
            for query in queries:
                cost = pg_engine.explain(query).estimated_cost
                tables = sorted(pg_engine.query_info(query).tables)
                for i, left in enumerate(tables):
                    for right in tables[i + 1:]:
                        condition = JoinCondition.make(
                            f"{left}._table", f"{right}._table"
                        )
                        reference[condition] = (
                            reference.get(condition, 0.0) + cost
                        )
        else:
            for query in queries:
                plan = pg_engine.explain(query)
                scan_cost = {
                    scan.table: scan.estimated_cost for scan in plan.scans
                }
                info = pg_engine.query_info(query)
                for predicate in info.filters:
                    condition = JoinCondition.make(
                        f"{predicate.table}._filters",
                        predicate.qualified_column,
                    )
                    reference[condition] = reference.get(
                        condition, 0.0
                    ) + scan_cost.get(predicate.table, 0.0)

        assert set(values) == set(reference)
        for condition, value in values.items():
            assert repr(value) == repr(reference[condition]), condition

    @pytest.mark.parametrize("relation", ["co_occurrence", "column_usage"])
    def test_batched_values_on_tpch(self, tpch, relation):
        engine = PostgresEngine(tpch.catalog)
        queries = list(tpch.queries)
        values = WorkloadCompressor(engine, relation=relation).snippet_values(
            queries
        )
        assert values, f"{relation} produced no snippet values on tpch"


class TestTokenMemoization:
    """PR 10: ``count_tokens``/``column_tokens`` carry a bounded memo."""

    def test_memo_hit_returns_same_value(self):
        count_tokens.cache_clear()
        cold = count_tokens("effective_cache_size = '16GB'")
        info_after_miss = count_tokens.cache_info()
        warm = count_tokens("effective_cache_size = '16GB'")
        info_after_hit = count_tokens.cache_info()
        assert warm == cold
        assert info_after_hit.hits == info_after_miss.hits + 1

    def test_cache_is_bounded(self):
        assert count_tokens.cache_info().maxsize is not None
        assert column_tokens.cache_info().maxsize is not None

    def test_column_tokens_memoized_consistently(self):
        column_tokens.cache_clear()
        assert column_tokens("users.age") == count_tokens("users.age") + 1
        assert column_tokens("users.age") == count_tokens("users.age") + 1
