"""Configuration selector tests (Algorithm 2 and Theorem 4.3)."""

import math

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.selector import BestConfig, ConfigurationSelector
from repro.db.indexes import Index
from repro.errors import BudgetExceededError


def make_selector(engine, **kwargs):
    evaluator = ConfigurationEvaluator(engine)
    defaults = {"initial_timeout": 0.05, "alpha": 2.0}
    defaults.update(kwargs)
    return ConfigurationSelector(engine, evaluator, **defaults)


def configs(*specs):
    return [
        Configuration(name=name, settings=dict(settings))
        for name, settings in specs
    ]


class TestValidation:
    def test_bad_initial_timeout(self, pg_engine):
        with pytest.raises(BudgetExceededError):
            make_selector(pg_engine, initial_timeout=0.0)

    def test_bad_alpha(self, pg_engine):
        with pytest.raises(BudgetExceededError):
            make_selector(pg_engine, alpha=1.0)

    def test_max_rounds_guard(self, pg_engine, tiny_workload):
        selector = make_selector(
            pg_engine, initial_timeout=1e-9, alpha=1.0001, max_rounds=3
        )
        with pytest.raises(BudgetExceededError):
            selector.select(
                list(tiny_workload.queries),
                configs(("slow", {"work_mem": "64kB"})),
            )


class TestSelection:
    def test_single_config_selected(self, pg_engine, tiny_workload):
        selector = make_selector(pg_engine)
        result = selector.select(
            list(tiny_workload.queries), configs(("only", {}))
        )
        assert result.best.config.name == "only"
        assert math.isfinite(result.best.time)

    def test_best_of_good_and_terrible(self, pg_engine, tiny_workload):
        candidates = configs(
            ("good", {"work_mem": "256MB", "shared_buffers": "4GB"}),
            ("swapping", {"shared_buffers": "55GB", "work_mem": "8GB"}),
        )
        selector = make_selector(pg_engine)
        result = selector.select(list(tiny_workload.queries), candidates)
        assert result.best.config.name == "good"

    def test_best_time_is_full_workload_time(self, pg_engine, tiny_workload):
        selector = make_selector(pg_engine)
        result = selector.select(
            list(tiny_workload.queries), configs(("only", {}))
        )
        meta = result.meta["only"]
        assert meta.is_complete
        assert result.best.time == pytest.approx(meta.time)
        assert meta.completed_queries == {q.name for q in tiny_workload.queries}

    def test_all_configs_get_final_chance(self, pg_engine, tiny_workload):
        candidates = configs(
            ("a", {}), ("b", {"work_mem": "128MB"}), ("c", {"work_mem": "64MB"})
        )
        selector = make_selector(pg_engine)
        result = selector.select(list(tiny_workload.queries), candidates)
        # Everyone either completed or provably exceeded the best time.
        for name, meta in result.meta.items():
            if name != result.best.config.name and not meta.is_complete:
                assert meta.time <= result.best.time + 1e-6

    def test_trace_is_monotone_improving(self, pg_engine, tiny_workload):
        candidates = configs(
            ("a", {}), ("b", {"work_mem": "512MB", "shared_buffers": "8GB"})
        )
        selector = make_selector(pg_engine)
        result = selector.select(list(tiny_workload.queries), candidates)
        best_values = [best for _, best in result.trace]
        assert best_values == sorted(best_values, reverse=True)
        times = [time for time, _ in result.trace]
        assert times == sorted(times)

    def test_example_4_1_first_finisher_not_necessarily_best(self):
        """Paper Example 4.1: the first configuration to finish a round
        is not necessarily optimal; the selector must still return the
        globally fastest one."""
        from repro.db.catalog import Catalog, Column
        from repro.db.postgres import PostgresEngine

        catalog = Catalog("ex41")
        catalog.add_table("t", 2_000_000, [
            Column("k", 8, is_primary_key=True),
            Column("v", 100, 1_000_000),
        ])
        engine = PostgresEngine(catalog)
        queries = []
        from repro.workloads.base import Query

        for i in range(3):
            queries.append(
                Query.from_sql(
                    f"q{i}",
                    f"SELECT count(*) FROM t WHERE t.v = 'x{i}'",
                    catalog,
                )
            )
        slow_then_fast = Configuration(
            "tuned", settings={"shared_buffers": "8GB", "work_mem": "256MB"}
        )
        default = Configuration("default", settings={})
        selector = make_selector(engine, initial_timeout=0.05, alpha=2.0)
        result = selector.select(queries, [default, slow_then_fast])
        # Whichever finished first, the returned config must have the
        # minimum total completed time among complete configs.
        complete = {
            name: meta.time
            for name, meta in result.meta.items()
            if meta.is_complete
        }
        assert result.best.config.name == min(complete, key=complete.get)


class TestTheorem43:
    def test_total_time_bounded_by_k_alpha_best(self, pg_engine, tiny_workload):
        """Theorem 4.3: query-evaluation time is O(k * alpha * C_best)."""
        alpha = 2.0
        candidates = configs(
            ("c1", {}),
            ("c2", {"work_mem": "64MB"}),
            ("c3", {"work_mem": "256MB"}),
            ("c4", {"shared_buffers": "2GB"}),
        )
        selector = make_selector(pg_engine, initial_timeout=0.05, alpha=alpha)
        result = selector.select(list(tiny_workload.queries), candidates)
        best_time = result.best.time
        total_query_time = sum(meta.time for meta in result.meta.values())
        k = len(candidates)
        # Constant 2: final round plus the geometric sum of prior rounds.
        assert total_query_time <= 2 * k * alpha * best_time + k * 0.05


class TestBestConfigObject:
    def test_defaults(self):
        best = BestConfig()
        assert math.isinf(best.time)
        assert best.config is None
