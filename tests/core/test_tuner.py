"""End-to-end lambda-Tune pipeline tests (Algorithm 1)."""

import math

import pytest

from repro.core import LambdaTune, LambdaTuneOptions
from repro.errors import ConfigurationError
from repro.llm import SimulatedLLM


def make_tuner(engine, **option_changes):
    options = LambdaTuneOptions(
        token_budget=300, initial_timeout=0.1, alpha=2.0
    ).ablated(**option_changes)
    return LambdaTune(engine, SimulatedLLM(), options)


class TestOptions:
    def test_paper_defaults(self):
        options = LambdaTuneOptions()
        assert options.num_configs == 5
        assert options.initial_timeout == 10.0
        assert options.alpha == 10.0

    def test_ablated_copies(self):
        options = LambdaTuneOptions()
        changed = options.ablated(use_scheduler=False)
        assert not changed.use_scheduler
        assert options.use_scheduler  # original untouched

    def test_invalid_num_configs_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="num_configs"):
            LambdaTuneOptions(num_configs=0)

    def test_negative_workers_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="workers"):
            LambdaTuneOptions(workers=-1)

    def test_unknown_executor_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="executor"):
            LambdaTuneOptions(executor="fibers")

    def test_ablated_revalidates(self):
        with pytest.raises(ConfigurationError, match="executor"):
            LambdaTuneOptions().ablated(executor="bogus")


class TestPipeline:
    def test_empty_workload_rejected(self, pg_engine):
        with pytest.raises(ConfigurationError):
            make_tuner(pg_engine).tune([])

    def test_tune_returns_complete_result(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine).tune(list(tiny_workload.queries))
        assert result.tuner == "lambda-tune"
        assert result.system == "postgres"
        assert math.isfinite(result.best_time)
        assert result.best_config is not None
        assert result.configs_evaluated == 5
        assert result.tuning_seconds > 0
        assert result.trace

    def test_best_time_agrees_with_trace(self, pg_engine, tiny_workload):
        # Regression: best_time is selection.best.time; the trace's last
        # point must already agree, with no post-hoc overwrite.
        result = make_tuner(pg_engine).tune(list(tiny_workload.queries))
        assert result.trace
        assert result.best_time == result.trace[-1].best_time

    def test_workload_name_threaded_into_result(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine).tune(
            list(tiny_workload.queries), workload_name=tiny_workload.name
        )
        assert result.workload == "tiny"

    def test_improves_over_default(self, pg_engine, tiny_workload):
        default_time = sum(
            pg_engine.estimate_seconds(query) for query in tiny_workload.queries
        )
        result = make_tuner(pg_engine).tune(list(tiny_workload.queries))
        assert result.best_time < default_time

    def test_deterministic_given_seed(self, tiny_catalog, tiny_workload):
        from repro.db.postgres import PostgresEngine

        results = []
        for _ in range(2):
            engine = PostgresEngine(tiny_catalog)
            results.append(
                make_tuner(engine, seed=5).tune(list(tiny_workload.queries))
            )
        assert results[0].best_time == results[1].best_time
        assert results[0].best_config.name == results[1].best_config.name

    def test_k_configs_requested(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine, num_configs=3).tune(
            list(tiny_workload.queries)
        )
        assert result.configs_evaluated == 3

    def test_parameters_only_mode(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine, parameters_only=True).tune(
            list(tiny_workload.queries)
        )
        assert result.best_config.indexes == []

    def test_indexes_only_mode(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine, indexes_only=True).tune(
            list(tiny_workload.queries)
        )
        assert result.best_config.settings == {}

    def test_mysql_pipeline(self, mysql_engine, tiny_workload):
        result = make_tuner(mysql_engine).tune(list(tiny_workload.queries))
        assert result.system == "mysql"
        assert math.isfinite(result.best_time)
        assert "innodb_buffer_pool_size" in result.best_config.settings

    def test_prompt_token_accounting(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine).tune(list(tiny_workload.queries))
        assert result.extras["prompt_tokens"] > 0
        assert result.extras["compression_coverage"] == pytest.approx(1.0)

    def test_obfuscation_equivalent_quality(self, tiny_catalog, tiny_workload):
        """Paper §6.4.3: obfuscation leaves performance virtually equal."""
        from repro.db.postgres import PostgresEngine

        plain = make_tuner(PostgresEngine(tiny_catalog)).tune(
            list(tiny_workload.queries)
        )
        hidden = make_tuner(
            PostgresEngine(tiny_catalog), obfuscate=True
        ).tune(list(tiny_workload.queries))
        assert hidden.best_time == pytest.approx(plain.best_time, rel=0.15)

    def test_engine_left_without_candidate_indexes(
        self, pg_engine, tiny_workload
    ):
        make_tuner(pg_engine).tune(list(tiny_workload.queries))
        # Evaluation indexes are transient.
        assert pg_engine.indexes == []


class TestStages:
    def test_generate_prompt_stage(self, pg_engine, tiny_workload):
        tuner = make_tuner(pg_engine)
        prompt = tuner.generate_prompt(list(tiny_workload.queries))
        assert "PostgreSQL" in prompt.text
        assert prompt.compression is not None

    def test_sample_configurations_stage(self, pg_engine, tiny_workload):
        tuner = make_tuner(pg_engine)
        prompt = tuner.generate_prompt(list(tiny_workload.queries))
        candidates = tuner.sample_configurations(prompt)
        assert len(candidates) == 5
        assert all(not config.is_empty for config in candidates)
        assert len({config.name for config in candidates}) == 5


class TestTokenBudgetDefaults:
    def test_none_budget_uses_model_limit(self, pg_engine, tiny_workload):
        tuner = make_tuner(pg_engine, token_budget=None)
        prompt = tuner.generate_prompt(list(tiny_workload.queries))
        # Everything fits: full join-cost coverage.
        assert prompt.compression.coverage == pytest.approx(1.0)

    def test_none_budget_tunes(self, pg_engine, tiny_workload):
        result = make_tuner(pg_engine, token_budget=None).tune(
            list(tiny_workload.queries)
        )
        assert math.isfinite(result.best_time)
