"""Unit tests for the shared Algorithm-2 round-driver state machine."""

import math

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.rounds import (
    PHASE_FINAL,
    PHASE_ROUNDS,
    RoundCursor,
    RoundDriver,
    SelectionState,
    SerialExecution,
    TuningObserver,
)
from repro.errors import BudgetExceededError


def configs(*names):
    return [Configuration(name=name) for name in names]


class TestSelectionState:
    def test_initial(self):
        state = SelectionState.initial(configs("a", "b"), 10.0)
        assert state.timeout == 10.0
        assert state.rounds == 0
        assert set(state.meta) == {"a", "b"}
        assert math.isinf(state.best.time)
        assert not state.finished_first
        assert state.candidates is None

    def test_begin_round_counts_and_enforces_budget(self):
        state = SelectionState.initial(configs("a"), 1.0)
        state.begin_round(max_rounds=2)
        state.begin_round(max_rounds=2)
        assert state.rounds == 2
        with pytest.raises(BudgetExceededError, match="2 rounds"):
            state.begin_round(max_rounds=2)

    def test_fold_update_improves_only_on_faster_completion(self):
        [config] = configs("a")
        state = SelectionState.initial([config], 1.0)
        incomplete = ConfigMeta(time=0.5, is_complete=False)
        assert state.fold_update(config, incomplete, clock_now=1.0) is False
        assert state.trace == []

        complete = ConfigMeta(time=2.0, is_complete=True)
        assert state.fold_update(config, complete, clock_now=3.0) is True
        assert state.best.time == 2.0
        assert state.best.config is config
        assert state.trace == [(3.0, 2.0)]

        slower = ConfigMeta(time=5.0, is_complete=True)
        assert state.fold_update(config, slower, clock_now=4.0) is False
        assert state.trace == [(3.0, 2.0)]

    def test_advance_timeout_geometric(self):
        state = SelectionState.initial(configs("a"), 2.0)
        state.advance_timeout(alpha=10.0, adaptive=False)
        assert state.timeout == 20.0

    def test_advance_timeout_adaptive_folds_index_overheads(self):
        state = SelectionState.initial(configs("a", "b"), 2.0)
        state.meta["a"].index_time = 7.0
        state.meta["b"].index_time = 3.0
        state.advance_timeout(alpha=10.0, adaptive=True)
        # max(2.0, 7.0, 3.0) * 10 -- exact float semantics.
        assert state.timeout == 70.0

    def test_enter_final_pass_excludes_winner(self):
        pool = configs("a", "b", "c")
        state = SelectionState.initial(pool, 1.0)
        state.enter_final_pass(pool, winner=pool[1])
        assert state.candidates == ["a", "c"]

    def test_result_shares_state_objects(self):
        state = SelectionState.initial(configs("a"), 1.0)
        result = state.result()
        assert result.meta is state.meta
        assert result.best is state.best
        assert result.trace is state.trace


class TestRoundCursor:
    def test_remaining_respects_position(self):
        pool = configs("a", "b", "c")
        by_name = {c.name: c for c in pool}
        cursor = RoundCursor(phase=PHASE_ROUNDS, order=["c", "a", "b"], position=1)
        assert [c.name for c in cursor.remaining(by_name)] == ["a", "b"]


class TestDriverValidation:
    def make_driver(self, pg_engine, **kwargs):
        evaluator = ConfigurationEvaluator(pg_engine)
        return RoundDriver(pg_engine, evaluator, **kwargs)

    def test_rejects_nonpositive_timeout(self, pg_engine):
        with pytest.raises(BudgetExceededError, match="timeout"):
            self.make_driver(pg_engine, initial_timeout=0.0)

    def test_rejects_alpha_at_most_one(self, pg_engine):
        with pytest.raises(BudgetExceededError, match="alpha"):
            self.make_driver(pg_engine, alpha=1.0)

    def test_rejects_empty_candidate_pool(self, pg_engine, tiny_workload):
        driver = self.make_driver(pg_engine)
        with pytest.raises(BudgetExceededError, match="no candidate"):
            driver.run(list(tiny_workload.queries), [], SerialExecution())


class RecordingObserver(TuningObserver):
    def __init__(self):
        self.events: list[tuple] = []

    def round_started(self, state, phase, order):
        self.events.append(("round_started", phase, tuple(order)))

    def update_folded(self, config, position, meta, state, engine):
        self.events.append(("update_folded", config.name, position))

    def config_quarantined(self, config, meta):
        self.events.append(("quarantined", config.name))

    def best_improved(self, config, state):
        self.events.append(("best_improved", config.name, state.best.time))

    def round_checkpoint(self, state, engine):
        self.events.append(("checkpoint", state.rounds))


class TestDriverEventProtocol:
    def run_selection(self, pg_engine, tiny_workload, candidates):
        evaluator = ConfigurationEvaluator(pg_engine)
        driver = RoundDriver(
            pg_engine, evaluator, initial_timeout=0.5, alpha=2.0
        )
        observer = RecordingObserver()
        result = driver.run(
            list(tiny_workload.queries),
            candidates,
            SerialExecution(),
            observer=observer,
        )
        return result, observer.events

    def test_event_ordering_invariants(self, pg_engine, tiny_workload):
        pool = [
            Configuration(name="fast", settings={"work_mem": "512MB"}),
            Configuration(name="default"),
        ]
        result, events = self.run_selection(pg_engine, tiny_workload, pool)
        assert result.best.config is not None

        kinds = [e[0] for e in events]
        # Every phase announces itself before any of its updates.
        assert kinds[0] == "round_started"
        # Each main round ends in exactly one checkpoint...
        main_rounds = sum(
            1 for e in events if e[0] == "round_started" and e[1] == PHASE_ROUNDS
        )
        assert kinds.count("checkpoint") == main_rounds
        # ...and nothing follows the final pass's updates (no checkpoint
        # after final: its updates are not idempotent on resume).
        final_at = next(
            i
            for i, e in enumerate(events)
            if e[0] == "round_started" and e[1] == PHASE_FINAL
        )
        assert "checkpoint" not in kinds[final_at:]

    def test_positions_align_with_round_order(self, pg_engine, tiny_workload):
        pool = [Configuration(name="a"), Configuration(name="b")]
        _, events = self.run_selection(pg_engine, tiny_workload, pool)
        order: tuple = ()
        for event in events:
            if event[0] == "round_started":
                order = event[2]
            elif event[0] == "update_folded":
                _, name, position = event
                assert order[position] == name
