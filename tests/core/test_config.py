"""Configuration parsing tests (LLM script -> Configuration)."""

import pytest

from repro.core.config import Configuration, parse_config_script
from repro.db.indexes import Index
from repro.db.knobs import GB


@pytest.fixture()
def knob_space(pg_engine):
    return pg_engine.knob_space


class TestSettingParsing:
    def test_alter_system_set(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET work_mem = '1GB';", knob_space, tiny_catalog
        )
        assert config.settings == {"work_mem": 1 * GB}

    def test_case_insensitive(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "alter system set WORK_MEM = '64MB';", knob_space, tiny_catalog
        )
        assert "work_mem" in config.settings

    def test_plain_set_accepted(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "SET random_page_cost = 1.1;", knob_space, tiny_catalog
        )
        assert config.settings["random_page_cost"] == 1.1

    def test_set_global_for_mysql(self, mysql_engine, tiny_catalog):
        config = parse_config_script(
            "SET GLOBAL innodb_buffer_pool_size = '40GB';",
            mysql_engine.knob_space,
            tiny_catalog,
        )
        assert config.settings["innodb_buffer_pool_size"] == 40 * GB

    def test_unknown_knob_rejected_not_fatal(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET magic_turbo = on;\n"
            "ALTER SYSTEM SET work_mem = '8MB';",
            knob_space,
            tiny_catalog,
        )
        assert config.settings == {"work_mem": 8 * 1024**2}
        assert len(config.rejected) == 1

    def test_invalid_value_rejected(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET work_mem = 'lots and lots';",
            knob_space,
            tiny_catalog,
        )
        assert not config.settings
        assert config.rejected

    def test_prose_between_commands_ignored(self, knob_space, tiny_catalog):
        text = (
            "Here are my recommendations:\n\n"
            "ALTER SYSTEM SET work_mem = '16MB';\n"
            "This should improve sort performance.\n"
            "ALTER SYSTEM SET jit = off;\n"
        )
        config = parse_config_script(text, knob_space, tiny_catalog)
        assert set(config.settings) == {"work_mem", "jit"}
        assert config.settings["jit"] is False


class TestIndexParsing:
    def test_create_index(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX idx_age ON users (age);", knob_space, tiny_catalog
        )
        assert config.indexes == [Index("users", ("age",), name="idx_age")]

    def test_anonymous_index(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX ON users (age);", knob_space, tiny_catalog
        )
        assert config.indexes[0].key == ("users", ("age",))

    def test_multi_column_index(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX ON events (kind, payload);", knob_space, tiny_catalog
        )
        assert config.indexes[0].columns == ("kind", "payload")

    def test_if_not_exists_and_unique(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE UNIQUE INDEX IF NOT EXISTS u ON users (user_id);",
            knob_space,
            tiny_catalog,
        )
        assert config.indexes

    def test_unknown_table_rejected(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX ON ghosts (x);", knob_space, tiny_catalog
        )
        assert not config.indexes
        assert config.rejected

    def test_unknown_column_rejected(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX ON users (salary);", knob_space, tiny_catalog
        )
        assert not config.indexes

    def test_duplicate_indexes_deduplicated(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "CREATE INDEX a ON users (age);\nCREATE INDEX b ON users (age);",
            knob_space,
            tiny_catalog,
        )
        assert len(config.indexes) == 1


class TestConfigurationObject:
    def test_identity_by_name(self):
        assert Configuration("a") == Configuration("a")
        assert Configuration("a") != Configuration("b")
        assert len({Configuration("a"), Configuration("a")}) == 1

    def test_is_empty(self):
        assert Configuration("x").is_empty
        assert not Configuration("x", settings={"work_mem": 1}).is_empty

    def test_without_indexes(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET work_mem = '8MB';\nCREATE INDEX ON users (age);",
            knob_space,
            tiny_catalog,
        )
        stripped = config.without_indexes()
        assert stripped.settings and not stripped.indexes
        assert config.indexes  # original untouched

    def test_indexes_only(self, knob_space, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET work_mem = '8MB';\nCREATE INDEX ON users (age);",
            knob_space,
            tiny_catalog,
        )
        stripped = config.indexes_only()
        assert stripped.indexes and not stripped.settings

    def test_apply_settings(self, pg_engine, tiny_catalog):
        config = parse_config_script(
            "ALTER SYSTEM SET work_mem = '8MB';",
            pg_engine.knob_space,
            tiny_catalog,
        )
        elapsed = config.apply_settings(pg_engine)
        assert elapsed == pg_engine.restart_seconds
        assert pg_engine.get("work_mem") == 8 * 1024**2


class TestEndToEndWithSimulatedLLM:
    def test_llm_output_parses_cleanly(self, pg_engine, tiny_workload):
        from repro.core.prompt.template import PromptGenerator
        from repro.llm import SimulatedLLM

        prompt = PromptGenerator(pg_engine).generate(
            list(tiny_workload.queries), 300
        )
        for seed in range(5):
            response = SimulatedLLM().complete(prompt.text, seed=seed)
            config = parse_config_script(
                response.text, pg_engine.knob_space, pg_engine.catalog
            )
            assert config.settings
            assert not config.rejected
