"""Configuration evaluator tests (Algorithm 3)."""

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.db.indexes import Index


@pytest.fixture()
def config_with_index():
    return Configuration(
        name="c1",
        settings={"work_mem": "64MB"},
        indexes=[Index("events", ("user_id2",)), Index("users", ("age",))],
    )


class TestConfigMeta:
    def test_initial_state_matches_paper_table2(self):
        meta = ConfigMeta()
        assert meta.time == 0.0
        assert meta.is_complete is False
        assert meta.index_time == 0.0
        assert meta.completed_queries == set()

    def test_throughput(self):
        meta = ConfigMeta(time=2.0, completed_queries={"a", "b"})
        assert meta.throughput() == 1.0
        assert ConfigMeta().throughput() == 0.0


class TestQueryIndexMap:
    def test_join_column_index_is_relevant(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        mapping = evaluator.query_index_map(
            list(tiny_workload.queries), config_with_index
        )
        join_indexes = {index.name for index in mapping["join_all"]}
        assert "idx_events_user_id2" in join_indexes

    def test_unrelated_index_not_relevant(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        mapping = evaluator.query_index_map(
            list(tiny_workload.queries), config_with_index
        )
        # kind_filter touches events.kind/payload only.
        assert all(
            index.name != "idx_users_age" for index in mapping["kind_filter"]
        )

    def test_filter_column_index_is_relevant(self, pg_engine, tiny_workload):
        config = Configuration("c", indexes=[Index("users", ("country",))])
        evaluator = ConfigurationEvaluator(pg_engine)
        mapping = evaluator.query_index_map(list(tiny_workload.queries), config)
        assert mapping["by_country"]


class TestEvaluate:
    def test_complete_run_updates_meta(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e9, meta
        )
        assert meta.is_complete
        assert meta.completed_queries == {q.name for q in tiny_workload.queries}
        assert meta.time > 0

    def test_settings_applied(self, pg_engine, tiny_workload, config_with_index):
        evaluator = ConfigurationEvaluator(pg_engine)
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e9, ConfigMeta()
        )
        assert pg_engine.get("work_mem") == 64 * 1024**2

    def test_indexes_dropped_after_evaluation(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e9, ConfigMeta()
        )
        assert pg_engine.indexes == []

    def test_preexisting_indexes_survive(self, pg_engine, tiny_workload):
        existing = Index("users", ("user_id",))
        pg_engine.create_index(existing)
        config = Configuration(
            "c", indexes=[Index("events", ("user_id2",)), existing]
        )
        evaluator = ConfigurationEvaluator(pg_engine)
        evaluator.evaluate(config, list(tiny_workload.queries), 1e9, ConfigMeta())
        assert pg_engine.has_index(existing)
        assert len(pg_engine.indexes) == 1

    def test_timeout_interrupts_and_flags_incomplete(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e-4, meta
        )
        assert not meta.is_complete
        assert len(meta.completed_queries) < len(tiny_workload.queries)

    def test_index_time_tracked_separately(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e9, meta
        )
        assert meta.index_time > 0
        # Query time excludes index builds and reconfiguration.
        assert meta.time < pg_engine.clock.now

    def test_lazy_creation_skips_unreached_indexes(
        self, pg_engine, tiny_workload
    ):
        # An index relevant only to the join query; timeout so small that
        # only the cheapest no-index cluster runs first.
        config = Configuration("c", indexes=[Index("events", ("user_id2",))])
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        evaluator.evaluate(config, list(tiny_workload.queries), 1e-4, meta)
        # Scheduler puts index-free queries first; the expensive events
        # index must not have been built for an interrupted run.
        assert meta.index_time == 0.0

    def test_eager_mode_builds_everything_upfront(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine, lazy_indexes=False)
        meta = ConfigMeta()
        evaluator.evaluate(
            config_with_index, list(tiny_workload.queries), 1e-4, meta
        )
        assert meta.index_time > 0  # paid despite the interrupt

    def test_resume_skips_completed_queries(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        meta = ConfigMeta()
        all_queries = list(tiny_workload.queries)
        evaluator.evaluate(config_with_index, all_queries, 1e9, meta)
        first_time = meta.time
        pending = [
            q for q in all_queries if q.name not in meta.completed_queries
        ]
        assert pending == []
        evaluator.evaluate(config_with_index, pending, 1e9, meta)
        assert meta.time == first_time


class TestPlanOrder:
    def test_scheduler_puts_cheap_index_clusters_first(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine)
        order = evaluator.plan_order(list(tiny_workload.queries), config_with_index)
        names = [query.name for query in order]
        # by_country and kind_filter need no (or cheap) indexes; the
        # events join needs the expensive one and must come last.
        assert names[-1] == "join_all"

    def test_scheduler_disabled_preserves_order(
        self, pg_engine, tiny_workload, config_with_index
    ):
        evaluator = ConfigurationEvaluator(pg_engine, use_scheduler=False)
        order = evaluator.plan_order(list(tiny_workload.queries), config_with_index)
        assert [q.name for q in order] == [q.name for q in tiny_workload.queries]

    def test_large_workload_scheduling_within_cap(self, job, config_with_index):
        from repro.db.postgres import PostgresEngine

        engine = PostgresEngine(job.catalog)
        config = Configuration(
            "c",
            indexes=[
                Index("cast_info", ("movie_id",)),
                Index("movie_info", ("movie_id",)),
                Index("title", ("id",)),
            ],
        )
        evaluator = ConfigurationEvaluator(engine)
        order = evaluator.plan_order(list(job.queries), config)
        assert sorted(q.name for q in order) == sorted(
            q.name for q in job.queries
        )
