"""The resource-budget objective: feasibility gates in selection.

With ``LambdaTuneOptions.budget`` set, candidates whose footprint
exceeds the caps are quarantined through the same typed path as
inapplicable scripts -- deterministically, before any settings touch
the engine, and byte-identically across serial/thread/process
executors.  Without a budget nothing changes at all.
"""

import pytest

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.hardware import HardwareSpec
from repro.db.registry import available_engines, create_engine
from repro.db.resources import ResourceBudget, parse_budget
from repro.errors import BudgetInfeasibleError, ConfigurationError
from repro.llm.mock import SimulatedLLM

GB = 1024**3
HARDWARE = HardwareSpec(memory_gb=61.0, cores=8)
FAST = LambdaTuneOptions(token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9)

#: Quarantines the oversubscribing samples but keeps modest ones
#: (seed 9 on the tiny catalog: 3 of 5 PostgreSQL samples ask for
#: ~205GB of peak memory on a 61GB box).
PARTIAL_BUDGET = parse_budget("ram=32GB")
#: Nothing the LLM samples fits; only the default config survives.
IMPOSSIBLE_BUDGET = parse_budget("ram=16GB")
#: Admits everything the LLM can possibly ask for.
GENEROUS_BUDGET = parse_budget("ram=1024GB,disk=1024GB")


def fingerprint(result):
    meta = result.extras.get("meta", {})
    return (
        repr(result.best_time),
        result.best_config.name if result.best_config else None,
        tuple(
            (name, repr(m.time), m.is_complete, m.failed, m.failure)
            for name, m in sorted(meta.items())
        ),
        tuple((repr(p.time), repr(p.best_time)) for p in result.trace),
        tuple(result.extras["failed_configs"]),
        result.extras["fallback"],
    )


def budget_tune(workload, *, budget, workers=0, executor="process",
                system="postgres"):
    engine = create_engine(system, workload.catalog, HARDWARE)
    options = FAST.ablated(budget=budget, workers=workers, executor=executor)
    return LambdaTune(engine, SimulatedLLM(), options).tune(
        list(workload.queries)
    )


class TestEvaluatorGate:
    def test_infeasible_config_quarantined_before_any_apply(self, pg_engine):
        evaluator = ConfigurationEvaluator(
            pg_engine, budget=ResourceBudget(max_memory_bytes=1 * GB)
        )
        config = Configuration(
            name="fat", settings={"shared_buffers": "8GB"}
        )
        meta = ConfigMeta()
        evaluator.evaluate(config, [], 10.0, meta)
        assert meta.failed
        assert "infeasible under budget" in meta.failure
        assert "peak memory" in meta.failure
        # Nothing was applied and no simulated time passed.
        assert pg_engine.clock.now == 0.0
        assert pg_engine.get("shared_buffers") == 128 * 1024**2

    def test_check_raises_typed_configuration_error(self, pg_engine):
        evaluator = ConfigurationEvaluator(
            pg_engine, budget=ResourceBudget(max_memory_bytes=1 * GB)
        )
        config = Configuration(name="fat", settings={"shared_buffers": "8GB"})
        with pytest.raises(BudgetInfeasibleError) as excinfo:
            evaluator._check_budget(config)  # noqa: SLF001
        assert isinstance(excinfo.value, ConfigurationError)

    def test_budget_travels_in_worker_options(self, pg_engine):
        budget = ResourceBudget(max_memory_bytes=8 * GB)
        evaluator = ConfigurationEvaluator(pg_engine, budget=budget)
        options = evaluator.worker_options()
        assert options["budget"] == budget
        # Worker reconstruction path: options round-trip into a twin.
        twin = ConfigurationEvaluator(pg_engine.fork(), **options)
        assert twin._budget == budget  # noqa: SLF001

    def test_no_budget_admits_everything(self, pg_engine):
        evaluator = ConfigurationEvaluator(pg_engine)
        config = Configuration(
            name="fat", settings={"shared_buffers": "55GB"}
        )
        meta = ConfigMeta()
        evaluator.evaluate(config, [], 10.0, meta)
        assert not meta.failed


class TestTuneUnderBudget:
    def test_partial_budget_quarantines_oversubscribers(self, tiny_workload):
        result = budget_tune(tiny_workload, budget=PARTIAL_BUDGET)
        assert result.extras["failed_configs"] == [
            "llm-config-1", "llm-config-2", "llm-config-4",
        ]
        assert not result.extras["fallback"]
        assert result.best_config.name not in result.extras["failed_configs"]
        for name, meta in result.extras["meta"].items():
            if meta.failed:
                assert "infeasible under budget" in meta.failure

    def test_result_extras_report_the_objective(self, tiny_workload):
        result = budget_tune(tiny_workload, budget=PARTIAL_BUDGET)
        assert result.extras["budget"] == "ram=32GB"
        assert result.extras["feasible"] is True
        footprint = result.extras["resource_footprint"]
        assert footprint["peak_memory_bytes"] <= 32 * GB
        assert result.extras["cheapest_tier"] == "large"

    def test_impossible_budget_falls_back_to_default(self, tiny_workload):
        result = budget_tune(tiny_workload, budget=IMPOSSIBLE_BUDGET)
        assert result.extras["fallback"] is True
        assert len(result.extras["failed_configs"]) == 5
        assert result.best_config.name == "default-config"
        # The default config itself fits comfortably.
        assert result.extras["feasible"] is True
        assert result.extras["cheapest_tier"] == "small"

    def test_latency_only_results_untouched_by_generous_budget(
        self, tiny_workload
    ):
        """The gate never fires under a generous budget, so everything
        the fingerprint covers is byte-identical to a budget-free run;
        only the extras report the objective."""
        plain = budget_tune(tiny_workload, budget=None)
        budgeted = budget_tune(tiny_workload, budget=GENEROUS_BUDGET)
        assert fingerprint(budgeted) == fingerprint(plain)
        assert "budget" not in plain.extras
        assert budgeted.extras["budget"] == "ram=1024GB,disk=1024GB"

    def test_options_reject_non_budget_values(self):
        with pytest.raises(ConfigurationError):
            FAST.ablated(budget="ram=8GB")


class TestExecutorEquivalence:
    """The feasibility gate is deterministic across execution modes."""

    MATRIX = [
        (0, "serial"),
        (2, "serial"),
        (2, "thread"),
        (3, "thread"),
        (2, "process"),
    ]

    @pytest.mark.parametrize("workers,executor", MATRIX)
    def test_partial_budget_identical_to_serial(
        self, tiny_workload, workers, executor
    ):
        expected = fingerprint(budget_tune(tiny_workload, budget=PARTIAL_BUDGET))
        result = budget_tune(
            tiny_workload,
            budget=PARTIAL_BUDGET,
            workers=workers,
            executor=executor,
        )
        assert fingerprint(result) == expected

    @pytest.mark.parametrize("workers,executor", [(2, "thread"), (2, "process")])
    def test_fallback_identical_to_serial(
        self, tiny_workload, workers, executor
    ):
        expected = fingerprint(
            budget_tune(tiny_workload, budget=IMPOSSIBLE_BUDGET)
        )
        result = budget_tune(
            tiny_workload,
            budget=IMPOSSIBLE_BUDGET,
            workers=workers,
            executor=executor,
        )
        assert fingerprint(result) == expected


class TestEveryBackend:
    @pytest.mark.parametrize("system", available_engines())
    def test_budget_tune_returns_a_feasible_config(self, tiny_workload, system):
        budget = parse_budget("ram=60GB,disk=200GB")
        result = budget_tune(tiny_workload, budget=budget, system=system)
        engine = create_engine(system, tiny_workload.catalog, HARDWARE)
        footprint = engine.resource_footprint(
            result.best_config.settings, result.best_config.indexes
        )
        assert budget.admits(footprint)
        assert result.extras["feasible"] is True

    @pytest.mark.parametrize("system", available_engines())
    def test_serial_and_process_agree(self, tiny_workload, system):
        budget = parse_budget("ram=60GB,disk=200GB")
        serial = budget_tune(tiny_workload, budget=budget, system=system)
        pooled = budget_tune(
            tiny_workload,
            budget=budget,
            system=system,
            workers=2,
            executor="process",
        )
        assert fingerprint(pooled) == fingerprint(serial)
