"""The batched multi-workload tuning driver."""

from __future__ import annotations

import pytest

from repro.cache import ArtifactCache, active_cache, install_cache
from repro.core import BatchJob, LambdaTune, LambdaTuneOptions, tune_many
from repro.db.mysql import MySQLEngine
from repro.errors import ConfigurationError
from repro.llm.mock import SimulatedLLM

OPTIONS = LambdaTuneOptions(
    token_budget=400, initial_timeout=0.5, alpha=2.0, seed=9
)


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    previous = install_cache(None)
    yield
    install_cache(previous)


def tiny_jobs(tiny_workload, count: int = 2) -> list[BatchJob]:
    return [
        BatchJob(workload=tiny_workload, options=OPTIONS.ablated(seed=9 + i))
        for i in range(count)
    ]


def test_results_come_back_in_job_order(tiny_workload):
    jobs = tiny_jobs(tiny_workload, 3)
    results = tune_many(jobs, max_workers=3)
    assert len(results) == 3
    assert all(result.workload == "tiny" for result in results)


def test_concurrent_matches_serial(tiny_workload):
    serial = tune_many(tiny_jobs(tiny_workload), max_workers=1)
    concurrent = tune_many(tiny_jobs(tiny_workload), max_workers=2)
    for a, b in zip(serial, concurrent):
        assert a.fingerprint() == b.fingerprint()


def test_classmethod_entry_point_delegates(tiny_workload):
    direct = tune_many(tiny_jobs(tiny_workload), max_workers=1)
    via_tuner = LambdaTune.tune_many(tiny_jobs(tiny_workload), max_workers=1)
    for a, b in zip(direct, via_tuner):
        assert a.fingerprint() == b.fingerprint()


def test_empty_batch_is_rejected():
    with pytest.raises(ConfigurationError):
        tune_many([])


def test_cache_dir_is_installed_for_the_batch_only(tiny_workload, tmp_path):
    sentinel = ArtifactCache(None)
    install_cache(sentinel)
    tune_many(tiny_jobs(tiny_workload, 1), cache_dir=tmp_path / "shared")
    assert active_cache() is sentinel  # restored afterwards
    # The batch actually used the shared dir: entries were written.
    assert list((tmp_path / "shared").rglob("*.bin"))


def test_jobs_can_target_different_systems(tiny_workload):
    jobs = [
        BatchJob(workload=tiny_workload, options=OPTIONS),
        BatchJob(workload=tiny_workload, system="mysql", options=OPTIONS),
    ]
    results = tune_many(jobs, max_workers=2)
    assert results[0].system == "postgres"
    assert results[1].system == "mysql"


def test_job_build_honours_engine_and_realtime_factor(tiny_workload, tiny_catalog):
    engine = MySQLEngine(tiny_catalog)
    job = BatchJob(
        workload=tiny_workload,
        engine=engine,
        llm=SimulatedLLM(),
        realtime_factor=0.25,
        options=OPTIONS,
    )
    tuner = job.build()
    assert tuner._engine is engine
    assert engine.realtime_factor == 0.25


def test_shared_cache_beats_nothing_but_results_identical(tiny_workload, tmp_path):
    """Same jobs, shared disk cache on/off: fingerprints must agree."""
    without = tune_many(tiny_jobs(tiny_workload), max_workers=2)
    with_cache = tune_many(
        tiny_jobs(tiny_workload), max_workers=2, cache_dir=tmp_path / "c"
    )
    warm = tune_many(
        tiny_jobs(tiny_workload), max_workers=2, cache_dir=tmp_path / "c"
    )
    for a, b, c in zip(without, with_cache, warm):
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()
