"""TuningResult/TracePoint tests."""

import math

from repro.core.result import TracePoint, TuningResult


def make_result():
    return TuningResult(
        tuner="x", workload="w", system="postgres",
        best_time=float("inf"), best_config=None,
    )


class TestRecord:
    def test_record_improves_best(self):
        result = make_result()
        result.record(10.0, 5.0)
        assert result.best_time == 5.0
        result.record(20.0, 7.0)  # worse, best unchanged
        assert result.best_time == 5.0
        result.record(30.0, 3.0)
        assert result.best_time == 3.0
        assert len(result.trace) == 3

    def test_best_time_until(self):
        result = make_result()
        result.record(10.0, 5.0)
        result.record(30.0, 3.0)
        assert math.isinf(result.best_time_until(5.0))
        assert result.best_time_until(15.0) == 5.0
        assert result.best_time_until(100.0) == 3.0

    def test_trace_point_immutable(self):
        point = TracePoint(time=1.0, best_time=2.0)
        assert point.time == 1.0
        assert point.best_time == 2.0
