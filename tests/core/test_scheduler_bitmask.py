"""Bitmask DP core vs. executable specification and oracle.

The production scheduler (:func:`compute_order_dp`) is a bitmask
rewrite of the original dict/frozenset Algorithm 4, kept as
:func:`compute_order_dp_reference`.  These tests pin the rewrite to the
specification:

- for n <= 8 the bitmask order achieves exactly the brute-force-optimal
  Equation-1 cost,
- for randomized instances up to the paper's cap (n = 13, beyond
  brute-force reach) the bitmask order is *identical* to the reference
  order -- both use the same canonical summation order and tie-break,
  so equality is exact, not approximate,
- the numpy-vectorized and pure-python scalar cores agree bit-for-bit
  on the layers where both apply.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    MAX_DP_INPUT,
    _dp_parents_scalar,
    _dp_parents_vectorized,
    _encode_bitmasks,
    brute_force_order,
    compute_order_dp,
    compute_order_dp_reference,
    expected_cost,
)


def _random_instance(rng: random.Random, n_queries: int):
    n_indexes = rng.randint(1, 2 * n_queries)
    index_names = [f"i{k}" for k in range(n_indexes)]
    costs = {name: rng.uniform(0.05, 30.0) for name in index_names}
    index_map = {
        f"q{q}": frozenset(
            rng.sample(index_names, rng.randint(0, min(5, n_indexes)))
        )
        for q in range(n_queries)
    }
    return list(index_map), index_map, costs


@st.composite
def bitmask_instance(draw, max_queries=8):
    n_queries = draw(st.integers(min_value=1, max_value=max_queries))
    n_indexes = draw(st.integers(min_value=1, max_value=6))
    index_names = [f"i{k}" for k in range(n_indexes)]
    costs = {
        name: draw(st.floats(0.05, 25.0, allow_nan=False))
        for name in index_names
    }
    index_map = {
        f"q{q}": frozenset(
            draw(st.sets(st.sampled_from(index_names), max_size=n_indexes))
        )
        for q in range(n_queries)
    }
    return list(index_map), index_map, costs


class TestBitmaskMatchesOracle:
    @settings(max_examples=80, deadline=None)
    @given(bitmask_instance(max_queries=6))
    def test_cost_equals_brute_force_small(self, instance):
        queries, index_map, costs = instance
        dp = compute_order_dp(queries, index_map, costs)
        oracle = brute_force_order(queries, index_map, costs)
        assert expected_cost(dp, index_map, costs) == pytest.approx(
            expected_cost(oracle, index_map, costs)
        )

    def test_cost_equals_brute_force_randomized_n8(self):
        rng = random.Random(1234)
        for _ in range(15):
            queries, index_map, costs = _random_instance(rng, 8)
            dp = compute_order_dp(queries, index_map, costs)
            oracle = brute_force_order(queries, index_map, costs)
            assert expected_cost(dp, index_map, costs) == pytest.approx(
                expected_cost(oracle, index_map, costs)
            )


class TestBitmaskMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(bitmask_instance(max_queries=8))
    def test_order_identical_to_reference(self, instance):
        queries, index_map, costs = instance
        assert compute_order_dp(
            queries, index_map, costs
        ) == compute_order_dp_reference(queries, index_map, costs)

    @pytest.mark.parametrize("n_queries", [9, 11, MAX_DP_INPUT])
    def test_order_identical_to_reference_large(self, n_queries):
        """Beyond brute-force reach, the rewrite must *be* the spec."""
        rng = random.Random(42 + n_queries)
        for _ in range(5):
            queries, index_map, costs = _random_instance(rng, n_queries)
            assert compute_order_dp(
                queries, index_map, costs
            ) == compute_order_dp_reference(queries, index_map, costs)


class TestScalarVectorizedAgreement:
    @pytest.mark.parametrize("n_queries", [9, 10, 12])
    def test_parents_bit_identical(self, n_queries):
        pytest.importorskip("numpy")
        rng = random.Random(7 * n_queries)
        for _ in range(4):
            queries, index_map, costs = _random_instance(rng, n_queries)
            qmasks, bit_costs = _encode_bitmasks(queries, index_map, costs)
            assert len(bit_costs) <= 63
            scalar = _dp_parents_scalar(n_queries, qmasks, bit_costs)
            vectorized = _dp_parents_vectorized(n_queries, qmasks, bit_costs)
            assert scalar == vectorized
