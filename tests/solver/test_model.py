"""ILP model container tests."""

import pytest

from repro.errors import SolverError
from repro.solver import ILPModel, LinearConstraint


class TestModelConstruction:
    def test_add_variables(self):
        model = ILPModel()
        assert model.add_variable("a", 1.0) == 0
        assert model.add_variable("b", 2.0) == 1
        assert model.variable_count == 2

    def test_duplicate_variable_rejected(self):
        model = ILPModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_name_index_round_trip(self):
        model = ILPModel()
        index = model.add_variable("thing")
        assert model.name_of(index) == "thing"
        assert model.index_of("thing") == index

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError):
            ILPModel().index_of("ghost")

    def test_set_objective(self):
        model = ILPModel()
        index = model.add_variable("x")
        model.set_objective(index, 5.0)
        assert model.objective == [5.0]

    def test_empty_constraint_rejected(self):
        with pytest.raises(SolverError):
            ILPModel().add_constraint({}, 1.0)

    def test_constraint_on_unknown_variable_rejected(self):
        model = ILPModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_constraint({5: 1.0}, 1.0)


class TestFeasibility:
    def make_model(self):
        model = ILPModel()
        a = model.add_variable("a", 3.0)
        b = model.add_variable("b", 2.0)
        model.add_constraint({a: 1.0, b: 1.0}, 1.0)  # at most one
        return model

    def test_feasible_assignments(self):
        model = self.make_model()
        assert model.is_feasible([0, 0])
        assert model.is_feasible([1, 0])
        assert not model.is_feasible([1, 1])

    def test_wrong_length_infeasible(self):
        assert not self.make_model().is_feasible([1])

    def test_non_binary_infeasible(self):
        assert not self.make_model().is_feasible([2, 0])

    def test_objective_value(self):
        model = self.make_model()
        assert model.objective_value([1, 0]) == 3.0
        assert model.objective_value([1, 1]) == 5.0

    def test_constraint_satisfied_helper(self):
        constraint = LinearConstraint({0: 2.0}, 1.0)
        assert constraint.satisfied([0])
        assert not constraint.satisfied([1])


class TestSolveDispatch:
    def test_unknown_method_rejected(self):
        model = ILPModel()
        model.add_variable("x", 1.0)
        with pytest.raises(SolverError):
            model.solve("quantum")

    def test_empty_model_solves_trivially(self):
        solution = ILPModel().solve()
        assert solution.values == []
        assert solution.objective == 0.0

    def test_selected_indices(self):
        model = ILPModel()
        model.add_variable("a", 1.0)
        model.add_variable("b", -1.0)
        solution = model.solve()
        assert solution.selected() == [0]
