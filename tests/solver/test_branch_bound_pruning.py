"""Branch-and-bound pruning devices vs the scipy backend.

The presolve fixings, fractional-knapsack bound, and dominance pruning
must never change the optimum -- only the node count.  These instances
are deliberately mixed-sign (negative objectives, negative coefficients)
to exercise every presolve/pruning branch, and larger than the
exhaustive-search tests can afford.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import ILPModel, solve_with_branch_bound, solve_with_scipy
from repro.solver.branch_bound import _presolve_fixings


@st.composite
def mixed_sign_ilp(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    model = ILPModel()
    for i in range(n):
        model.add_variable(
            f"x{i}", draw(st.floats(-8.0, 12.0, allow_nan=False))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        size = draw(st.integers(min_value=1, max_value=n))
        members = draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        coefficients = {
            index: draw(st.floats(-4.0, 9.0, allow_nan=False))
            for index in members
        }
        model.add_constraint(coefficients, draw(st.floats(0.0, 15.0)))
    return model


class TestAgainstScipy:
    @settings(max_examples=80, deadline=None)
    @given(mixed_sign_ilp())
    def test_mixed_sign_objective_matches(self, model):
        ours = solve_with_branch_bound(model)
        reference = solve_with_scipy(model)
        assert model.is_feasible(ours.values)
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)

    def test_large_random_knapsacks_match(self):
        rng = random.Random(7)
        for n in (30, 60, 90):
            model = ILPModel()
            for i in range(n):
                model.add_variable(f"x{i}", rng.uniform(1.0, 10.0))
            model.add_constraint(
                {i: rng.uniform(1.0, 6.0) for i in range(n)}, n * 0.6
            )
            ours = solve_with_branch_bound(model)
            reference = solve_with_scipy(model)
            assert ours.objective == pytest.approx(
                reference.objective, abs=1e-6
            )

    def test_multi_constraint_instances_match(self):
        rng = random.Random(11)
        for _ in range(20):
            n = rng.randint(5, 18)
            model = ILPModel()
            for i in range(n):
                model.add_variable(f"x{i}", rng.uniform(-5.0, 10.0))
            for _ in range(rng.randint(1, 4)):
                members = rng.sample(range(n), rng.randint(1, n))
                model.add_constraint(
                    {i: rng.uniform(-3.0, 8.0) for i in members},
                    rng.uniform(0.0, 12.0),
                )
            ours = solve_with_branch_bound(model)
            reference = solve_with_scipy(model)
            assert ours.objective == pytest.approx(
                reference.objective, abs=1e-6
            )


class TestPresolve:
    def test_fixes_useless_and_free_variables(self):
        model = ILPModel()
        useless = model.add_variable("useless", -2.0)  # obj<=0, coeff>=0
        free_win = model.add_variable("free_win", 3.0)  # obj>0, coeff<=0
        contested = model.add_variable("contested", 5.0)
        model.add_constraint({useless: 2.0, free_win: -1.0, contested: 4.0}, 4.0)
        fixings = _presolve_fixings(model)
        assert fixings[useless] == 0
        assert fixings[free_win] == 1
        assert contested not in fixings
        solution = solve_with_branch_bound(model)
        assert solution.values == [0, 1, 1]
        assert solution.objective == pytest.approx(8.0)

    def test_unconstrained_variables_presolve_entirely(self):
        model = ILPModel()
        model.add_variable("gain", 4.0)
        model.add_variable("loss", -1.5)
        fixings = _presolve_fixings(model)
        assert fixings == {0: 1, 1: 0}
        assert solve_with_branch_bound(model).objective == pytest.approx(4.0)


class TestDominance:
    def test_dominated_heavy_item_never_chosen_over_dominator(self):
        # Item 0 dominates item 1: more value, less weight.  With room
        # for one item only, the optimum takes the dominator.
        model = ILPModel()
        a = model.add_variable("a", 10.0)
        b = model.add_variable("b", 6.0)
        model.add_constraint({a: 2.0, b: 3.0}, 3.0)
        solution = solve_with_branch_bound(model)
        assert solution.values == [1, 0]

    def test_equal_items_tie_break_is_consistent(self):
        model = ILPModel()
        a = model.add_variable("a", 5.0)
        b = model.add_variable("b", 5.0)
        model.add_constraint({a: 2.0, b: 2.0}, 2.0)
        solution = solve_with_branch_bound(model)
        assert solution.objective == pytest.approx(5.0)
        assert sum(solution.values) == 1
