"""Backend correctness: scipy vs branch-and-bound vs exhaustive search."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    ILPModel,
    solve_greedy,
    solve_with_branch_bound,
    solve_with_scipy,
)


def exhaustive_optimum(model: ILPModel) -> float:
    """Brute-force optimal objective over all binary assignments."""
    best = 0.0
    n = model.variable_count
    for bits in itertools.product((0, 1), repeat=n):
        values = list(bits)
        if model.is_feasible(values):
            best = max(best, model.objective_value(values))
    return best


def knapsack_model(weights, values, capacity) -> ILPModel:
    model = ILPModel()
    indices = [
        model.add_variable(f"x{i}", value) for i, value in enumerate(values)
    ]
    model.add_constraint(
        {index: float(weights[i]) for i, index in enumerate(indices)},
        float(capacity),
    )
    return model


class TestKnownInstances:
    def test_simple_knapsack(self):
        model = knapsack_model([2, 3, 4], [3.0, 4.0, 5.0], 5)
        for solve in (solve_with_scipy, solve_with_branch_bound):
            solution = solve(model)
            assert solution.objective == pytest.approx(7.0)  # items 0 and 1

    def test_all_fit(self):
        model = knapsack_model([1, 1], [1.0, 1.0], 10)
        assert solve_with_branch_bound(model).objective == pytest.approx(2.0)

    def test_nothing_fits(self):
        model = knapsack_model([10, 10], [5.0, 5.0], 1)
        assert solve_with_scipy(model).objective == 0.0
        assert solve_with_branch_bound(model).objective == 0.0

    def test_negative_objective_left_unselected(self):
        model = ILPModel()
        model.add_variable("bad", -5.0)
        model.add_variable("good", 2.0)
        for solve in (solve_with_scipy, solve_with_branch_bound, solve_greedy):
            solution = solve(model)
            assert solution.values == [0, 1]

    def test_dependency_constraint(self):
        # y requires x: y - x <= 0; only y has value, x has cost via budget.
        model = ILPModel()
        x = model.add_variable("x", 0.0)
        y = model.add_variable("y", 10.0)
        model.add_constraint({y: 1.0, x: -1.0}, 0.0)
        model.add_constraint({x: 3.0, y: 1.0}, 4.0)
        for solve in (solve_with_scipy, solve_with_branch_bound):
            solution = solve(model)
            assert solution.values == [1, 1]

    def test_dependency_with_tight_budget_blocks_both(self):
        model = ILPModel()
        x = model.add_variable("x", 0.0)
        y = model.add_variable("y", 10.0)
        model.add_constraint({y: 1.0, x: -1.0}, 0.0)
        model.add_constraint({x: 3.0, y: 1.0}, 2.0)
        for solve in (solve_with_scipy, solve_with_branch_bound):
            assert solve(model).objective == 0.0

    def test_tiny_coefficient_respects_model_tolerance(self):
        # Hypothesis-found divergence: a 2^-23 coefficient against a 0.0
        # bound makes x1=1 infeasible under the model's 1e-9 tolerance,
        # yet HiGHS's default 1e-6 MIP tolerance accepted it and
        # reported objective 1.0.  Both backends must agree on 0.0 --
        # and both answers must be feasible by the model's own test.
        model = ILPModel()
        x0 = model.add_variable("x0", 0.0)
        x1 = model.add_variable("x1", 1.0)
        model.add_constraint({x0: 0.0, x1: 1.192092896e-07}, 0.0)
        for solve in (solve_with_scipy, solve_with_branch_bound):
            solution = solve(model)
            assert model.is_feasible(solution.values)
            assert solution.objective == pytest.approx(0.0, abs=1e-9)


class TestGreedy:
    def test_greedy_feasible(self):
        model = knapsack_model([5, 4, 3], [10.0, 40.0, 30.0], 7)
        solution = solve_greedy(model)
        assert model.is_feasible(solution.values)
        assert not solution.optimal

    def test_greedy_reasonable_quality(self):
        model = knapsack_model([2, 3, 4], [3.0, 4.0, 5.0], 5)
        solution = solve_greedy(model)
        assert solution.objective >= 5.0  # at least one good item


@st.composite
def random_knapsack(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    weights = draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
    values = draw(
        st.lists(st.floats(0.1, 50.0, allow_nan=False), min_size=n, max_size=n)
    )
    capacity = draw(st.integers(0, 60))
    return knapsack_model(weights, values, capacity)


@st.composite
def random_ilp(draw):
    """Knapsack plus random pairwise exclusion constraints."""
    model = draw(random_knapsack())
    n = model.variable_count
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=5,
        )
    )
    for a, b in pairs:
        if a != b:
            model.add_constraint({a: 1.0, b: 1.0}, 1.0)
    return model


class TestCrossBackendProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_ilp())
    def test_scipy_matches_exhaustive(self, model):
        assert solve_with_scipy(model).objective == pytest.approx(
            exhaustive_optimum(model), abs=1e-6
        )

    @settings(max_examples=60, deadline=None)
    @given(random_ilp())
    def test_branch_bound_matches_exhaustive(self, model):
        assert solve_with_branch_bound(model).objective == pytest.approx(
            exhaustive_optimum(model), abs=1e-6
        )

    @settings(max_examples=60, deadline=None)
    @given(random_ilp())
    def test_greedy_feasible_and_bounded(self, model):
        solution = solve_greedy(model)
        assert model.is_feasible(solution.values)
        assert solution.objective <= exhaustive_optimum(model) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(random_ilp())
    def test_solutions_reported_feasible(self, model):
        for solve in (solve_with_scipy, solve_with_branch_bound):
            solution = solve(model)
            assert model.is_feasible(solution.values)
