"""Quickstart: tune simulated PostgreSQL for TPC-H with lambda-Tune.

Run with::

    python examples/quickstart.py

The pipeline is the paper's Algorithm 1: build a compressed prompt from
the workload's join structure, sample k=5 configuration scripts from
the (simulated) LLM, and identify the best candidate with bounded
evaluation cost.
"""

from repro.core import LambdaTune, LambdaTuneOptions
from repro.db import PostgresEngine
from repro.llm import SimulatedLLM
from repro.workloads import tpch_workload


def main() -> None:
    workload = tpch_workload(scale_factor=1.0)
    engine = PostgresEngine(workload.catalog)

    default_time = sum(
        engine.estimate_seconds(query) for query in workload.queries
    )
    print(f"TPC-H SF1 with default settings: {default_time:.1f}s (simulated)")

    options = LambdaTuneOptions(
        num_configs=5,       # k LLM samples (paper default)
        token_budget=512,    # prompt budget for the workload block
        initial_timeout=10,  # first-round timeout t (paper default)
        alpha=10,            # geometric timeout factor (paper default)
    )
    tuner = LambdaTune(engine, SimulatedLLM(), options)
    result = tuner.tune(list(workload.queries))

    print(f"\nlambda-Tune best configuration: {result.best_config.name}")
    print(f"  workload time: {result.best_time:.1f}s "
          f"({default_time / result.best_time:.1f}x speedup)")
    print(f"  total tuning time: {result.tuning_seconds:.0f}s (virtual)")
    print(f"  prompt tokens: {result.extras['prompt_tokens']}")
    print(f"  selection rounds: {result.extras['rounds']}")

    print("\nRecommended parameter settings:")
    for name, value in sorted(result.best_config.settings.items()):
        print(f"  {name} = {value}")

    print("\nRecommended indexes:")
    for index in result.best_config.indexes:
        print(f"  {index.name} ON {index.table} ({', '.join(index.columns)})")


if __name__ == "__main__":
    main()
