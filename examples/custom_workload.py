"""Tune a user-defined schema and workload.

Shows the full public API surface for bringing your own database:
catalog construction, SQL analysis, hardware description, prompt
inspection, and tuning -- the path a downstream user follows to apply
lambda-Tune to their own (simulated) system.

Run with::

    python examples/custom_workload.py
"""

from repro.core import LambdaTune, LambdaTuneOptions
from repro.db import Catalog, Column, HardwareSpec, PostgresEngine
from repro.llm import SimulatedLLM
from repro.workloads.base import Query, Workload


def build_catalog() -> Catalog:
    """A small web-analytics star schema."""
    catalog = Catalog("webshop")
    catalog.add_table("customers", 2_000_000, [
        Column("customer_id", 4, is_primary_key=True),
        Column("signup_date", 4, 1_500),
        Column("segment", 8, 12),
        Column("region", 8, 40),
    ])
    catalog.add_table("products", 80_000, [
        Column("product_id", 4, is_primary_key=True),
        Column("category", 12, 60),
        Column("price", 8, 20_000),
    ])
    catalog.add_table("orders2", 30_000_000, [
        Column("order_id", 4, is_primary_key=True),
        Column("customer_ref", 4, 2_000_000),
        Column("product_ref", 4, 80_000),
        Column("order_date", 4, 1_500),
        Column("quantity", 4, 20),
        Column("amount", 8, 500_000),
    ])
    return catalog


QUERIES = [
    ("revenue_by_segment", """
        SELECT c.segment, sum(o.amount)
        FROM customers c, orders2 o
        WHERE c.customer_id = o.customer_ref
          AND o.order_date > 1200
        GROUP BY c.segment
        ORDER BY c.segment
    """),
    ("category_performance", """
        SELECT p.category, count(*), avg(o.amount)
        FROM products p, orders2 o
        WHERE p.product_id = o.product_ref AND p.price > 100
        GROUP BY p.category
    """),
    ("regional_top_products", """
        SELECT c.region, p.category, sum(o.quantity) AS units
        FROM customers c, orders2 o, products p
        WHERE c.customer_id = o.customer_ref
          AND p.product_id = o.product_ref
          AND c.segment = 'premium'
        GROUP BY c.region, p.category
        ORDER BY units DESC
        LIMIT 50
    """),
]


def main() -> None:
    catalog = build_catalog()
    queries = [Query.from_sql(name, sql, catalog) for name, sql in QUERIES]
    workload = Workload(name="webshop", catalog=catalog, queries=queries)

    hardware = HardwareSpec(memory_gb=32, cores=16)
    engine = PostgresEngine(catalog, hardware)

    default_time = sum(engine.estimate_seconds(q) for q in workload.queries)
    print(f"Default workload time: {default_time:.2f}s")

    tuner = LambdaTune(
        engine,
        SimulatedLLM(),
        LambdaTuneOptions(token_budget=256, initial_timeout=1.0, alpha=2.0),
    )

    # Inspect the generated prompt before tuning.
    prompt = tuner.generate_prompt(list(workload.queries))
    print("\n--- prompt sent to the LLM " + "-" * 30)
    print(prompt.text)
    print("-" * 57)
    print(f"prompt tokens: {prompt.tokens}, join-cost coverage: "
          f"{prompt.compression.coverage:.0%}\n")

    result = tuner.tune(list(workload.queries))
    print(f"Best configuration: {result.best_time:.2f}s "
          f"({default_time / result.best_time:.1f}x speedup)")
    for name, value in sorted(result.best_config.settings.items()):
        print(f"  {name} = {value}")
    for index in result.best_config.indexes:
        print(f"  CREATE INDEX ON {index.table} ({', '.join(index.columns)})")


if __name__ == "__main__":
    main()
