"""Inspect how tuning changes the simulated optimizer's plans.

Run with::

    python examples/inspect_plans.py

Shows EXPLAIN-style plans for a TPC-H query under the default
configuration, under lambda-Tune's recommended parameters, and with its
recommended indexes -- making the coupling between
``random_page_cost`` / ``effective_cache_size`` and index usage
(paper §6.3) directly visible.
"""

from repro.core import LambdaTune, LambdaTuneOptions
from repro.db import PostgresEngine
from repro.db.explain import format_plan
from repro.llm import SimulatedLLM
from repro.workloads import tpch_workload


def main() -> None:
    workload = tpch_workload(1.0)
    query = workload.query("q3")

    engine = PostgresEngine(workload.catalog)
    print("=== q3 under default configuration ===")
    print(format_plan(engine, query))
    print(f"simulated time: {engine.estimate_seconds(query):.2f}s\n")

    tuner = LambdaTune(
        PostgresEngine(workload.catalog),
        SimulatedLLM(),
        LambdaTuneOptions(initial_timeout=1.0, alpha=2.0),
    )
    result = tuner.tune(list(workload.queries))
    config = result.best_config

    engine.set_many(config.settings)
    print("=== q3 with lambda-Tune parameters (no indexes yet) ===")
    print(format_plan(engine, query))
    print(f"simulated time: {engine.estimate_seconds(query):.2f}s\n")

    for index in config.indexes:
        engine.create_index(index)
    print("=== q3 with parameters + recommended indexes ===")
    print(format_plan(engine, query))
    print(f"simulated time: {engine.estimate_seconds(query):.2f}s")


if __name__ == "__main__":
    main()
