"""Run the paper's complete evaluation and save all artifacts.

Regenerates Table 3, Table 4, Figures 3/4 (from the same scenario runs,
so nothing is computed twice), Table 5, and Figures 5-8, writing both
text summaries and JSON payloads to ``results/``.

Run with::

    python examples/full_evaluation.py [--quick]

``--quick`` restricts to four scenarios with small budgets (minutes);
the default runs all 14 scenarios of Table 3.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.bench import figures, tables
from repro.bench.reporting import save_json
from repro.bench.runner import run_scenario
from repro.bench.scenarios import SCENARIOS, Scenario

QUICK_SCENARIOS = [
    Scenario("tpch-sf1", "postgres", True),
    Scenario("tpch-sf1", "mysql", True),
    Scenario("tpch-sf1", "postgres", False),
    Scenario("tpcds-sf1", "postgres", False),
]


def main() -> None:
    quick = "--quick" in sys.argv
    out = Path("results")
    scenarios = QUICK_SCENARIOS if quick else SCENARIOS
    budget = 600.0 if quick else None

    started = time.perf_counter()

    # -- Table 3 + Figures 3/4 share scenario runs ---------------------------
    print(f"Running {len(scenarios)} scenarios ...", flush=True)
    runs = {}
    table = tables.Table3()
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for scenario in scenarios:
        t0 = time.perf_counter()
        run = run_scenario(scenario, budget_seconds=budget)
        runs[scenario.key] = run
        scaled = run.scaled_costs()
        row = {
            "benchmark": scenario.label.rsplit(" ", 1)[0],
            "dbms": "PG" if scenario.system == "postgres" else "MS",
            "indexes": "Yes" if scenario.initial_indexes else "No",
        }
        for name, value in scaled.items():
            row[name] = value
            import math

            if math.isfinite(value):
                sums[name] = sums.get(name, 0.0) + value
                counts[name] = counts.get(name, 0) + 1
        table.rows.append(row)
        print(f"  {scenario.key}: done in {time.perf_counter() - t0:.0f}s "
              f"(default {run.default_time:.0f}s virtual)", flush=True)
    table.averages = {
        name: sums[name] / counts[name] for name in sums if counts.get(name)
    }

    print("\n== Table 3 ==")
    print(table.to_text())
    save_json(out / "table3.json",
              {"rows": table.rows, "averages": table.averages})

    figure3 = figures.convergence_figure(
        [s for s in scenarios if s.initial_indexes], runs=runs
    )
    figure4 = figures.convergence_figure(
        [s for s in scenarios if not s.initial_indexes], runs=runs
    )
    save_json(out / "figure3.json", figure3.panels)
    save_json(out / "figure4.json", figure4.panels)
    print("\n== Figure 3 ==")
    print(figure3.to_text())
    print("\n== Figure 4 ==")
    print(figure4.to_text())

    # -- Table 4 (reuses Postgres TPC-H runs where available) ----------------
    table4 = tables.table4(runs=runs, budget_seconds=budget)
    print("\n== Table 4 ==")
    print(table4.to_text())
    save_json(out / "table4.json", {"rows": table4.rows})

    # -- Table 5 ---------------------------------------------------------------
    table5 = tables.table5()
    print("\n== Table 5 ==")
    print(table5.to_text())
    save_json(out / "table5.json", {
        "parameters": table5.parameters,
        "indexes": table5.indexed_columns,
        "best_time": table5.best_time,
    })

    # -- Figures 5-8 --------------------------------------------------------------
    figure5 = figures.figure5()
    print("\n== Figure 5 ==")
    print(figure5.to_text())
    save_json(out / "figure5.json", figure5.per_query)

    ablation_workload = "tpch-sf1" if quick else "job"
    figure6 = figures.figure6(workload_name=ablation_workload)
    print("\n== Figure 6 ==")
    print(figure6.to_text())
    save_json(out / "figure6.json", {
        "traces": figure6.traces,
        "time_to_first_config": figure6.time_to_first_config,
        "best_time": figure6.best_time,
    })

    figure7 = figures.figure7(workload_name=ablation_workload)
    print("\n== Figure 7 ==")
    print(figure7.to_text())
    save_json(out / "figure7.json", figure7.points)

    names = ("tpch-sf1", "tpcds-sf1") if quick else (
        "tpch-sf1", "tpch-sf10", "tpcds-sf1", "job"
    )
    figure8 = figures.figure8(workload_names=names)
    print("\n== Figure 8 ==")
    print(figure8.to_text())
    save_json(out / "figure8.json", figure8.rows)

    print(f"\nAll artifacts in {out}/ "
          f"({time.perf_counter() - started:.0f}s wall time)")


if __name__ == "__main__":
    main()
