"""Compare lambda-Tune against every baseline on one scenario.

Run with::

    python examples/compare_tuners.py [workload] [system]

e.g. ``python examples/compare_tuners.py tpch-sf1 postgres``.  This is
one row of the paper's Table 3, printed with trace summaries.
"""

import sys

from repro.bench.reporting import format_table
from repro.bench.runner import run_scenario
from repro.bench.scenarios import Scenario
from repro.core.tuner import LambdaTuneOptions


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "tpch-sf1"
    system = sys.argv[2] if len(sys.argv) > 2 else "postgres"

    scenario = Scenario(workload_name, system, initial_indexes=False)
    print(f"Scenario: {scenario.label}, tuning scope: parameters + indexes")

    run = run_scenario(
        scenario,
        budget_seconds=800.0,
        lambda_options=LambdaTuneOptions(initial_timeout=1.0, alpha=2.0),
    )
    print(f"Default workload time: {run.default_time:.1f}s\n")

    scaled = run.scaled_costs()
    rows = []
    for name, result in sorted(
        run.results.items(), key=lambda item: item[1].best_time
    ):
        first_done = result.trace[0].time if result.trace else float("inf")
        rows.append([
            name,
            result.best_time,
            scaled[name],
            result.configs_evaluated,
            first_done,
        ])
    print(
        format_table(
            ["tuner", "best time (s)", "scaled", "configs", "first result (s)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
