"""Ablation benches for design choices called out in DESIGN.md.

These go beyond the paper's Figure 6: they isolate the timeout
progression scheme, the scheduler policy, and the ILP snippet selector
against simpler alternatives.
"""

import math

import pytest

from repro.core.prompt.ilp import select_snippets
from repro.core.scheduler import compute_order_dp, expected_cost, greedy_order
from repro.db.postgres import PostgresEngine
from repro.sql.analyzer import JoinCondition
from repro.workloads import load_workload

pytestmark = pytest.mark.slow


class TestTimeoutProgression:
    """Geometric vs linear timeout progressions (Theorem 4.3 motivates
    the geometric choice: wasted prior-round work stays proportional)."""

    @staticmethod
    def rounds_until(total_needed: float, timeouts) -> tuple[int, float]:
        spent = 0.0
        for round_number, timeout in enumerate(timeouts, start=1):
            spent += min(timeout, total_needed)
            if timeout >= total_needed:
                return round_number, spent
        return -1, spent

    def test_geometric_bounds_waste(self, benchmark):
        def run():
            total = 500.0
            geometric = [1.0 * (2.0**k) for k in range(20)]
            linear = [1.0 * (k + 1) for k in range(4000)]
            g_rounds, g_spent = self.rounds_until(total, geometric)
            l_rounds, l_spent = self.rounds_until(total, linear)
            return g_rounds, g_spent, l_rounds, l_spent

        g_rounds, g_spent, l_rounds, l_spent = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(f"\ngeometric: {g_rounds} rounds, {g_spent:.0f}s total")
        print(f"linear:    {l_rounds} rounds, {l_spent:.0f}s total")
        # Geometric: total work <= 3x the final round (Theorem 4.3).
        assert g_spent <= 3 * 500.0
        # Linear wastes quadratically more.
        assert l_spent > 10 * g_spent


class TestSchedulerPolicy:
    """DP vs greedy vs arbitrary order on JOB-like index dependencies."""

    def test_dp_beats_alternatives(self, benchmark):
        workload = load_workload("job")
        engine = PostgresEngine(workload.catalog)
        columns = sorted(
            {c for cond in workload.join_conditions for c in cond.columns}
        )[:10]
        from repro.db.indexes import Index

        index_cost = {}
        index_map = {}
        indexes = []
        for qualified in columns:
            table, column = qualified.rsplit(".", 1)
            index = Index(table, (column,))
            indexes.append(index)
            index_cost[index] = engine.index_creation_seconds(index)
        queries = [query.name for query in workload.queries[:12]]
        for query in workload.queries[:12]:
            relevant = frozenset(
                index
                for index in indexes
                if any(
                    c in query.info.referenced_columns
                    for c in index.qualified_columns()
                )
            )
            index_map[query.name] = relevant

        def run():
            dp = expected_cost(
                compute_order_dp(queries, index_map, index_cost),
                index_map,
                index_cost,
            )
            greedy = expected_cost(
                greedy_order(queries, index_map, index_cost),
                index_map,
                index_cost,
            )
            arbitrary = expected_cost(queries, index_map, index_cost)
            return dp, greedy, arbitrary

        dp, greedy, arbitrary = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nexpected index cost -- dp: {dp:.1f}, greedy: {greedy:.1f}, "
              f"arbitrary: {arbitrary:.1f}")
        assert dp <= greedy + 1e-9
        assert dp <= arbitrary + 1e-9


class TestSnippetSelectorQuality:
    """Exact ILP vs greedy heuristic under tight token budgets."""

    def test_ilp_beats_greedy_on_tpch_values(self, benchmark):
        workload = load_workload("tpch-sf1")
        engine = PostgresEngine(workload.catalog)
        from repro.db.explain import join_condition_values

        values = join_condition_values(engine, list(workload.queries))

        def run():
            results = {}
            for budget in (40, 60, 80):
                exact = select_snippets(values, budget, method="auto")
                heuristic = select_snippets(values, budget, method="greedy")
                results[budget] = (exact.value, heuristic.value)
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        wins = 0
        for budget, (exact, heuristic) in results.items():
            print(f"budget {budget}: ilp={exact:.0f} greedy={heuristic:.0f}")
            assert exact >= heuristic - 1e-9
            if exact > heuristic + 1e-9:
                wins += 1
        assert wins >= 1  # the exact solver must strictly win somewhere


class TestClusteringCapSensitivity:
    """Sensitivity of the scheduling quality to the DP input cap."""

    def test_cap_thirteen_close_to_larger_caps(self, benchmark):
        from repro.core.clustering import cluster_queries
        from repro.core.evaluator import ConfigurationEvaluator
        from repro.core.config import Configuration
        from repro.db.indexes import Index

        workload = load_workload("job")
        engine = PostgresEngine(workload.catalog)
        columns = sorted(
            {c for cond in workload.join_conditions for c in cond.columns}
        )[:16]
        indexes = []
        for qualified in columns:
            table, column = qualified.rsplit(".", 1)
            indexes.append(Index(table, (column,)))
        config = Configuration("c", indexes=indexes)
        evaluator = ConfigurationEvaluator(engine)
        index_map = evaluator.query_index_map(list(workload.queries), config)
        index_cost = {
            index: engine.index_creation_seconds(index) for index in indexes
        }

        def cost_at_cap(cap: int) -> float:
            clusters = cluster_queries(
                [q.name for q in workload.queries], index_map, max_clusters=cap
            )
            handles = list(range(len(clusters)))
            cluster_map = {h: clusters[h].indexes for h in handles}
            if len(handles) <= 13:
                order = compute_order_dp(handles, cluster_map, index_cost)
            else:
                order = greedy_order(handles, cluster_map, index_cost)
            return expected_cost(order, cluster_map, index_cost)

        def run():
            return {cap: cost_at_cap(cap) for cap in (4, 8, 13)}

        costs = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nexpected cost by cluster cap: "
              + ", ".join(f"{cap}->{cost:.1f}" for cap, cost in costs.items()))
        assert all(math.isfinite(cost) for cost in costs.values())
        # Finer clustering never hurts the modelled cost by much.
        assert costs[13] <= costs[4] * 1.05
