"""Regenerates Figure 6: the ablation study (JOB, Postgres, no indexes).

Paper shapes:
- disabling the adaptive timeout slows convergence without degrading
  final quality (§6.4.1),
- disabling the query scheduler delays the first fully-evaluated
  configuration without degrading quality (§6.4.2),
- obfuscating identifiers changes virtually nothing (§6.4.3),
- disabling the compressor (raw SQL prompts) hurts both convergence and
  final quality (§6.4.4).

A historical seed-time failure of the 6.4.1 assertion turned out to be
``PYTHONHASHSEED`` sensitivity, not a selector bug: the planner's
join-order start pick, the mock LLM's join-graph insertion order and the
scheduler's marginal-cost summation all iterated sets, so timings (and
hence the adaptive-timeout trajectory) varied per hash seed.  Those
iteration orders are now canonical and the adaptive-timeout bookkeeping
(cumulative ``index_time`` as a conservative per-round rebuild bound) is
correct as written; the test passes under any hash seed, guarded by
``tests/integration/test_determinism.py``.
"""

import pytest

from repro.bench.figures import figure6

pytestmark = pytest.mark.slow


def test_figure6(benchmark):
    figure = benchmark.pedantic(
        lambda: figure6(seed=0, workload_name="job"), rounds=1, iterations=1
    )
    print("\n== Figure 6 (ablation study, JOB PG) ==")
    print(figure.to_text())

    first = figure.time_to_first_config
    best = figure.best_time

    # 6.4.1 adaptive timeout: slower convergence, equal quality.
    assert first["no-adaptive-timeout"] > first["default"] * 1.5
    assert best["no-adaptive-timeout"] == pytest.approx(best["default"], rel=0.25)

    # 6.4.2 scheduler: slower first completion, equal quality.
    assert first["no-scheduler"] > first["default"] * 1.5
    assert best["no-scheduler"] == pytest.approx(best["default"], rel=0.25)

    # 6.4.3 obfuscation: virtually equivalent.
    assert best["obfuscated"] == pytest.approx(best["default"], rel=0.20)

    # 6.4.4 compressor: raw SQL is clearly worse.
    assert best["no-compressor"] > best["default"] * 1.5
