"""Regenerates Figure 8: index recommendation tools compared.

Paper shapes: lambda-Tune's indexes clearly beat the no-index default;
the specialized advisors (Dexter, DB2) are at least as good as
lambda-Tune on most benchmarks.
"""

import pytest

from repro.bench.figures import figure8

pytestmark = pytest.mark.slow


def test_figure8(benchmark):
    figure = benchmark.pedantic(
        lambda: figure8(seed=0, workload_names=("tpch-sf1", "tpcds-sf1", "job")),
        rounds=1,
        iterations=1,
    )
    print("\n== Figure 8 (index recommendation comparison) ==")
    print(figure.to_text())

    for row in figure.rows:
        assert row["lambda-tune"] < row["no_indexes"]
        assert row["dexter"] <= row["no_indexes"]
        assert row["db2advis"] <= row["no_indexes"]

    # On the join-heavy benchmarks the specialized tools keep up with or
    # beat lambda-Tune (paper: lambda-Tune wins only on TPC-DS).
    tpch_row = next(r for r in figure.rows if r["benchmark"] == "tpch-sf1")
    assert min(tpch_row["dexter"], tpch_row["db2advis"]) <= tpch_row["lambda-tune"] * 1.3
