"""Regenerates Figure 3: convergence under pure parameter tuning
(default PK/FK indexes present).

Paper shape: lambda-Tune's curve starts early and sits at or near the
bottom; sampled-search baselines need longer to reach comparable quality.
"""

import pytest

import math

from repro.bench.figures import convergence_figure
from repro.bench.scenarios import Scenario

pytestmark = pytest.mark.slow


def test_figure3(benchmark, quick_budget, quick_options):
    scenarios = [
        Scenario("tpch-sf1", "postgres", True),
        Scenario("tpch-sf1", "mysql", True),
    ]

    def run():
        from repro.bench.runner import run_scenario

        runs = {
            scenario.key: run_scenario(
                scenario,
                budget_seconds=quick_budget,
                seed=0,
                lambda_options=quick_options,
            )
            for scenario in scenarios
        }
        return convergence_figure(scenarios, runs=runs), runs

    figure, runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== Figure 3 (parameter tuning convergence) ==")
    print(figure.to_text())

    for scenario in scenarios:
        run = runs[scenario.key]
        lt = run.results["lambda-tune"]
        assert lt.trace, scenario.key
        assert math.isfinite(lt.best_time)
        # Near-optimal at the end: within 1.5x of the scenario best.
        assert lt.best_time <= run.best_overall() * 1.5
