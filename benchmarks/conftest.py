"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (quick budgets, representative scenario subset) so the
whole suite finishes in minutes.  ``lambda-tune-bench --scale full``
runs the complete protocol.
"""

from __future__ import annotations

import pytest

from repro.core.tuner import LambdaTuneOptions

#: Tuning budget per scenario for benchmark runs (virtual seconds).
QUICK_BUDGET = 400.0

#: lambda-Tune options scaled to the simulator's compressed time scale.
QUICK_OPTIONS = LambdaTuneOptions(
    token_budget=400, initial_timeout=0.5, alpha=2.0
)


@pytest.fixture(scope="session")
def quick_budget() -> float:
    return QUICK_BUDGET


@pytest.fixture(scope="session")
def quick_options() -> LambdaTuneOptions:
    return QUICK_OPTIONS
