"""Regenerates Table 3: scaled cost of the best configuration per tuner.

Paper shape to verify: lambda-Tune has the lowest (or tied-lowest)
average scaled cost and never degenerates badly; ParamTree is worst.
"""

import pytest

from repro.bench.scenarios import Scenario
from repro.bench.tables import table3

pytestmark = pytest.mark.slow

SCENARIOS = [
    Scenario("tpch-sf1", "postgres", True),
    Scenario("tpch-sf1", "mysql", True),
    Scenario("tpch-sf1", "postgres", False),
    Scenario("tpcds-sf1", "postgres", False),
]


def test_table3(benchmark, quick_budget):
    def run():
        return table3(SCENARIOS, budget_seconds=quick_budget, seed=0)

    table, _runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== Table 3 (scaled best-configuration cost) ==")
    print(table.to_text())

    averages = table.averages
    # Robustness shape: lambda-Tune competitive everywhere, ParamTree worst.
    assert averages["lambda-tune"] <= averages["paramtree"]
    assert averages["paramtree"] == max(averages.values())
    for row in table.rows:
        assert row["lambda-tune"] < 2.0
