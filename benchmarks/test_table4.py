"""Regenerates Table 4: configurations evaluated per baseline (Postgres).

Paper shape: lambda-Tune evaluates exactly the k=5 LLM configurations;
ParamTree 1; the search-based baselines one to two orders of magnitude
more at SF1.
"""

import pytest

from repro.bench.runner import run_scenario
from repro.bench.scenarios import Scenario
from repro.bench.tables import Table4

pytestmark = pytest.mark.slow


def test_table4(benchmark, quick_budget, quick_options):
    scenarios = [
        Scenario("tpch-sf1", "postgres", True),
        Scenario("tpch-sf1", "postgres", False),
    ]

    def run():
        table = Table4()
        for scenario in scenarios:
            result = run_scenario(
                scenario,
                budget_seconds=quick_budget,
                seed=0,
                lambda_options=quick_options,
            )
            row = {
                "scenario": scenario.label,
                "indexes": "Yes" if scenario.initial_indexes else "No",
            }
            for name, tuning_result in result.results.items():
                row[name] = tuning_result.configs_evaluated
            table.rows.append(row)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== Table 4 (configurations evaluated) ==")
    print(table.to_text())

    for row in table.rows:
        assert row["lambda-tune"] == 5
        assert row["paramtree"] == 1
        assert row["udo"] > 5 * row["lambda-tune"]
        assert row["db-bert"] > row["lambda-tune"]
        assert row["gptuner"] > row["lambda-tune"]
