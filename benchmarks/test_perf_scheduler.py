"""Perf-regression guards for the scheduler/evaluation hot path.

Microbenchmarks the bitmask DP core at representative cluster counts
(n = 8 / 11 / 13, the paper's §5.4 cap) on fixed randomized instances,
plus the full ``tune()`` pipeline on TPC-H and JOB with the memoization
layers on.  Run with ``--benchmark-json`` to feed ``scripts/bench.py``:

    PYTHONPATH=src python -m pytest benchmarks/test_perf_scheduler.py \
        -m slow --benchmark-json=bench.json

Each benchmark also asserts correctness (optimal-order equality with
the executable specification; identical results across runs), so a
perf run doubles as a regression test.
"""

import random

import pytest

import repro.db.planner as planner_module
from repro.core import LambdaTune
from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.scheduler import (
    compute_order_dp,
    compute_order_dp_reference,
)
from repro.db.postgres import PostgresEngine
from repro.llm import SimulatedLLM
from repro.workloads import job_workload, load_workload, tpch_workload

pytestmark = pytest.mark.slow


def _instance(n_queries: int, seed: int = 99):
    rng = random.Random(seed)
    index_names = [f"i{k}" for k in range(2 * n_queries)]
    costs = {name: rng.uniform(0.1, 30.0) for name in index_names}
    index_map = {
        f"q{q}": frozenset(rng.sample(index_names, rng.randint(1, 5)))
        for q in range(n_queries)
    }
    return list(index_map), index_map, costs


@pytest.mark.parametrize("n_queries", [8, 11, 13])
def test_dp_bitmask(benchmark, n_queries):
    queries, index_map, costs = _instance(n_queries)
    order = benchmark(compute_order_dp, queries, index_map, costs)
    assert order == compute_order_dp_reference(queries, index_map, costs)


@pytest.mark.parametrize("n_queries", [13])
def test_dp_reference(benchmark, n_queries):
    """The pre-rewrite formulation, benchmarked for the speedup ratio."""
    queries, index_map, costs = _instance(n_queries)
    order = benchmark(compute_order_dp_reference, queries, index_map, costs)
    assert order == compute_order_dp(queries, index_map, costs)


@pytest.mark.parametrize("workload_name", ["tpch", "job"])
def test_full_tune(benchmark, quick_options, workload_name):
    workload = tpch_workload() if workload_name == "tpch" else job_workload()

    def run():
        tuner = LambdaTune(
            PostgresEngine(workload.catalog),
            SimulatedLLM(),
            quick_options,
        )
        return tuner.tune(list(workload.queries))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    repeat = run()
    assert repeat.best_time == result.best_time
    assert repeat.tuning_seconds == result.tuning_seconds


def _evaluate_harness(n_queries: int):
    """A warm evaluator over an SF100 synthetic workload, plus a runner
    that performs one full ``evaluate`` pass (fresh meta each call)."""
    workload = load_workload(
        f"synthetic:queries={n_queries},scale=100,"
        "dimension_tables=8,max_joins=6,max_filters=4"
    )
    queries = list(workload.queries)
    evaluator = ConfigurationEvaluator(PostgresEngine(workload.catalog))
    config = Configuration(name="bench-probe", settings={"work_mem": "64MB"})

    def run():
        meta = ConfigMeta()
        evaluator.evaluate(config, queries, 1e12, meta)
        return meta

    return run


@pytest.mark.parametrize("n_queries", [500, 2000])
def test_evaluate_batched(benchmark, n_queries):
    """The segment-batched evaluate loop (``execute_many`` per segment)."""
    run = _evaluate_harness(n_queries)
    reference = run()  # warm plan/order/noise caches before timing
    meta = benchmark(run)
    assert meta.is_complete
    assert repr(meta.time) == repr(reference.time)
    assert meta.completed_queries == reference.completed_queries


@pytest.mark.parametrize("n_queries", [2000])
def test_evaluate_scalar_reference(benchmark, n_queries):
    """The retained per-query loop, benchmarked for the speedup ratio."""
    run = _evaluate_harness(n_queries)
    batched_reference = run()
    previous = planner_module.VECTORIZED_ENABLED
    planner_module.VECTORIZED_ENABLED = False
    try:
        run()  # warm the scalar path too
        meta = benchmark(run)
    finally:
        planner_module.VECTORIZED_ENABLED = previous
    assert meta.is_complete
    assert repr(meta.time) == repr(batched_reference.time)
    assert meta.completed_queries == batched_reference.completed_queries
