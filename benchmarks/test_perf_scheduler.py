"""Perf-regression guards for the scheduler/evaluation hot path.

Microbenchmarks the bitmask DP core at representative cluster counts
(n = 8 / 11 / 13, the paper's §5.4 cap) on fixed randomized instances,
plus the full ``tune()`` pipeline on TPC-H and JOB with the memoization
layers on.  Run with ``--benchmark-json`` to feed ``scripts/bench.py``:

    PYTHONPATH=src python -m pytest benchmarks/test_perf_scheduler.py \
        -m slow --benchmark-json=bench.json

Each benchmark also asserts correctness (optimal-order equality with
the executable specification; identical results across runs), so a
perf run doubles as a regression test.
"""

import random

import pytest

from repro.core import LambdaTune
from repro.core.scheduler import (
    compute_order_dp,
    compute_order_dp_reference,
)
from repro.db.postgres import PostgresEngine
from repro.llm import SimulatedLLM
from repro.workloads import job_workload, tpch_workload

pytestmark = pytest.mark.slow


def _instance(n_queries: int, seed: int = 99):
    rng = random.Random(seed)
    index_names = [f"i{k}" for k in range(2 * n_queries)]
    costs = {name: rng.uniform(0.1, 30.0) for name in index_names}
    index_map = {
        f"q{q}": frozenset(rng.sample(index_names, rng.randint(1, 5)))
        for q in range(n_queries)
    }
    return list(index_map), index_map, costs


@pytest.mark.parametrize("n_queries", [8, 11, 13])
def test_dp_bitmask(benchmark, n_queries):
    queries, index_map, costs = _instance(n_queries)
    order = benchmark(compute_order_dp, queries, index_map, costs)
    assert order == compute_order_dp_reference(queries, index_map, costs)


@pytest.mark.parametrize("n_queries", [13])
def test_dp_reference(benchmark, n_queries):
    """The pre-rewrite formulation, benchmarked for the speedup ratio."""
    queries, index_map, costs = _instance(n_queries)
    order = benchmark(compute_order_dp_reference, queries, index_map, costs)
    assert order == compute_order_dp(queries, index_map, costs)


@pytest.mark.parametrize("workload_name", ["tpch", "job"])
def test_full_tune(benchmark, quick_options, workload_name):
    workload = tpch_workload() if workload_name == "tpch" else job_workload()

    def run():
        tuner = LambdaTune(
            PostgresEngine(workload.catalog),
            SimulatedLLM(),
            quick_options,
        )
        return tuner.tune(list(workload.queries))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    repeat = run()
    assert repeat.best_time == result.best_time
    assert repeat.tuning_seconds == result.tuning_seconds
