"""Regenerates Table 5: the best lambda-Tune configuration for TPC-H 1GB
on Postgres.

Paper shape: memory parameters scaled to the machine (shared_buffers at
the manual's 25% of 61GB = 15GB), optimizer parameters steering toward
index use (random_page_cost 1.1, large effective_cache_size), indexes on
frequently-joined TPC-H columns.
"""

import pytest

from repro.bench.tables import table5

pytestmark = pytest.mark.slow


def test_table5(benchmark):
    table = benchmark.pedantic(lambda: table5(seed=0), rounds=1, iterations=1)
    print("\n== Table 5 (best lambda-Tune configuration, TPC-H 1GB PG) ==")
    print(table.to_text())

    parameters = {name: value for name, _, value in table.parameters}
    # The manual's 25%-of-RAM rule on the 61GB machine (paper §6.3).
    assert parameters["shared_buffers"] == "15GB"
    assert parameters["random_page_cost"] == "1.1"
    assert parameters["effective_io_concurrency"] == "200"
    categories = {category for _, category, _ in table.parameters}
    assert {"Memory", "Optimizer"} <= categories

    assert "lineitem" in table.indexed_columns
    assert "l_orderkey" in table.indexed_columns["lineitem"]
    assert "orders" in table.indexed_columns
