"""Regenerates Figure 7: the compressor token-budget sweep (JOB, PG).

Paper shapes: only an extremely low budget (196 tokens) degrades
quality noticeably; moderate budgets are near-optimal; pasting full SQL
costs >10x the tokens and performs worse.
"""

import pytest

from repro.bench.figures import figure7

pytestmark = pytest.mark.slow


def test_figure7(benchmark):
    figure = benchmark.pedantic(
        lambda: figure7(seed=0, workload_name="job"), rounds=1, iterations=1
    )
    print("\n== Figure 7 (token budget sweep, JOB PG) ==")
    print(figure.to_text())

    by_variant = {point["variant"]: point for point in figure.points}
    starved = by_variant["compressed-196"]
    moderate = by_variant["compressed-400"]
    full_sql = by_variant["full-sql"]

    # Extremely low budgets degrade performance (paper: 196 tokens).
    assert starved["best_time"] > moderate["best_time"]

    # Full SQL: >10x the tokens of the compressed representation and a
    # worse resulting configuration.
    assert full_sql["tokens"] > moderate["tokens"] * 10
    assert full_sql["best_time"] > moderate["best_time"]
