"""Sensitivity of lambda-Tune to its sampling hyper-parameters.

Sweeps the number of LLM samples k and the sampling temperature --
the two knobs Algorithm 1 exposes beyond the paper's fixed k=5 /
temperature defaults.  Expected shapes: more samples never hurt final
quality but cost evaluation time; temperature 0 removes both outliers
and diversity.
"""

import pytest

import math

from repro.bench.runner import run_lambda_tune
from repro.bench.scenarios import Scenario
from repro.core.tuner import LambdaTuneOptions
from repro.workloads import load_workload

pytestmark = pytest.mark.slow

BASE = LambdaTuneOptions(token_budget=400, initial_timeout=0.5, alpha=2.0)


def test_num_configs_sweep(benchmark):
    scenario = Scenario("tpch-sf1", "postgres", False)
    workload = load_workload("tpch-sf1")

    def run():
        results = {}
        for k in (1, 3, 5, 8):
            result = run_lambda_tune(
                scenario, workload, options=BASE.ablated(num_configs=k)
            )
            results[k] = (result.best_time, result.tuning_seconds)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nk -> (best time, tuning time)")
    for k, (best, tuning) in results.items():
        print(f"  k={k}: best={best:.1f}s tuning={tuning:.0f}s")

    best_times = {k: best for k, (best, _) in results.items()}
    assert all(math.isfinite(t) for t in best_times.values())
    # More samples never degrade final quality materially.
    assert best_times[8] <= best_times[1] * 1.05
    # But evaluation cost grows with k.
    assert results[8][1] > results[1][1]


def test_temperature_sweep(benchmark):
    scenario = Scenario("tpch-sf1", "postgres", False)
    workload = load_workload("tpch-sf1")

    def run():
        results = {}
        for temperature in (0.0, 0.4, 0.7, 1.0):
            result = run_lambda_tune(
                scenario,
                workload,
                options=BASE.ablated(temperature=temperature),
            )
            results[temperature] = result.best_time
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ntemperature -> best time")
    for temperature, best in results.items():
        print(f"  T={temperature}: best={best:.1f}s")
    assert all(math.isfinite(t) for t in results.values())
    # Zero temperature collapses the k samples to one deterministic
    # (balanced) configuration -- still a valid result.
    assert results[0.0] > 0
