"""Regenerates Figure 4: convergence with index creation allowed
(no initial indexes).

Paper shape: systems that create indexes (lambda-Tune, UDO) or receive
Dexter's indexes reach far lower execution times than the no-index
defaults; lambda-Tune converges fastest.
"""

import pytest

import math

from repro.bench.figures import convergence_figure
from repro.bench.runner import run_scenario
from repro.bench.scenarios import Scenario

pytestmark = pytest.mark.slow


def test_figure4(benchmark, quick_budget, quick_options):
    scenarios = [
        Scenario("tpch-sf1", "postgres", False),
        Scenario("tpcds-sf1", "postgres", False),
    ]

    def run():
        runs = {
            scenario.key: run_scenario(
                scenario,
                budget_seconds=quick_budget,
                seed=0,
                lambda_options=quick_options,
            )
            for scenario in scenarios
        }
        return convergence_figure(scenarios, runs=runs), runs

    figure, runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== Figure 4 (index creation scope convergence) ==")
    print(figure.to_text())

    for scenario in scenarios:
        run = runs[scenario.key]
        lt = run.results["lambda-tune"]
        assert math.isfinite(lt.best_time)
        # Index-capable tuning beats the bare default workload time.
        assert lt.best_time < run.default_time
