"""Regenerates Figure 5: per-query times, lambda-Tune vs default
(TPC-H 1GB, Postgres).

Paper shape: gains or at-least-equal performance for every single query.
"""

import pytest

from repro.bench.figures import figure5

pytestmark = pytest.mark.slow


def test_figure5(benchmark):
    figure = benchmark.pedantic(lambda: figure5(seed=0), rounds=1, iterations=1)
    print("\n== Figure 5 (per-query times, TPC-H 1GB PG) ==")
    print(figure.to_text())

    assert len(figure.per_query) == 22
    total_default = sum(default for _, default, _ in figure.per_query)
    total_tuned = sum(tuned for _, _, tuned in figure.per_query)
    assert total_tuned < total_default

    regressions = [
        name
        for name, default, tuned in figure.per_query
        if tuned > default * 1.10
    ]
    # "gains or at least equal performance ... for each single query"
    # (we allow a 10% tolerance for simulator noise on a few queries).
    assert len(regressions) <= 3, regressions
