"""Journal directory hygiene: discovery, classification, and leasing.

A service root accumulates one journal per tuning job.  After a server
crash the directory is the *only* durable record of what was running,
so startup recovery has to classify every journal correctly:

- ``complete`` -- the journal ends with a ``done`` event; the recorded
  :class:`~repro.core.result.TuningResult` is the job's result and the
  job must not be re-driven (final passes are not idempotent).
- incomplete -- the job crashed mid-flight; it must be *resumed* (not
  restarted from scratch, not skipped).
- ``torn_tail`` -- the crash happened mid-``write()``; the final line
  is garbage.  Still resumable: :class:`~repro.session.TuningJournal`
  drops the torn line on append, and the intact prefix is authoritative.

:func:`discover_journals` performs that classification without raising
on crash artifacts; only genuine corruption (a damaged non-tail line)
surfaces as :class:`~repro.errors.SessionError` from the reader.

:class:`JournalLease` is the double-resume protection: a worker must
hold the lease on a journal before adopting it.  Leases are exclusive
across threads *and* processes -- a same-process registry catches two
workers of one server (or two servers in one test process), and an
``O_EXCL`` lock file catches two server processes.  A lock left behind
by a dead process (or an in-process server whose liveness token was
retired, the test-harness analogue of process death) is *stale* and is
broken silently.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import TuningResult
from repro.errors import JournalLockedError
from repro.session.journal import JournalEvent, TuningJournal

#: Filename suffix distinguishing journals from their lock files.
JOURNAL_SUFFIX = ".journal"
LOCK_SUFFIX = ".lock"


@dataclass(frozen=True, slots=True)
class JournalInfo:
    """One discovered journal, classified for recovery."""

    path: Path
    #: Basename without :data:`JOURNAL_SUFFIX` -- the service job id.
    name: str
    #: Count of intact events (a torn tail is not an event).
    events: int
    #: The journal ends with a ``done`` event; result is recorded.
    complete: bool
    #: The raw file does not end at a clean event boundary.
    torn_tail: bool

    @property
    def resumable(self) -> bool:
        """An incomplete journal with at least its header intact."""
        return not self.complete and self.events >= 1


def inspect_journal(path: str | Path) -> JournalInfo:
    """Classify one journal file (see the module doc for the states)."""
    path = Path(path)
    events = TuningJournal.read(path)
    raw = path.read_text(encoding="utf-8")
    intact = sum(len(_raw_line(raw, index)) for index in range(len(events)))
    torn = len(raw) != intact
    complete = bool(events) and events[-1].kind == "done"
    name = path.name
    if name.endswith(JOURNAL_SUFFIX):
        name = name[: -len(JOURNAL_SUFFIX)]
    return JournalInfo(
        path=path,
        name=name,
        events=len(events),
        complete=complete,
        torn_tail=torn,
    )


def _raw_line(raw: str, index: int) -> str:
    """The ``index``-th physical line of ``raw``, newline included."""
    start = 0
    for _ in range(index):
        start = raw.index("\n", start) + 1
    end = raw.find("\n", start)
    return raw[start:] if end < 0 else raw[start : end + 1]


def discover_journals(directory: str | Path) -> list[JournalInfo]:
    """Classify every ``*.journal`` under ``directory`` (sorted by name).

    A missing directory is an empty service root, not an error.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        inspect_journal(path)
        for path in sorted(directory.glob(f"*{JOURNAL_SUFFIX}"))
    ]


def read_result(path: str | Path) -> TuningResult | None:
    """The journaled ``done`` result, or ``None`` if the job never finished."""
    events = TuningJournal.read(path)
    return _result_of(events)


def _result_of(events: list[JournalEvent]) -> TuningResult | None:
    for event in reversed(events):
        if event.kind == "done":
            return event.payload["result"]
    return None


# -- double-resume protection -------------------------------------------------

#: Liveness tokens of in-process servers (see :func:`register_owner`).
_LIVE_TOKENS: set[str] = set()
#: Lease paths currently held somewhere in this process.
_HELD_PATHS: set[str] = set()
_REGISTRY_LOCK = threading.Lock()


def register_owner(token: str) -> None:
    """Mark ``token`` as a live lease owner in this process."""
    with _REGISTRY_LOCK:
        _LIVE_TOKENS.add(token)


def retire_owner(token: str) -> None:
    """Declare ``token`` dead.

    The in-process analogue of process death: locks written under the
    token become stale and breakable, exactly as if the owning process
    had been ``kill -9``'d, but lease *files* stay on disk untouched --
    recovery has to break them, the crash never cleans up.
    """
    with _REGISTRY_LOCK:
        _LIVE_TOKENS.discard(token)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned elsewhere
        return True
    return True


class JournalLease:
    """Exclusive right to drive one journal; two holders cannot coexist.

    Acquire before running or resuming a journal; release after the
    terminal journal event is on disk.  ``owner_token`` identifies the
    owning server instance (see :func:`register_owner`); a lock whose
    owner is no longer live -- dead pid, or a retired in-process token
    -- is stale and is broken on acquire.
    """

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self._key = key
        self._released = False

    @classmethod
    def acquire(
        cls, journal_path: str | Path, *, owner_token: str
    ) -> "JournalLease":
        lock_path = Path(os.fspath(journal_path) + LOCK_SUFFIX)
        key = str(lock_path.resolve().parent / lock_path.name)
        payload = json.dumps({"pid": os.getpid(), "token": owner_token})
        for attempt in range(2):
            with _REGISTRY_LOCK:
                if key in _HELD_PATHS:
                    raise JournalLockedError(
                        f"journal {journal_path} is already leased by a "
                        f"worker in this process"
                    )
            try:
                fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if attempt == 0 and cls._break_if_stale(lock_path):
                    continue
                raise JournalLockedError(
                    f"journal {journal_path} is leased by a live worker "
                    f"(lock file {lock_path})"
                ) from None
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            with _REGISTRY_LOCK:
                _HELD_PATHS.add(key)
            return cls(lock_path, key)
        raise JournalLockedError(  # pragma: no cover - loop always returns
            f"could not lease journal {journal_path}"
        )

    @staticmethod
    def _break_if_stale(lock_path: Path) -> bool:
        """Remove a lock whose owner is provably dead; True if removed."""
        try:
            record = json.loads(lock_path.read_text(encoding="utf-8"))
            pid, token = int(record["pid"]), str(record["token"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable or torn lock: its writer died mid-write.
            stale = True
        else:
            if pid != os.getpid():
                stale = not _pid_alive(pid)
            else:
                with _REGISTRY_LOCK:
                    stale = token not in _LIVE_TOKENS
        if stale:
            try:
                lock_path.unlink()
            except OSError:  # pragma: no cover - lost a removal race
                return False
        return stale

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        with _REGISTRY_LOCK:
            _HELD_PATHS.discard(self._key)
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - already broken by takeover
            pass

    def abandon(self) -> None:
        """Drop the in-process hold but leave the lock file on disk.

        Used when simulating a server kill: a real ``kill -9`` cannot
        unlink anything, so the file must survive for recovery to break.
        """
        if self._released:
            return
        self._released = True
        with _REGISTRY_LOCK:
            _HELD_PATHS.discard(self._key)

    def __enter__(self) -> "JournalLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
