"""Crash-safe tuning sessions: write-ahead journal, checkpoint, resume.

See :mod:`repro.session.session` for the recovery model.  Import the
public surface from here::

    from repro.session import TuningSession

    session = TuningSession(tuner, "run.journal", workload_name="tpch")
    result = session.run(queries)          # journals as it goes
    ...                                    # crash at any point
    result = TuningSession.resume("run.journal", engine=engine, llm=llm)
"""

from repro.session import codec
from repro.session.discover import (
    JournalInfo,
    JournalLease,
    discover_journals,
    inspect_journal,
    read_result,
)
from repro.session.journal import JournalEvent, TuningJournal
from repro.session.session import (
    JournalingObserver,
    ResumePoint,
    SelectionReplay,
    TuningSession,
    rehydrate,
)

__all__ = [
    "JournalEvent",
    "JournalInfo",
    "JournalLease",
    "JournalingObserver",
    "ResumePoint",
    "SelectionReplay",
    "TuningJournal",
    "TuningSession",
    "codec",
    "discover_journals",
    "inspect_journal",
    "read_result",
    "rehydrate",
]
