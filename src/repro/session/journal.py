"""Write-ahead JSONL journal for crash-safe tuning sessions.

One tuning run appends one event per line::

    {"seq": 17, "kind": "update_folded", "payload": {...}}

Payloads are encoded with :mod:`repro.session.codec`.  Events are
flushed to the OS on every append and ``fsync``'d at the durability
points the session layer marks (session start, selection boundaries,
round checkpoints, completion), so a crash loses at most the tail
written since the last sync -- and a torn final line at most.

Reading is crash-tolerant: a malformed or truncated *last* line is
dropped silently (the expected artifact of dying mid-write), while
corruption anywhere else raises :class:`~repro.errors.SessionError`
because it means the file was damaged, not merely cut short.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import SessionError
from repro.session import codec


@dataclass(frozen=True, slots=True)
class JournalEvent:
    """One decoded journal line."""

    seq: int
    kind: str
    payload: dict[str, Any]


class TuningJournal:
    """Append-only JSONL event log backing one tuning session."""

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        next_seq = 0
        if append and self.path.exists():
            events = self.read(self.path)
            if events:
                next_seq = events[-1].seq + 1
            # Drop a torn trailing line so the continuation starts at a
            # clean event boundary.
            self._truncate_to(events)
        self._next_seq = next_seq
        self._file = open(self.path, "a", encoding="utf-8")

    def _truncate_to(self, events: list[JournalEvent]) -> None:
        intact = "".join(_event_line(e.seq, e.kind, e.payload) for e in events)
        raw = self.path.read_text(encoding="utf-8")
        if raw != intact:
            # Rewrite only the intact prefix.  (Cheap: journals are
            # small, and this runs once per resume.)
            self.path.write_text(intact, encoding="utf-8")

    # -- writing -------------------------------------------------------------------

    def append(self, kind: str, payload: dict[str, Any], *, sync: bool = False) -> int:
        """Append one event; returns its sequence number.

        ``sync=True`` forces the line (and everything before it) to disk
        before returning -- the write-ahead guarantee for checkpoints.
        """
        seq = self._next_seq
        self._next_seq += 1
        self._file.write(_event_line(seq, kind, payload))
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())
        return seq

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "TuningJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> list[JournalEvent]:
        """Decode all intact events; drop a torn trailing line."""
        raw = Path(path).read_text(encoding="utf-8")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        events: list[JournalEvent] = []
        for number, line in enumerate(lines):
            is_last = number == len(lines) - 1
            try:
                record = json.loads(line)
                event = JournalEvent(
                    seq=record["seq"],
                    kind=record["kind"],
                    payload=codec.decode(record["payload"]),
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                if is_last:
                    break
                raise SessionError(
                    f"corrupt journal line {number + 1} in {path}"
                ) from None
            if event.seq != len(events):
                raise SessionError(
                    f"journal {path} has non-contiguous sequence numbers "
                    f"(line {number + 1}: expected {len(events)}, got {event.seq})"
                )
            events.append(event)
        return events


def _event_line(seq: int, kind: str, payload: dict[str, Any]) -> str:
    return (
        json.dumps(
            {"seq": seq, "kind": kind, "payload": codec.encode(payload)},
            separators=(",", ":"),
        )
        + "\n"
    )
