"""Crash-safe tuning sessions: journal, checkpoint, resume.

:class:`TuningSession` wraps :meth:`repro.core.tuner.LambdaTune.tune`
with a write-ahead JSONL journal (:mod:`repro.session.journal`): every
pipeline stage -- prompt generation, LLM sampling, each selection
round's folded updates, quarantines, best improvements, and round
checkpoints -- is appended *after* it takes effect on the in-memory
state, with ``fsync`` at round and selection boundaries.

:meth:`TuningSession.resume` rebuilds the run from the journal: it
restores the engine via
:meth:`~repro.db.engine.DatabaseEngine.restore_state`, rehydrates the
selection's :class:`~repro.core.rounds.SelectionState`, replays the
journal tail recorded since the last checkpoint, and continues the tune
from the exact :class:`~repro.core.rounds.RoundCursor` position --
producing the same ``SelectionResult`` floats, trace, and fingerprint
as a never-interrupted run, under serial and parallel executors alike,
and never re-running a query the journal recorded as completed.

Replay rules (one per event kind):

- ``checkpoint`` wholesale-replaces the selection state and engine
  snapshot and clears the cursor -- everything before it is final.
- ``round_started`` sets the round counter/timeout and opens a cursor
  at position 0 of the journaled candidate order.
- ``update_folded`` replaces the candidate's ``ConfigMeta``, re-folds
  it into best/trace via the same
  :meth:`~repro.core.rounds.SelectionState.fold_update` transition the
  live driver used (the event's engine clock is the fold timestamp),
  adopts the event's engine snapshot, and advances the cursor past the
  candidate's position.  ``best_improved`` / ``config_quarantined`` are
  therefore informational on replay -- their effects are already part
  of the fold.
- ``selection_finished`` freezes the selection: its replayed state *is*
  the result, and the driver is never re-entered (final-pass updates
  are not idempotent).

Skipped updates emit no events by design: re-evaluating a skip
condition on resume is deterministic and free, so a cursor may point at
a skipped candidate without corrupting positions (``update_folded``
carries its explicit position).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import Configuration
from repro.core.rounds import (
    PHASE_ROUNDS,
    RoundCursor,
    SelectionState,
    TuningObserver,
)
from repro.core.result import TuningResult
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.engine import DatabaseEngine, EngineState
from repro.errors import SessionError
from repro.llm.client import LLMClient
from repro.session import codec
from repro.session.journal import JournalEvent, TuningJournal
from repro.workloads.base import Query


class JournalingObserver(TuningObserver):
    """Streams every pipeline event into the session journal."""

    def __init__(self, journal: TuningJournal, *, label: str | None = None) -> None:
        self._journal = journal
        #: The selection currently emitting round events (seeded on
        #: resume, since ``selection_started`` is not re-emitted then).
        self._label = label

    # -- pipeline stages --------------------------------------------------------

    def prompt_generated(self, prompt) -> None:
        coverage = prompt.compression.coverage if prompt.compression else None
        self._journal.append(
            "prompt_generated", {"tokens": prompt.tokens, "coverage": coverage}
        )

    def sample_accepted(self, ordinal: int, config: Configuration) -> None:
        self._journal.append(
            "sample_accepted", {"ordinal": ordinal, "config": config}
        )

    def sample_dropped(
        self, ordinal: int, reason: str, *, llm_error: bool = False
    ) -> None:
        self._journal.append(
            "sample_dropped",
            {"ordinal": ordinal, "reason": reason, "llm_error": llm_error},
        )

    def selection_started(self, label, configs, carryover_meta=None) -> None:
        self._label = label
        self._journal.append(
            "selection_started",
            {
                "label": label,
                "configs": configs,
                "carryover_meta": carryover_meta,
            },
            sync=True,
        )

    def selection_finished(self, label, result) -> None:
        self._journal.append("selection_finished", {"label": label}, sync=True)

    def done(self, result: TuningResult) -> None:
        self._journal.append("done", {"result": result}, sync=True)

    # -- selection events -------------------------------------------------------

    def round_started(self, state, phase, order) -> None:
        self._journal.append(
            "round_started",
            {
                "label": self._label,
                "phase": phase,
                "round": state.rounds,
                "timeout": state.timeout,
                "order": order,
            },
        )

    def update_folded(self, config, position, meta, state, engine) -> None:
        self._journal.append(
            "update_folded",
            {
                "label": self._label,
                "name": config.name,
                "position": position,
                "meta": meta,
                "engine": engine.capture_state(),
            },
        )

    def config_quarantined(self, config, meta) -> None:
        self._journal.append(
            "config_quarantined",
            {"label": self._label, "name": config.name, "failure": meta.failure},
        )

    def best_improved(self, config, state) -> None:
        self._journal.append(
            "best_improved",
            {
                "label": self._label,
                "name": config.name,
                "at": state.trace[-1][0],
                "best_time": state.best.time,
            },
        )

    def round_checkpoint(self, state, engine) -> None:
        self._journal.append(
            "checkpoint",
            {
                "label": self._label,
                "state": state,
                "engine": engine.capture_state(),
            },
            sync=True,
        )


@dataclass(slots=True)
class SelectionReplay:
    """One labeled selection's rehydrated progress."""

    label: str
    configs: list[Configuration]
    carryover_meta: dict | None
    state: SelectionState
    cursor: RoundCursor | None = None
    finished: bool = False


@dataclass(slots=True)
class ResumePoint:
    """Everything :meth:`LambdaTune.tune` needs to continue a journal."""

    options: LambdaTuneOptions
    workload_name: str
    system: str
    queries: list[Query]
    engine_state: EngineState
    fault_plan: object | None
    start_clock: float
    prompt_tokens: int | None = None
    compression_coverage: float | None = None
    #: ordinal -> ("accepted", config) | ("dropped", reason, llm_error)
    samples: dict[int, tuple] = field(default_factory=dict)
    selections: dict[str, SelectionReplay] = field(default_factory=dict)
    active_label: str | None = None
    result: TuningResult | None = None


def rehydrate(events: list[JournalEvent], catalog) -> ResumePoint:
    """Fold a journal's events into a :class:`ResumePoint`."""
    if not events or events[0].kind != "session_start":
        raise SessionError("journal does not begin with a session_start event")
    header = events[0].payload
    codec.check_version(header.get("codec_version"))
    queries = [
        Query.from_sql(name, sql, catalog) for name, sql in header["queries"]
    ]
    point = ResumePoint(
        options=header["options"],
        workload_name=header["workload_name"],
        system=header["system"],
        queries=queries,
        engine_state=header["engine"],
        fault_plan=header["fault_plan"],
        start_clock=header["start_clock"],
    )
    current: SelectionReplay | None = None

    for event in events[1:]:
        payload = event.payload
        kind = event.kind
        if kind == "prompt_generated":
            point.prompt_tokens = payload["tokens"]
            point.compression_coverage = payload["coverage"]
        elif kind == "sample_accepted":
            point.samples[payload["ordinal"]] = ("accepted", payload["config"])
        elif kind == "sample_dropped":
            point.samples[payload["ordinal"]] = (
                "dropped",
                payload["reason"],
                payload["llm_error"],
            )
        elif kind == "selection_started":
            current = SelectionReplay(
                label=payload["label"],
                configs=payload["configs"],
                carryover_meta=payload["carryover_meta"],
                state=SelectionState.initial(
                    payload["configs"], point.options.initial_timeout
                ),
            )
            point.selections[current.label] = current
            point.active_label = current.label
        elif kind == "round_started":
            state = _active(current, kind).state
            if payload["phase"] == PHASE_ROUNDS:
                state.rounds = payload["round"]
                state.timeout = payload["timeout"]
            current.cursor = RoundCursor(
                phase=payload["phase"], order=payload["order"], position=0
            )
        elif kind == "update_folded":
            replay = _active(current, kind)
            meta = payload["meta"]
            replay.state.meta[payload["name"]] = meta
            config = _config_named(replay, payload["name"])
            # Re-fold through the same transition the live driver used;
            # the event's engine clock is the fold timestamp, so
            # best/trace floats come back bit-identical.
            replay.state.fold_update(config, meta, payload["engine"].clock)
            point.engine_state = payload["engine"]
            if replay.cursor is not None:
                replay.cursor.position = payload["position"] + 1
        elif kind in ("best_improved", "config_quarantined"):
            # Informational: both effects are already part of the
            # preceding update_folded's re-fold.
            pass
        elif kind == "checkpoint":
            replay = _active(current, kind)
            replay.state = payload["state"]
            point.engine_state = payload["engine"]
            replay.cursor = None
        elif kind == "selection_finished":
            replay = _active(current, kind)
            replay.finished = True
            replay.cursor = None
        elif kind == "done":
            point.result = payload["result"]
        else:
            raise SessionError(f"unknown journal event kind {kind!r}")

    for replay in point.selections.values():
        if replay.finished:
            continue
        state = replay.state
        if (
            replay.cursor is not None
            and replay.cursor.phase == PHASE_ROUNDS
            and state.finished_first
        ):
            # Crashed between the winning fold and its round checkpoint:
            # the driver had not yet earmarked the final candidates or
            # advanced the timeout.  Both transitions are pure functions
            # of replayed state, so apply them here; the resumed driver
            # then enters the final pass directly.
            state.enter_final_pass(replay.configs, state.best.config)
            state.advance_timeout(
                point.options.alpha, point.options.adaptive_timeout
            )
            replay.cursor = None

    return point


def _active(current: SelectionReplay | None, kind: str) -> SelectionReplay:
    if current is None:
        raise SessionError(
            f"journal event {kind!r} appears before any selection_started"
        )
    return current


def _config_named(replay: SelectionReplay, name: str) -> Configuration:
    for config in replay.configs:
        if config.name == name:
            return config
    raise SessionError(
        f"journal references unknown configuration {name!r} "
        f"in selection {replay.label!r}"
    )


class TuningSession:
    """One journaled tuning run, resumable after a crash."""

    def __init__(
        self,
        tuner: LambdaTune,
        path: str | Path,
        *,
        workload_name: str = "",
        journal_factory=None,
    ) -> None:
        self._tuner = tuner
        self.path = Path(path)
        self._workload_name = workload_name
        #: ``(path, *, append=False) -> TuningJournal``-compatible hook;
        #: the service layer injects a wrapper that checks cancellation
        #: and chaos crash points before every append.
        self._journal_factory = journal_factory or TuningJournal

    def run(self, queries: list[Query]) -> TuningResult:
        """Run the tune with every stage journaled to :attr:`path`."""
        engine = self._tuner.engine
        queries = list(queries)
        with self._journal_factory(self.path) as journal:
            journal.append(
                "session_start",
                {
                    "codec_version": codec.CODEC_VERSION,
                    "options": self._tuner.options,
                    "workload_name": self._workload_name,
                    "system": engine.system,
                    "queries": [(query.name, query.sql) for query in queries],
                    "engine": engine.capture_state(),
                    "fault_plan": engine.fault_plan,
                    "start_clock": engine.clock.now,
                },
                sync=True,
            )
            return self._tuner.tune(
                queries,
                workload_name=self._workload_name,
                observer=JournalingObserver(journal),
            )

    @classmethod
    def resume(
        cls,
        path: str | Path,
        *,
        engine: DatabaseEngine,
        llm: LLMClient,
        journal_factory=None,
    ) -> TuningResult:
        """Continue an interrupted session from its journal.

        ``engine`` must be a fresh engine of the same class and catalog
        the original run used (its mutable state -- settings, physical
        design, clock -- is replaced by the journaled snapshot; the
        original fault plan is reinstalled).  ``llm`` replaces the
        original client; journaled samples are never re-requested, so
        it is only consulted for ordinals the journal has no outcome
        for.  If the journal already holds a ``done`` event, the
        recorded result is returned without touching the engine.
        """
        events = TuningJournal.read(path)
        point = rehydrate(events, engine.catalog)
        if point.result is not None:
            return point.result
        engine.restore_state(point.engine_state)
        if point.fault_plan is not None:
            engine.install_faults(point.fault_plan)
        tuner = LambdaTune(engine, llm, point.options)
        factory = journal_factory or TuningJournal
        with factory(path, append=True) as journal:
            observer = JournalingObserver(journal, label=point.active_label)
            return tuner.tune(
                point.queries,
                workload_name=point.workload_name,
                observer=observer,
                resume=point,
            )
