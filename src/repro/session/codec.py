"""Versioned JSON codec for tuning-session state.

Everything a crash-safe session journals -- sampled
:class:`~repro.core.config.Configuration` scripts, per-configuration
:class:`~repro.core.evaluator.ConfigMeta` records, the selection
:class:`~repro.core.rounds.SelectionState`, engine snapshots
(:class:`~repro.db.engine.EngineState`), fault plans, options, and the
final :class:`~repro.core.result.TuningResult` -- round-trips through
this module **exactly**:

- floats survive bit-for-bit ( ``json`` emits the shortest
  ``repr``-round-trip form, and ``inf`` uses the ``Infinity`` token),
- tuples, sets and frozensets are type-tagged (``{"__t__": [...]}`` /
  ``{"__s__": [...]}``) so containers come back with their original
  types (sets are serialized sorted for stable journal bytes),
- dataclasses are tagged ``{"__k__": "<kind>", ...fields}`` via an
  explicit per-type registry -- no pickling, no arbitrary class loading
  from journal files.

Versioning rules: :data:`CODEC_VERSION` is stamped into every journal's
``session_start`` event.  The version is bumped whenever an encoded
shape changes incompatibly (a field removed or reinterpreted; additions
with defaults are compatible and do not bump).  :func:`check_version`
rejects journals written by a different major shape so a resume can
never misread old bytes silently.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta
from repro.core.rounds import BestConfig, RoundCursor, SelectionState
from repro.core.result import TracePoint, TuningResult
from repro.core.tuner import LambdaTuneOptions
from repro.db.engine import EngineState
from repro.db.indexes import Index
from repro.db.resources import ResourceBudget
from repro.errors import SessionError
from repro.faults import FaultPlan

#: Bump on any incompatible change to an encoded shape (see module doc).
CODEC_VERSION = 1

_KIND = "__k__"
_TUPLE = "__t__"
_SET = "__s__"
_FROZENSET = "__f__"


def check_version(version: object) -> None:
    if version != CODEC_VERSION:
        raise SessionError(
            f"journal was written with codec version {version!r}; "
            f"this build reads version {CODEC_VERSION}"
        )


# -- encoding ----------------------------------------------------------------------


def encode(obj: Any) -> Any:
    """Translate ``obj`` into a JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise SessionError(
                    f"cannot encode dict with non-string key {key!r}"
                )
            out[key] = encode(value)
        return out
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TUPLE: [encode(item) for item in obj]}
    if isinstance(obj, frozenset):
        return {_FROZENSET: sorted(encode(item) for item in obj)}
    if isinstance(obj, set):
        return {_SET: sorted(encode(item) for item in obj)}
    encoder = _ENCODERS.get(type(obj))
    if encoder is None:
        raise SessionError(f"no codec for objects of type {type(obj).__name__}")
    kind, fields = encoder(obj)
    payload = {_KIND: kind}
    payload.update({name: encode(value) for name, value in fields.items()})
    return payload


def decode(data: Any) -> Any:
    """Rebuild the object graph encoded by :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(item) for item in data]
    if isinstance(data, dict):
        if _TUPLE in data and len(data) == 1:
            return tuple(decode(item) for item in data[_TUPLE])
        if _SET in data and len(data) == 1:
            return {decode(item) for item in data[_SET]}
        if _FROZENSET in data and len(data) == 1:
            return frozenset(decode(item) for item in data[_FROZENSET])
        if _KIND in data:
            kind = data[_KIND]
            decoder = _DECODERS.get(kind)
            if decoder is None:
                raise SessionError(f"unknown codec kind {kind!r} in journal")
            fields = {
                name: decode(value)
                for name, value in data.items()
                if name != _KIND
            }
            return decoder(fields)
        return {name: decode(value) for name, value in data.items()}
    raise SessionError(f"cannot decode value of type {type(data).__name__}")


def dumps(obj: Any) -> str:
    return json.dumps(encode(obj), separators=(",", ":"))


def loads(text: str) -> Any:
    return decode(json.loads(text))


# -- the type registry -------------------------------------------------------------


def _enc_index(index: Index):
    return "Index", {
        "table": index.table,
        "columns": index.columns,
        "name": index.name,
    }


def _dec_index(fields) -> Index:
    return Index(fields["table"], fields["columns"], name=fields["name"])


def _enc_configuration(config: Configuration):
    return "Configuration", {
        "name": config.name,
        "settings": config.settings,
        "indexes": config.indexes,
        "raw_text": config.raw_text,
        "rejected": config.rejected,
    }


def _dec_configuration(fields) -> Configuration:
    return Configuration(
        name=fields["name"],
        settings=fields["settings"],
        indexes=fields["indexes"],
        raw_text=fields["raw_text"],
        rejected=fields["rejected"],
    )


def _enc_config_meta(meta: ConfigMeta):
    return "ConfigMeta", {
        "time": meta.time,
        "is_complete": meta.is_complete,
        "index_time": meta.index_time,
        "completed_queries": meta.completed_queries,
        "failed": meta.failed,
        "failure": meta.failure,
    }


def _dec_config_meta(fields) -> ConfigMeta:
    return ConfigMeta(
        time=fields["time"],
        is_complete=fields["is_complete"],
        index_time=fields["index_time"],
        completed_queries=fields["completed_queries"],
        failed=fields["failed"],
        failure=fields["failure"],
    )


def _enc_best(best: BestConfig):
    return "BestConfig", {"time": best.time, "config": best.config}


def _dec_best(fields) -> BestConfig:
    return BestConfig(time=fields["time"], config=fields["config"])


def _enc_selection_state(state: SelectionState):
    return "SelectionState", {
        "timeout": state.timeout,
        "rounds": state.rounds,
        "meta": state.meta,
        "best": state.best,
        "trace": state.trace,
        "candidates": state.candidates,
        "stats": state.stats,
    }


def _dec_selection_state(fields) -> SelectionState:
    return SelectionState(
        timeout=fields["timeout"],
        rounds=fields["rounds"],
        meta=fields["meta"],
        best=fields["best"],
        trace=fields["trace"],
        candidates=fields["candidates"],
        stats=fields["stats"],
    )


def _enc_cursor(cursor: RoundCursor):
    return "RoundCursor", {
        "phase": cursor.phase,
        "order": cursor.order,
        "position": cursor.position,
    }


def _dec_cursor(fields) -> RoundCursor:
    return RoundCursor(
        phase=fields["phase"],
        order=fields["order"],
        position=fields["position"],
    )


def _enc_engine_state(state: EngineState):
    return "EngineState", {
        "settings": state.settings,
        "indexes": state.indexes,
        "clock": state.clock,
    }


def _dec_engine_state(fields) -> EngineState:
    return EngineState(
        settings=fields["settings"],
        indexes=fields["indexes"],
        clock=fields["clock"],
    )


def _enc_fault_plan(plan: FaultPlan):
    return "FaultPlan", dict(plan.__getstate__())


def _dec_fault_plan(fields) -> FaultPlan:
    plan = FaultPlan.__new__(FaultPlan)
    plan.__setstate__(fields)
    return plan


def _enc_trace_point(point: TracePoint):
    return "TracePoint", {"time": point.time, "best_time": point.best_time}


def _dec_trace_point(fields) -> TracePoint:
    return TracePoint(time=fields["time"], best_time=fields["best_time"])


def _enc_tuning_result(result: TuningResult):
    return "TuningResult", {
        "tuner": result.tuner,
        "workload": result.workload,
        "system": result.system,
        "best_time": result.best_time,
        "best_config": result.best_config,
        "trace": result.trace,
        "configs_evaluated": result.configs_evaluated,
        "tuning_seconds": result.tuning_seconds,
        "extras": result.extras,
    }


def _dec_tuning_result(fields) -> TuningResult:
    return TuningResult(
        tuner=fields["tuner"],
        workload=fields["workload"],
        system=fields["system"],
        best_time=fields["best_time"],
        best_config=fields["best_config"],
        trace=fields["trace"],
        configs_evaluated=fields["configs_evaluated"],
        tuning_seconds=fields["tuning_seconds"],
        extras=fields["extras"],
    )


def _enc_budget(budget: ResourceBudget):
    return "ResourceBudget", {
        "max_memory_bytes": budget.max_memory_bytes,
        "max_disk_bytes": budget.max_disk_bytes,
    }


def _dec_budget(fields) -> ResourceBudget:
    return ResourceBudget(
        max_memory_bytes=fields["max_memory_bytes"],
        max_disk_bytes=fields["max_disk_bytes"],
    )


def _enc_options(options: LambdaTuneOptions) -> tuple[str, dict]:
    fields = {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
    }
    return "LambdaTuneOptions", fields


def _dec_options(fields) -> LambdaTuneOptions:
    return LambdaTuneOptions(**fields)


_ENCODERS = {
    Index: _enc_index,
    ResourceBudget: _enc_budget,
    LambdaTuneOptions: _enc_options,
    Configuration: _enc_configuration,
    ConfigMeta: _enc_config_meta,
    BestConfig: _enc_best,
    SelectionState: _enc_selection_state,
    RoundCursor: _enc_cursor,
    EngineState: _enc_engine_state,
    FaultPlan: _enc_fault_plan,
    TracePoint: _enc_trace_point,
    TuningResult: _enc_tuning_result,
}

_DECODERS = {
    "Index": _dec_index,
    "ResourceBudget": _dec_budget,
    "LambdaTuneOptions": _dec_options,
    "Configuration": _dec_configuration,
    "ConfigMeta": _dec_config_meta,
    "BestConfig": _dec_best,
    "SelectionState": _dec_selection_state,
    "RoundCursor": _dec_cursor,
    "EngineState": _dec_engine_state,
    "FaultPlan": _dec_fault_plan,
    "TracePoint": _dec_trace_point,
    "TuningResult": _dec_tuning_result,
}
