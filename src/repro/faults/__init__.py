"""Deterministic fault injection for chaos-testing the tuning loop.

The tuning stack assumes LLM-generated configurations can be *invalid*
(paper §4: scripts that fail to apply or crash the DBMS are discarded,
not propagated).  This package builds the failure scenarios:

- :class:`FaultPlan` -- a picklable, seed-derived schedule deciding
  purely from ``(seed, site, key)`` which faults fire and how hard,
- :class:`FaultyLLMClient` -- wraps any LLM client with transient
  timeouts/rate limits and script corruption (truncation, unknown
  knobs, out-of-range values, garbled syntax),
- engine hooks (:attr:`repro.db.engine.DatabaseEngine.fault_plan`) --
  query crashes, index-build interruptions, transient I/O retries, and
  OOM kills when memory knobs oversubscribe the simulated RAM.

With no plan installed every hook is one ``is None`` check; with a plan
installed, every injected fault carries its ``(seed, site, key)`` label
so chaos-test failures replay exactly (:meth:`FaultPlan.single_site`).
"""

from repro.faults.llm import FaultyLLMClient
from repro.faults.plan import (
    ALL_SITES,
    ENGINE_INDEX_INTERRUPT,
    ENGINE_IO_TRANSIENT,
    ENGINE_OOM,
    ENGINE_QUERY_CRASH,
    ENGINE_SITES,
    LLM_MALFORMED,
    LLM_OUT_OF_RANGE,
    LLM_SITES,
    LLM_TRANSIENT,
    LLM_TRUNCATE,
    LLM_UNKNOWN_KNOB,
    FaultDecision,
    FaultPlan,
)

__all__ = [
    "ALL_SITES",
    "ENGINE_INDEX_INTERRUPT",
    "ENGINE_IO_TRANSIENT",
    "ENGINE_OOM",
    "ENGINE_QUERY_CRASH",
    "ENGINE_SITES",
    "LLM_MALFORMED",
    "LLM_OUT_OF_RANGE",
    "LLM_SITES",
    "LLM_TRANSIENT",
    "LLM_TRUNCATE",
    "LLM_UNKNOWN_KNOB",
    "FaultDecision",
    "FaultPlan",
    "FaultyLLMClient",
]
