"""LLM-level fault injection.

:class:`FaultyLLMClient` wraps any :class:`~repro.llm.client.LLMClient`
and corrupts its behavior according to a :class:`FaultPlan`:

- ``llm.transient`` -- the first N calls for a given sampling seed raise
  :class:`LLMTimeoutError` / :class:`LLMRateLimitError` (alternating),
  then the call goes through.  The base client's retry loop
  (:meth:`LLMClient.complete_with_retry`) absorbs these.
- ``llm.truncate`` -- the response text is cut mid-script, simulating a
  completion that hit its output token limit.
- ``llm.unknown_knob`` -- a setting for a knob the target system does
  not have is spliced into the script.
- ``llm.out_of_range`` -- a real knob is set to an absurd value.
- ``llm.malformed`` -- statement terminators are stripped and operators
  garbled, simulating prose bleeding into the script.

All corruptions are keyed by the sampling ``seed``, so the same plan
produces the same corrupted scripts in every run and process.
"""

from __future__ import annotations

from repro.errors import LLMRateLimitError, LLMTimeoutError
from repro.faults.plan import (
    LLM_MALFORMED,
    LLM_OUT_OF_RANGE,
    LLM_TRANSIENT,
    LLM_TRUNCATE,
    LLM_UNKNOWN_KNOB,
    FaultPlan,
)
from repro.llm.client import LLMClient, LLMResponse


class FaultyLLMClient(LLMClient):
    """A fault-injecting decorator around another LLM client."""

    def __init__(self, inner: LLMClient, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self.model = inner.model
        self.max_input_tokens = inner.max_input_tokens
        # Attempt counters per sampling key, so transient faults clear
        # after ``transient_count`` failures.  Counters are the only
        # mutable state and live purely on the parent process side (the
        # client is never shipped to selection workers).
        self._attempts: dict[str, int] = {}

    def complete(
        self, prompt: str, *, temperature: float = 0.7, seed: int = 0
    ) -> LLMResponse:
        key = f"sample-{seed}"
        failures = self.plan.transient_count(LLM_TRANSIENT, key)
        attempt = self._attempts.get(key, 0)
        if attempt < failures:
            self._attempts[key] = attempt + 1
            decision = self.plan.decide(LLM_TRANSIENT, key)
            label = decision.describe() if decision else key
            if attempt % 2 == 0:
                raise LLMTimeoutError(f"injected LLM timeout {label}")
            raise LLMRateLimitError(f"injected LLM rate limit {label}")

        response = self._inner.complete(prompt, temperature=temperature, seed=seed)
        text = self._corrupt(response.text, key)
        if text is response.text:
            return response
        return LLMResponse(
            text=text,
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
            model=response.model,
        )

    # -- corruptions -------------------------------------------------------------

    def _corrupt(self, text: str, key: str) -> str:
        decision = self.plan.decide(LLM_UNKNOWN_KNOB, key)
        if decision is not None:
            text = self._inject_unknown_knob(text, decision.magnitude)
        decision = self.plan.decide(LLM_OUT_OF_RANGE, key)
        if decision is not None:
            text = self._inject_out_of_range(text, decision.magnitude)
        decision = self.plan.decide(LLM_MALFORMED, key)
        if decision is not None:
            text = self._garble(text, decision.magnitude)
        decision = self.plan.decide(LLM_TRUNCATE, key)
        if decision is not None:
            # Keep between 10% and 90% of the script: magnitude 0 should
            # still leave a recognizably truncated (non-empty) prefix.
            keep = int(len(text) * (0.1 + 0.8 * decision.magnitude))
            text = text[:keep]
        return text

    @staticmethod
    def _inject_unknown_knob(text: str, magnitude: float) -> str:
        value = 1 + int(magnitude * 4096)
        return text + f"\nALTER SYSTEM SET quantum_flux_capacity = {value};"

    @staticmethod
    def _inject_out_of_range(text: str, magnitude: float) -> str:
        # A petabyte-scale shared_buffers: syntactically valid, rejected
        # by knob bounds validation.
        petabytes = 1 + int(magnitude * 9)
        return text + (
            f"\nALTER SYSTEM SET shared_buffers = '{petabytes * 1024 * 1024}GB';"
        )

    @staticmethod
    def _garble(text: str, magnitude: float) -> str:
        """Deterministically damage script syntax."""
        lines = text.split("\n")
        # Damage a contiguous band of lines whose position depends on
        # the magnitude draw; mid-script damage exercises the parser's
        # per-line recovery, not just prefix/suffix handling.
        if not lines:
            return text
        start = int(magnitude * len(lines))
        stop = min(len(lines), start + 2)
        for position in range(start, stop):
            lines[position] = (
                lines[position].replace(";", "").replace("=", "~").replace("SET ", "ST ")
            )
        return "\n".join(lines)
