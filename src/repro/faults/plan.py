"""Deterministic, seeded fault plans.

A :class:`FaultPlan` decides -- purely from ``(seed, site, key)`` --
whether a fault fires at a given injection site, how severe it is, and
how many transient retries it costs.  Decisions are derived from SHA-256
digests, so they are:

- **deterministic**: the same plan object, a pickled copy of it, or a
  plan rebuilt from the same constructor arguments in another process
  all make identical decisions (no ``PYTHONHASHSEED`` dependence, no
  mutable state),
- **replayable**: every injected fault is labeled with its
  ``(seed, site, key)`` triple; :meth:`FaultPlan.single_site` rebuilds
  a plan that reproduces exactly the faults of one site, and
- **order-independent**: a decision never depends on how many faults
  fired before it, so serial and parallel selection see identical
  faults for identical work.

The plan is consulted through three methods only -- :meth:`fires`,
:meth:`magnitude`, and :meth:`transient_count` -- keeping the hook cost
in fault-free runs to a single ``is None`` check at each site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ReproError

#: Engine-level sites (consulted by :mod:`repro.db.engine`).
ENGINE_QUERY_CRASH = "engine.query_crash"
ENGINE_INDEX_INTERRUPT = "engine.index_interrupt"
ENGINE_IO_TRANSIENT = "engine.io_transient"
ENGINE_OOM = "engine.oom"

#: LLM-level sites (consulted by :class:`repro.faults.llm.FaultyLLMClient`).
LLM_TRANSIENT = "llm.transient"
LLM_TRUNCATE = "llm.truncate"
LLM_UNKNOWN_KNOB = "llm.unknown_knob"
LLM_OUT_OF_RANGE = "llm.out_of_range"
LLM_MALFORMED = "llm.malformed"

ENGINE_SITES = frozenset(
    {ENGINE_QUERY_CRASH, ENGINE_INDEX_INTERRUPT, ENGINE_IO_TRANSIENT, ENGINE_OOM}
)
LLM_SITES = frozenset(
    {LLM_TRANSIENT, LLM_TRUNCATE, LLM_UNKNOWN_KNOB, LLM_OUT_OF_RANGE, LLM_MALFORMED}
)
ALL_SITES = ENGINE_SITES | LLM_SITES


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """One fired fault, fully labeled for replay."""

    site: str
    key: str
    seed: int
    #: Severity in [0, 1): where a crash lands mid-query, how much of a
    #: script survives truncation, and so on.
    magnitude: float

    def describe(self) -> str:
        """The replay label printed with every injected fault."""
        return f"(seed={self.seed}, site={self.site!r}, key={self.key!r})"


class FaultPlan:
    """A picklable, seed-derived schedule of injected faults.

    ``density`` is the per-(site, key) firing probability mass; it can
    be overridden per site via ``site_density``.  ``sites`` restricts
    which sites may fire at all (defaults to every known site).
    """

    __slots__ = ("seed", "density", "sites", "site_density", "max_transient")

    def __init__(
        self,
        seed: int,
        *,
        density: float = 0.1,
        sites: frozenset[str] | set[str] | None = None,
        site_density: dict[str, float] | None = None,
        max_transient: int = 2,
    ) -> None:
        if not 0.0 <= density <= 1.0:
            raise ReproError(f"fault density must be in [0, 1], got {density!r}")
        if max_transient < 0:
            raise ReproError("max_transient cannot be negative")
        chosen = frozenset(ALL_SITES if sites is None else sites)
        unknown = chosen - ALL_SITES
        if unknown:
            raise ReproError(f"unknown fault sites: {sorted(unknown)}")
        self.seed = seed
        self.density = density
        self.sites = chosen
        self.site_density = dict(site_density or {})
        self.max_transient = max_transient

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def single_site(
        cls, seed: int, site: str, *, density: float = 1.0, max_transient: int = 2
    ) -> "FaultPlan":
        """Rebuild the plan that replays one site's faults exactly.

        Given the ``(seed, site)`` pair printed with a chaos failure,
        ``FaultPlan.single_site(seed, site)`` fires the same faults at
        the same keys (density 1.0 is a superset of any density: the
        unit draw per key is identical, only the threshold moves).
        """
        return cls(seed, density=density, sites={site}, max_transient=max_transient)

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "seed": self.seed,
            "density": self.density,
            "sites": self.sites,
            "site_density": self.site_density,
            "max_transient": self.max_transient,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, density={self.density}, "
            f"sites={sorted(self.sites)})"
        )

    # -- the decision function ----------------------------------------------------

    def _unit(self, site: str, key: str, salt: str = "") -> float:
        """A uniform draw in [0, 1) pure in ``(seed, site, key, salt)``."""
        text = f"{self.seed}|{site}|{key}|{salt}"
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(2**64)

    def _density_for(self, site: str) -> float:
        return self.site_density.get(site, self.density)

    def fires(self, site: str, key: str) -> bool:
        """Whether the fault at ``(site, key)`` is scheduled to fire."""
        if site not in self.sites:
            return False
        return self._unit(site, key) < self._density_for(site)

    def magnitude(self, site: str, key: str) -> float:
        """Severity draw in [0, 1) for a fired fault (independent of
        the firing draw, so densities don't skew severities)."""
        return self._unit(site, key, salt="magnitude")

    def transient_count(self, site: str, key: str) -> int:
        """How many consecutive transient failures precede success.

        Zero when the site doesn't fire; otherwise between 1 and
        ``max_transient``, derived from the severity draw.
        """
        if not self.fires(site, key):
            return 0
        if self.max_transient == 0:
            return 0
        return 1 + int(self.magnitude(site, key) * self.max_transient)

    def decide(self, site: str, key: str) -> FaultDecision | None:
        """The fired-fault record for ``(site, key)``, or ``None``."""
        if not self.fires(site, key):
            return None
        return FaultDecision(
            site=site, key=key, seed=self.seed, magnitude=self.magnitude(site, key)
        )
