"""SQL lexer.

Splits SQL text into a stream of typed tokens.  The lexer is
case-insensitive for keywords and identifiers (identifiers are folded to
lower case, matching PostgreSQL's default behaviour) and preserves the
original text of literals.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.errors import SQLError


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


# Keywords recognised by the parser.  Anything else alphabetic is an
# identifier.  Kept deliberately small: this is an OLAP-query dialect.
KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "by", "having", "order",
        "limit", "offset", "as", "and", "or", "not", "in", "like",
        "between", "is", "null", "exists", "distinct", "join", "inner",
        "left", "right", "full", "outer", "cross", "on", "asc", "desc",
        "case", "when", "then", "else", "end", "union", "all", "any",
        "interval", "date", "extract", "substring", "cast", "true",
        "false",
    }
)

_OPERATORS = ("<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


class Lexer:
    """Single-pass scanner over SQL text."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokens(self) -> list[Token]:
        """Scan the entire input and return all tokens plus a trailing EOF."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._pos >= self._length:
            return Token(TokenType.EOF, "", self._pos)

        start = self._pos
        char = self._text[start]

        if char == "'":
            return self._scan_string(start)
        if char.isdigit() or (char == "." and self._peek_is_digit(start + 1)):
            return self._scan_number(start)
        if char.isalpha() or char == "_":
            return self._scan_word(start)
        if char == '"':
            return self._scan_quoted_identifier(start)
        for op in _OPERATORS:
            if self._text.startswith(op, start):
                self._pos = start + len(op)
                return Token(TokenType.OPERATOR, op, start)
        if char in _PUNCT:
            self._pos = start + 1
            return Token(TokenType.PUNCT, char, start)
        raise SQLError(f"unexpected character {char!r}", position=start)

    def _skip_whitespace_and_comments(self) -> None:
        text, length = self._text, self._length
        while self._pos < length:
            char = text[self._pos]
            if char.isspace():
                self._pos += 1
            elif text.startswith("--", self._pos):
                newline = text.find("\n", self._pos)
                self._pos = length if newline < 0 else newline + 1
            elif text.startswith("/*", self._pos):
                close = text.find("*/", self._pos + 2)
                if close < 0:
                    raise SQLError("unterminated block comment", position=self._pos)
                self._pos = close + 2
            else:
                return

    def _peek_is_digit(self, pos: int) -> bool:
        return pos < self._length and self._text[pos].isdigit()

    def _scan_string(self, start: int) -> Token:
        pos = start + 1
        pieces: list[str] = []
        while pos < self._length:
            char = self._text[pos]
            if char == "'":
                # '' escapes a single quote inside a string literal.
                if pos + 1 < self._length and self._text[pos + 1] == "'":
                    pieces.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(pieces), start)
            pieces.append(char)
            pos += 1
        raise SQLError("unterminated string literal", position=start)

    def _scan_number(self, start: int) -> Token:
        pos = start
        seen_dot = False
        seen_exp = False
        while pos < self._length:
            char = self._text[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                pos += 1
            elif char in "eE" and not seen_exp and pos > start:
                nxt = pos + 1
                if nxt < self._length and self._text[nxt] in "+-":
                    nxt += 1
                if nxt < self._length and self._text[nxt].isdigit():
                    seen_exp = True
                    pos = nxt
                else:
                    break
            else:
                break
        self._pos = pos
        return Token(TokenType.NUMBER, self._text[start:pos], start)

    def _scan_word(self, start: int) -> Token:
        pos = start
        while pos < self._length and (self._text[pos].isalnum() or self._text[pos] == "_"):
            pos += 1
        self._pos = pos
        word = self._text[start:pos].lower()
        kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
        return Token(kind, word, start)

    def _scan_quoted_identifier(self, start: int) -> Token:
        close = self._text.find('"', start + 1)
        if close < 0:
            raise SQLError("unterminated quoted identifier", position=start)
        self._pos = close + 1
        return Token(TokenType.IDENT, self._text[start + 1 : close].lower(), start)


#: Memoized token streams keyed by content hash of the SQL text.  The
#: tuning pipeline lexes the same benchmark queries once per candidate
#: configuration, per baseline, and per figure; token streams are
#: immutable (frozen :class:`Token`), so sharing is safe.  Bounded so a
#: pathological stream of distinct texts cannot grow it without bound.
_TOKEN_CACHE: dict[bytes, tuple[Token, ...]] = {}
_MAX_TOKEN_CACHE_ENTRIES = 4096


def content_key(text: str) -> bytes:
    """Stable content hash used as the lexer/parser memoization key."""
    return hashlib.sha256(text.encode()).digest()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``, returning all tokens including the EOF sentinel.

    Memoized per content hash: repeated tokenization of identical SQL is
    O(1) plus one list copy.  The returned list is a fresh container, so
    callers may mutate it without poisoning the cache.
    """
    key = content_key(text)
    cached = _TOKEN_CACHE.get(key)
    if cached is None:
        cached = tuple(Lexer(text).tokens())
        if len(_TOKEN_CACHE) >= _MAX_TOKEN_CACHE_ENTRIES:
            _TOKEN_CACHE.clear()
        _TOKEN_CACHE[key] = cached
    return list(cached)
