"""Typed AST for the analytical SQL dialect.

All nodes are frozen dataclasses so they can be hashed, compared, and
safely shared between the analyzer, the cost model, and the compressor.
Each expression node implements ``unparse()`` which renders SQL text
equivalent to the original input (used by the obfuscation ablation and
for readable error messages).
"""

from __future__ import annotations

from dataclasses import dataclass


class Node:
    """Marker base class for all AST nodes."""

    def unparse(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ColumnRef(Node):
    """A possibly qualified column reference like ``l.l_orderkey``."""

    table: str | None
    column: str

    def unparse(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class Literal(Node):
    """A constant: number, string, boolean, or NULL."""

    value: float | int | str | bool | None
    kind: str  # "number" | "string" | "bool" | "null"

    def unparse(self) -> str:
        if self.kind == "string":
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        if self.kind == "null":
            return "NULL"
        if self.kind == "bool":
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Star(Node):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: str | None = None

    def unparse(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True, slots=True)
class FuncCall(Node):
    """A function or aggregate call such as ``sum(x)`` or ``count(distinct y)``."""

    name: str
    args: tuple[Node, ...]
    distinct: bool = False

    def unparse(self) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True, slots=True)
class BinaryOp(Node):
    """A binary expression: comparisons, arithmetic, AND/OR, LIKE."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op.upper()} {self.right.unparse()})"


@dataclass(frozen=True, slots=True)
class UnaryOp(Node):
    """NOT and unary minus."""

    op: str
    operand: Node

    def unparse(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operand.unparse()})"
        return f"({self.op}{self.operand.unparse()})"


@dataclass(frozen=True, slots=True)
class Between(Node):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Node
    low: Node
    high: Node
    negated: bool = False

    def unparse(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.expr.unparse()} {word} "
            f"{self.low.unparse()} AND {self.high.unparse()})"
        )


@dataclass(frozen=True, slots=True)
class InList(Node):
    """``expr [NOT] IN (v1, v2, ...)``."""

    expr: Node
    items: tuple[Node, ...]
    negated: bool = False

    def unparse(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.unparse() for item in self.items)
        return f"({self.expr.unparse()} {word} ({inner}))"


@dataclass(frozen=True, slots=True)
class InSubquery(Node):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Node
    subquery: "SelectStmt"
    negated: bool = False

    def unparse(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.expr.unparse()} {word} ({self.subquery.unparse()}))"


@dataclass(frozen=True, slots=True)
class Exists(Node):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStmt"
    negated: bool = False

    def unparse(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{word} ({self.subquery.unparse()})"


@dataclass(frozen=True, slots=True)
class ScalarSubquery(Node):
    """A subquery used as a scalar value, e.g. ``x < (SELECT avg(y) ...)``."""

    subquery: "SelectStmt"

    def unparse(self) -> str:
        return f"({self.subquery.unparse()})"


@dataclass(frozen=True, slots=True)
class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    expr: Node
    negated: bool = False

    def unparse(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.expr.unparse()} {word})"


@dataclass(frozen=True, slots=True)
class CaseExpr(Node):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: tuple[tuple[Node, Node], ...]
    default: Node | None = None

    def unparse(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond.unparse()} THEN {value.unparse()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.unparse()}")
        parts.append("END")
        return " ".join(parts)


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SelectItem(Node):
    """One entry of the select list with an optional alias."""

    expr: Node
    alias: str | None = None

    def unparse(self) -> str:
        text = self.expr.unparse()
        return f"{text} AS {self.alias}" if self.alias else text


@dataclass(frozen=True, slots=True)
class TableRef(Node):
    """A base table in the FROM clause with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        """The name by which columns of this table are qualified."""
        return self.alias or self.table

    def unparse(self) -> str:
        return f"{self.table} AS {self.alias}" if self.alias else self.table


@dataclass(frozen=True, slots=True)
class Join(Node):
    """An explicit ``lhs JOIN rhs ON condition``."""

    kind: str  # "inner" | "left" | "right" | "full" | "cross"
    left: Node  # TableRef or Join
    right: Node
    condition: Node | None

    def unparse(self) -> str:
        word = {"inner": "JOIN", "cross": "CROSS JOIN"}.get(
            self.kind, f"{self.kind.upper()} JOIN"
        )
        text = f"{self.left.unparse()} {word} {self.right.unparse()}"
        if self.condition is not None:
            text += f" ON {self.condition.unparse()}"
        return text


@dataclass(frozen=True, slots=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Node
    descending: bool = False

    def unparse(self) -> str:
        return self.expr.unparse() + (" DESC" if self.descending else "")


@dataclass(frozen=True, slots=True)
class SelectStmt(Node):
    """A full SELECT statement."""

    items: tuple[SelectItem, ...]
    from_clause: tuple[Node, ...] = ()
    where: Node | None = None
    group_by: tuple[Node, ...] = ()
    having: Node | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def unparse(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.unparse() for item in self.items))
        if self.from_clause:
            parts.append("FROM " + ", ".join(t.unparse() for t in self.from_clause))
        if self.where is not None:
            parts.append("WHERE " + self.where.unparse())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.unparse() for g in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.unparse())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def walk(node: Node):
    """Yield ``node`` and every descendant expression/statement node.

    Traversal is pre-order and covers every dataclass field that holds a
    Node or a tuple of Nodes, so analyzers don't need per-type visitors.
    """
    stack: list[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        slots = getattr(type(current), "__dataclass_fields__", {})
        for name in slots:
            value = getattr(current, name)
            if isinstance(value, Node):
                stack.append(value)
            elif isinstance(value, tuple):
                for element in value:
                    if isinstance(element, Node):
                        stack.append(element)
                    elif isinstance(element, tuple):
                        stack.extend(e for e in element if isinstance(e, Node))
