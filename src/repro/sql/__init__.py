"""A compact SQL front-end for analytical queries.

The lambda-Tune pipeline needs to understand the *structure* of OLAP
queries: which tables are joined on which columns, which columns are
filtered, and which aggregates run.  This subpackage provides a lexer,
a recursive-descent parser producing a typed AST, and an analyzer that
extracts the join graph and predicate information consumed by the
workload compressor (paper §3.2) and the lazy index mapper (paper §5.1).

The dialect covers the subset of SQL used by the bundled TPC-H, TPC-DS
and Join Order Benchmark workloads: SELECT/FROM/WHERE/GROUP BY/HAVING/
ORDER BY/LIMIT, comma joins and explicit JOIN..ON, AND/OR/NOT, BETWEEN,
IN, LIKE, IS [NOT] NULL, EXISTS and scalar subqueries, aggregate and
scalar function calls, and arithmetic expressions.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import Parser, parse_select
from repro.sql.analyzer import QueryInfo, analyze
from repro.sql import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse_select",
    "QueryInfo",
    "analyze",
    "ast",
]
