"""Semantic analysis of parsed queries.

The analyzer resolves table aliases against the statement's FROM clause
and extracts the facts the tuning pipeline needs:

- **join conditions** -- equality predicates between columns of two
  different tables (from WHERE conjuncts and JOIN..ON clauses).  These
  feed the workload compressor (paper §3.2).
- **filter predicates** -- single-table restrictions with a coarse
  selectivity estimate, used by the simulator's planner and by the lazy
  index mapper (paper §5.1).
- **referenced columns per table** -- used to decide which hypothetical
  indexes could be relevant for a query.
- **aggregate calls, group-by keys and order-by keys** -- used by the
  cost model.

Subqueries are analyzed recursively and their facts merged into the
parent's :class:`QueryInfo` (the paper treats the workload as a flat set
of operators per query).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.parser import parse_select

_AGGREGATES = frozenset({"sum", "avg", "count", "min", "max"})

# Coarse default selectivities per predicate shape, in the spirit of the
# classical System-R defaults.  The simulator refines them with catalog
# statistics when available.
_DEFAULT_SELECTIVITY = {
    "=": 0.05,
    "<": 0.33,
    ">": 0.33,
    "<=": 0.33,
    ">=": 0.33,
    "<>": 0.9,
    "like": 0.15,
    "between": 0.25,
    "in": 0.2,
    "isnull": 0.05,
}


@dataclass(frozen=True, slots=True)
class JoinCondition:
    """An equi-join predicate between two table columns.

    Columns are stored fully qualified as ``table.column`` using *base
    table* names (aliases resolved), with the lexicographically smaller
    side first so that symmetric conditions compare equal.
    """

    left: str
    right: str

    @staticmethod
    def make(left: str, right: str) -> "JoinCondition":
        if right < left:
            left, right = right, left
        return JoinCondition(left=left, right=right)

    @property
    def columns(self) -> tuple[str, str]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True)
class FilterPredicate:
    """A single-table restriction on one column."""

    table: str
    column: str
    op: str
    selectivity: float

    @property
    def qualified_column(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(slots=True)
class QueryInfo:
    """All analyzer facts about one query."""

    tables: set[str] = field(default_factory=set)
    join_conditions: set[JoinCondition] = field(default_factory=set)
    filters: list[FilterPredicate] = field(default_factory=list)
    columns_by_table: dict[str, set[str]] = field(default_factory=dict)
    group_by_columns: set[str] = field(default_factory=set)
    order_by_columns: set[str] = field(default_factory=set)
    aggregates: list[str] = field(default_factory=list)
    has_subquery: bool = False

    @property
    def referenced_columns(self) -> set[str]:
        """All ``table.column`` strings referenced anywhere in the query."""
        return {
            f"{table}.{column}"
            for table, columns in self.columns_by_table.items()
            for column in columns
        }

    def filter_selectivity(self, table: str) -> float:
        """Combined (independence-assumption) selectivity of all filters on a table."""
        product = 1.0
        for predicate in self.filters:
            if predicate.table == table:
                product *= predicate.selectivity
        return product


class _Scope:
    """Alias resolution for one SELECT level."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.alias_to_table: dict[str, str] = {}
        self.parent = parent

    def add(self, ref: ast.TableRef) -> None:
        self.alias_to_table[ref.name] = ref.table
        # The bare table name also resolves to itself unless shadowed.
        self.alias_to_table.setdefault(ref.table, ref.table)

    def resolve(self, qualifier: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if qualifier in scope.alias_to_table:
                return scope.alias_to_table[qualifier]
            scope = scope.parent
        return None


class Analyzer:
    """Walks a parsed statement and accumulates a :class:`QueryInfo`.

    An optional ``column_owner`` mapping (column name -> table name) lets
    the analyzer resolve unqualified column references; the workload
    schemas provide it since benchmark columns are prefixed uniquely
    (``l_orderkey`` belongs to ``lineitem``).
    """

    def __init__(self, column_owner: dict[str, str] | None = None) -> None:
        self._column_owner = column_owner or {}
        self._info = QueryInfo()

    def analyze(self, stmt: ast.SelectStmt) -> QueryInfo:
        self._collect(stmt, _Scope())
        return self._info

    # -- statement traversal -------------------------------------------------

    def _collect(self, stmt: ast.SelectStmt, parent: _Scope) -> None:
        scope = _Scope(parent)
        for source in stmt.from_clause:
            self._register_source(source, scope)

        for source in stmt.from_clause:
            self._collect_join_tree(source, scope)

        if stmt.where is not None:
            self._collect_predicate(stmt.where, scope)
        if stmt.having is not None:
            self._collect_expr(stmt.having, scope)

        for item in stmt.items:
            self._collect_expr(item.expr, scope)
        for key in stmt.group_by:
            self._collect_expr(key, scope)
            if (resolved := self._resolve_column(key, scope)) is not None:
                self._info.group_by_columns.add(resolved)
        for order in stmt.order_by:
            self._collect_expr(order.expr, scope)
            if (resolved := self._resolve_column(order.expr, scope)) is not None:
                self._info.order_by_columns.add(resolved)

    def _register_source(self, source: ast.Node, scope: _Scope) -> None:
        if isinstance(source, ast.TableRef):
            scope.add(source)
            self._info.tables.add(source.table)
            self._info.columns_by_table.setdefault(source.table, set())
        elif isinstance(source, ast.Join):
            self._register_source(source.left, scope)
            self._register_source(source.right, scope)
        else:  # pragma: no cover - parser only emits the above
            raise SQLError(f"unsupported FROM item: {type(source).__name__}")

    def _collect_join_tree(self, source: ast.Node, scope: _Scope) -> None:
        if isinstance(source, ast.Join):
            self._collect_join_tree(source.left, scope)
            self._collect_join_tree(source.right, scope)
            if source.condition is not None:
                self._collect_predicate(source.condition, scope)

    # -- predicate extraction --------------------------------------------------

    def _collect_predicate(self, expr: ast.Node, scope: _Scope) -> None:
        """Split a boolean expression into conjuncts and classify each."""
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            self._collect_predicate(expr.left, scope)
            self._collect_predicate(expr.right, scope)
            return
        self._classify_conjunct(expr, scope)

    def _classify_conjunct(self, expr: ast.Node, scope: _Scope) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op in _DEFAULT_SELECTIVITY:
            left = self._resolve_column(expr.left, scope)
            right = self._resolve_column(expr.right, scope)
            if expr.op == "=" and left is not None and right is not None:
                left_table = left.rsplit(".", 1)[0]
                right_table = right.rsplit(".", 1)[0]
                if left_table != right_table:
                    self._info.join_conditions.add(JoinCondition.make(left, right))
                    self._collect_expr(expr.left, scope)
                    self._collect_expr(expr.right, scope)
                    return
            for side, other in ((left, expr.right), (right, expr.left)):
                if side is not None and not isinstance(other, ast.ColumnRef):
                    table, column = side.rsplit(".", 1)
                    self._info.filters.append(
                        FilterPredicate(
                            table=table,
                            column=column,
                            op=expr.op,
                            selectivity=_DEFAULT_SELECTIVITY[expr.op],
                        )
                    )
            self._collect_expr(expr.left, scope)
            self._collect_expr(expr.right, scope)
            return

        if isinstance(expr, ast.Between):
            self._add_filter_for(expr.expr, "between", scope)
            self._collect_expr(expr, scope)
            return
        if isinstance(expr, (ast.InList, ast.InSubquery)):
            self._add_filter_for(expr.expr, "in", scope)
            self._collect_expr(expr, scope)
            return
        if isinstance(expr, ast.IsNull):
            self._add_filter_for(expr.expr, "isnull", scope)
            self._collect_expr(expr, scope)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "or":
            # OR conjuncts contribute column references but no precise
            # selectivity; approximate with a LIKE-level default per side.
            self._collect_expr(expr, scope)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            self._collect_predicate(expr.operand, scope)
            return
        self._collect_expr(expr, scope)

    def _add_filter_for(self, expr: ast.Node, op: str, scope: _Scope) -> None:
        resolved = self._resolve_column(expr, scope)
        if resolved is not None:
            table, column = resolved.rsplit(".", 1)
            self._info.filters.append(
                FilterPredicate(
                    table=table,
                    column=column,
                    op=op,
                    selectivity=_DEFAULT_SELECTIVITY[op],
                )
            )

    # -- expression traversal ---------------------------------------------------

    def _collect_expr(self, expr: ast.Node, scope: _Scope) -> None:
        if isinstance(expr, ast.ColumnRef):
            self._record_column(expr, scope)
            return
        if isinstance(expr, ast.FuncCall):
            if expr.name in _AGGREGATES:
                self._info.aggregates.append(expr.name)
            for arg in expr.args:
                self._collect_expr(arg, scope)
            return
        if isinstance(expr, (ast.Exists, ast.InSubquery, ast.ScalarSubquery)):
            self._info.has_subquery = True
            if isinstance(expr, ast.InSubquery):
                self._collect_expr(expr.expr, scope)
                self._record_semijoin(expr, scope)
            self._collect(expr.subquery, scope)
            return
        if isinstance(expr, ast.BinaryOp):
            self._collect_expr(expr.left, scope)
            self._collect_expr(expr.right, scope)
            return
        if isinstance(expr, ast.UnaryOp):
            self._collect_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.Between):
            self._collect_expr(expr.expr, scope)
            self._collect_expr(expr.low, scope)
            self._collect_expr(expr.high, scope)
            return
        if isinstance(expr, ast.InList):
            self._collect_expr(expr.expr, scope)
            for item in expr.items:
                self._collect_expr(item, scope)
            return
        if isinstance(expr, ast.IsNull):
            self._collect_expr(expr.expr, scope)
            return
        if isinstance(expr, ast.CaseExpr):
            for cond, value in expr.branches:
                self._collect_expr(cond, scope)
                self._collect_expr(value, scope)
            if expr.default is not None:
                self._collect_expr(expr.default, scope)
            return
        # Literals and Star carry no column references.

    def _record_semijoin(self, expr: ast.InSubquery, scope: _Scope) -> None:
        """Register ``outer_col IN (SELECT inner_col ...)`` as a semi-join.

        A real optimizer turns this shape into a (semi) join; recording
        it keeps the flattened join graph connected, which matters both
        for the compressor and for avoiding phantom cross products in
        the simulated planner.
        """
        subquery = expr.subquery
        if len(subquery.items) != 1:
            return
        inner_expr = subquery.items[0].expr
        if not isinstance(inner_expr, ast.ColumnRef):
            return
        child = _Scope(scope)
        for source in subquery.from_clause:
            self._register_scope_only(source, child)
        outer = self._resolve_column(expr.expr, scope)
        inner = self._resolve_column(inner_expr, child)
        if outer is None or inner is None:
            return
        outer_table = outer.rsplit(".", 1)[0]
        inner_table = inner.rsplit(".", 1)[0]
        if outer_table != inner_table:
            self._info.join_conditions.add(JoinCondition.make(outer, inner))

    def _register_scope_only(self, source: ast.Node, scope: _Scope) -> None:
        """Register FROM aliases without touching collected facts."""
        if isinstance(source, ast.TableRef):
            scope.add(source)
        elif isinstance(source, ast.Join):
            self._register_scope_only(source.left, scope)
            self._register_scope_only(source.right, scope)

    def _record_column(self, ref: ast.ColumnRef, scope: _Scope) -> None:
        resolved = self._resolve_column(ref, scope)
        if resolved is None:
            return
        table, column = resolved.rsplit(".", 1)
        self._info.columns_by_table.setdefault(table, set()).add(column)

    def _resolve_column(self, expr: ast.Node, scope: _Scope) -> str | None:
        """Return ``table.column`` for a column reference, else None."""
        if not isinstance(expr, ast.ColumnRef):
            return None
        if expr.table is not None:
            table = scope.resolve(expr.table)
            if table is None:
                # Unknown qualifier: keep as-is so obviously broken SQL
                # still analyzes (the engine will reject it at execution).
                table = expr.table
            return f"{table}.{expr.column}"
        owner = self._column_owner.get(expr.column)
        if owner is not None:
            return f"{owner}.{expr.column}"
        return None


def analyze(
    query: str | ast.SelectStmt,
    column_owner: dict[str, str] | None = None,
) -> QueryInfo:
    """Analyze SQL text or a parsed statement."""
    stmt = parse_select(query) if isinstance(query, str) else query
    return Analyzer(column_owner).analyze(stmt)
