"""Recursive-descent parser for the analytical SQL dialect.

Grammar (simplified)::

    select    := SELECT [DISTINCT] items FROM from_list [WHERE expr]
                 [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                 [LIMIT n]
    from_list := from_item ("," from_item)*
    from_item := table_ref (join_clause)*
    expr      := or_expr, with standard precedence
                 OR < AND < NOT < comparison < additive < multiplicative

The parser produces the AST defined in :mod:`repro.sql.ast`.
"""

from __future__ import annotations

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, content_key, tokenize

_COMPARISON_OPS = frozenset({"=", "<", ">", "<=", ">=", "<>", "!="})
_JOIN_KINDS = frozenset({"join", "inner", "left", "right", "full", "cross"})


class Parser:
    """Parses one SELECT statement from a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, name: str) -> Token:
        token = self._current
        if not token.is_keyword(name):
            raise SQLError(
                f"expected {name.upper()!r}, got {token.value!r}",
                position=token.position,
            )
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._current
        if token.type is not TokenType.PUNCT or token.value != char:
            raise SQLError(
                f"expected {char!r}, got {token.value!r}", position=token.position
            )
        return self._advance()

    def _accept_keyword(self, *names: str) -> Token | None:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    def _accept_punct(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCT and token.value == char:
            self._advance()
            return True
        return False

    def _accept_operator(self, *ops: str) -> Token | None:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    # -- statement level ----------------------------------------------------

    def parse(self) -> ast.SelectStmt:
        """Parse a full statement and require that all input is consumed."""
        stmt = self.parse_select()
        self._accept_punct(";")
        token = self._current
        if token.type is not TokenType.EOF:
            raise SQLError(
                f"unexpected trailing input {token.value!r}", position=token.position
            )
        return stmt

    def parse_select(self) -> ast.SelectStmt:
        """Parse a SELECT statement (used for top level and subqueries)."""
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None

        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_clause: tuple[ast.Node, ...] = ()
        if self._accept_keyword("from"):
            sources = [self._parse_from_item()]
            while self._accept_punct(","):
                sources.append(self._parse_from_item())
            from_clause = tuple(sources)

        where = self._parse_expr() if self._accept_keyword("where") else None

        group_by: tuple[ast.Node, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            keys = [self._parse_expr()]
            while self._accept_punct(","):
                keys.append(self._parse_expr())
            group_by = tuple(keys)

        having = self._parse_expr() if self._accept_keyword("having") else None

        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            orders = [self._parse_order_item()]
            while self._accept_punct(","):
                orders.append(self._parse_order_item())
            order_by = tuple(orders)

        limit: int | None = None
        if self._accept_keyword("limit"):
            token = self._current
            if token.type is not TokenType.NUMBER:
                raise SQLError("LIMIT requires a number", position=token.position)
            self._advance()
            limit = int(float(token.value))

        return ast.SelectStmt(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._parse_identifier("alias")
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr=expr, descending=descending)

    def _parse_identifier(self, what: str) -> str:
        token = self._current
        if token.type is not TokenType.IDENT:
            raise SQLError(
                f"expected {what}, got {token.value!r}", position=token.position
            )
        return self._advance().value

    # -- FROM clause ---------------------------------------------------------

    def _parse_from_item(self) -> ast.Node:
        node: ast.Node = self._parse_table_ref()
        while self._current.is_keyword(*_JOIN_KINDS):
            node = self._parse_join(node)
        return node

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._parse_identifier("table name")
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._parse_identifier("alias")
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(table=table, alias=alias)

    def _parse_join(self, left: ast.Node) -> ast.Join:
        kind = "inner"
        if self._accept_keyword("cross"):
            kind = "cross"
        elif self._accept_keyword("inner"):
            kind = "inner"
        elif (token := self._accept_keyword("left", "right", "full")) is not None:
            kind = token.value
            self._accept_keyword("outer")
        self._expect_keyword("join")
        right = self._parse_table_ref()
        condition: ast.Node | None = None
        if kind != "cross":
            self._expect_keyword("on")
            condition = self._parse_expr()
        return ast.Join(kind=kind, left=left, right=right, condition=condition)

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Node:
        return self._parse_or()

    def _parse_or(self) -> ast.Node:
        node = self._parse_and()
        while self._accept_keyword("or"):
            node = ast.BinaryOp(op="or", left=node, right=self._parse_and())
        return node

    def _parse_and(self) -> ast.Node:
        node = self._parse_not()
        while self._accept_keyword("and"):
            node = ast.BinaryOp(op="and", left=node, right=self._parse_not())
        return node

    def _parse_not(self) -> ast.Node:
        if self._accept_keyword("not"):
            return ast.UnaryOp(op="not", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Node:
        if self._current.is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.Exists(subquery=subquery)

        node = self._parse_additive()
        negated = self._accept_keyword("not") is not None

        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(expr=node, low=low, high=high, negated=negated)

        if self._accept_keyword("in"):
            return self._parse_in_tail(node, negated)

        if self._accept_keyword("like"):
            pattern = self._parse_additive()
            like = ast.BinaryOp(op="like", left=node, right=pattern)
            return ast.UnaryOp(op="not", operand=like) if negated else like

        if negated:
            token = self._current
            raise SQLError(
                f"expected BETWEEN/IN/LIKE after NOT, got {token.value!r}",
                position=token.position,
            )

        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return ast.IsNull(expr=node, negated=is_negated)

        if (op := self._accept_operator(*_COMPARISON_OPS)) is not None:
            right = self._parse_additive()
            normalized = "<>" if op.value == "!=" else op.value
            return ast.BinaryOp(op=normalized, left=node, right=right)

        return node

    def _parse_in_tail(self, expr: ast.Node, negated: bool) -> ast.Node:
        self._expect_punct("(")
        if self._current.is_keyword("select"):
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.InSubquery(expr=expr, subquery=subquery, negated=negated)
        items = [self._parse_additive()]
        while self._accept_punct(","):
            items.append(self._parse_additive())
        self._expect_punct(")")
        return ast.InList(expr=expr, items=tuple(items), negated=negated)

    def _parse_additive(self) -> ast.Node:
        node = self._parse_multiplicative()
        while (op := self._accept_operator("+", "-", "||")) is not None:
            node = ast.BinaryOp(
                op=op.value, left=node, right=self._parse_multiplicative()
            )
        return node

    def _parse_multiplicative(self) -> ast.Node:
        node = self._parse_unary()
        while (op := self._accept_operator("*", "/", "%")) is not None:
            node = ast.BinaryOp(op=op.value, left=node, right=self._parse_unary())
        return node

    def _parse_unary(self) -> ast.Node:
        if (op := self._accept_operator("-", "+")) is not None:
            operand = self._parse_unary()
            if op.value == "+":
                return operand
            if isinstance(operand, ast.Literal) and operand.kind == "number":
                value = operand.value
                negative = -value if isinstance(value, (int, float)) else value
                return ast.Literal(value=negative, kind="number")
            return ast.UnaryOp(op="-", operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Node:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value: int | float
            if any(c in text for c in ".eE"):
                value = float(text)
            else:
                value = int(text)
            return ast.Literal(value=value, kind="number")

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.value, kind="string")

        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(value=None, kind="null")

        if token.is_keyword("true", "false"):
            self._advance()
            return ast.Literal(value=token.value == "true", kind="bool")

        if token.is_keyword("date", "interval"):
            # DATE '1995-01-01' / INTERVAL '3' -- treated as tagged string
            # literals; arithmetic on them is symbolic in the simulator.
            self._advance()
            value_token = self._current
            if value_token.type is not TokenType.STRING:
                raise SQLError(
                    f"{token.value.upper()} requires a string literal",
                    position=value_token.position,
                )
            self._advance()
            return ast.Literal(value=value_token.value, kind="string")

        if token.is_keyword("case"):
            return self._parse_case()

        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._current.is_keyword("select"):
                subquery = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery=subquery)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr

        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()

        if token.type is TokenType.IDENT or token.is_keyword("extract", "substring", "cast"):
            return self._parse_name_or_call()

        raise SQLError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )

    def _parse_case(self) -> ast.Node:
        self._expect_keyword("case")
        branches: list[tuple[ast.Node, ast.Node]] = []
        while self._accept_keyword("when"):
            cond = self._parse_expr()
            self._expect_keyword("then")
            value = self._parse_expr()
            branches.append((cond, value))
        if not branches:
            token = self._current
            raise SQLError("CASE requires at least one WHEN", position=token.position)
        default = self._parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.CaseExpr(branches=tuple(branches), default=default)

    def _parse_name_or_call(self) -> ast.Node:
        name = self._advance().value

        if self._accept_punct("("):
            return self._parse_call_tail(name)

        if self._accept_punct("."):
            token = self._current
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._parse_identifier("column name")
            return ast.ColumnRef(table=name, column=column)

        return ast.ColumnRef(table=None, column=name)

    def _parse_call_tail(self, name: str) -> ast.FuncCall:
        distinct = self._accept_keyword("distinct") is not None
        args: list[ast.Node] = []
        if not self._accept_punct(")"):
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
        return ast.FuncCall(name=name, args=tuple(args), distinct=distinct)


#: Memoized parse results keyed by content hash of the SQL text.  AST
#: nodes are frozen dataclasses, so the cached statement can be shared
#: by every caller without copying; mutating callers would raise.
_PARSE_CACHE: dict[bytes, ast.SelectStmt] = {}
_MAX_PARSE_CACHE_ENTRIES = 4096


def parse_select(text: str) -> ast.SelectStmt:
    """Parse one SELECT statement from SQL text.

    Memoized per content hash: repeated ``parse()`` of an identical
    query string is O(1) after the first call (the selector, baselines,
    and figure runners all re-analyze the same workload SQL).
    """
    key = content_key(text)
    cached = _PARSE_CACHE.get(key)
    if cached is None:
        cached = Parser(tokenize(text)).parse()
        if len(_PARSE_CACHE) >= _MAX_PARSE_CACHE_ENTRIES:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[key] = cached
    return cached
