"""LLM client interface and the simulated LLM.

The paper calls OpenAI's GPT-4 with the generated prompt and parses the
returned configuration scripts.  This package defines the text-in /
text-out client contract (:mod:`repro.llm.client`) and a deterministic
:class:`~repro.llm.mock.SimulatedLLM` that plays GPT-4's role: it reads
the *actual prompt* (DBMS name, hardware line, compressed workload
lines), applies manual-style tuning knowledge, and emits complete
configuration scripts whose quality varies with temperature --
including the occasional disproportionately bad outlier the paper's
selector must defend against (§6.3: "outlier configurations where the
run time is up to five times higher than the optimum").
"""

from repro.llm.client import LLMClient, LLMResponse, backoff_jitter
from repro.llm.mock import SimulatedLLM
from repro.llm.scripts import render_script

__all__ = [
    "LLMClient",
    "LLMResponse",
    "SimulatedLLM",
    "backoff_jitter",
    "render_script",
]
