"""Rendering configuration scripts in each system's dialect.

The LLM answers with executable SQL: ``ALTER SYSTEM SET`` for
PostgreSQL, ``SET GLOBAL`` for MySQL, bare ``SET`` for the embedded
columnar engine, plus ``CREATE INDEX`` statements.
"""

from __future__ import annotations

from repro.db.indexes import Index
from repro.db.knobs import format_size


def render_setting(system: str, name: str, value: object) -> str:
    """One parameter-change command in the target system's dialect."""
    if isinstance(value, bool):
        if system == "postgres":
            rendered = "on" if value else "off"
        elif system == "columnar":
            rendered = "true" if value else "false"
        else:
            rendered = "ON" if value else "OFF"
    elif isinstance(value, int) and value >= 1024 * 1024 and _is_size_knob(name):
        rendered = f"'{format_size(value)}'"
    elif isinstance(value, str):
        rendered = f"'{value}'"
    else:
        rendered = str(value)
    if system == "postgres":
        return f"ALTER SYSTEM SET {name} = {rendered};"
    if system == "columnar":
        return f"SET {name} = {rendered};"
    return f"SET GLOBAL {name} = {rendered};"


def render_index(index: Index) -> str:
    columns = ", ".join(index.columns)
    return f"CREATE INDEX {index.name} ON {index.table} ({columns});"


def render_script(
    system: str,
    settings: dict[str, object],
    indexes: list[Index],
    *,
    commentary: str = "",
) -> str:
    """A full configuration script, optionally with LLM-style prose."""
    lines: list[str] = []
    if commentary:
        lines.append(commentary)
        lines.append("")
    for name in sorted(settings):
        lines.append(render_setting(system, name, settings[name]))
    for index in indexes:
        lines.append(render_index(index))
    return "\n".join(lines)


_SIZE_KNOB_MARKERS = ("mem", "buffer", "cache", "size", "wal", "threshold")


def _is_size_knob(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _SIZE_KNOB_MARKERS)
