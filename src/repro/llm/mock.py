"""A deterministic, prompt-reading simulated LLM.

:class:`SimulatedLLM` stands in for GPT-4.  It is **not** a lookup
table: it parses the exact prompt text lambda-Tune generates (Listing 1
of the paper) -- the target DBMS, the hardware block, and the
compressed-workload lines -- and derives a complete configuration
script from them with manual-style tuning knowledge:

- memory sizing follows the classic guidance (PostgreSQL:
  ``shared_buffers`` = 25% of RAM, the recommendation the paper's §6.3
  observes GPT-4 applying; MySQL: buffer pool = ~70% of RAM),
- index recommendations are derived *only from the join columns present
  in the prompt*, so a tighter token budget or an uninformative
  workload description measurably degrades output quality (the Fig. 6/7
  ablations), and obfuscated identifiers work transparently (the
  obfuscation ablation),
- temperature injects seeded variance across samples, including
  occasional disproportionately bad configurations (memory
  oversubscription), matching the paper's observation that some of the
  k sampled configurations can be 5x slower than the best.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

from repro.db.indexes import Index
from repro.db.knobs import GB, MB
from repro.errors import LLMError
from repro.llm.client import LLMClient, LLMResponse
from repro.llm.scripts import render_script

_MEMORY_RE = re.compile(r"memory:\s*([0-9.]+)\s*GB", re.IGNORECASE)
_CORES_RE = re.compile(r"cores:\s*(\d+)", re.IGNORECASE)
_SNIPPET_RE = re.compile(
    r"^\s*([A-Za-z0-9_]+\.[A-Za-z0-9_]+)\s*:\s*(.+)$", re.MULTILINE
)
_SQL_TABLE_RE = re.compile(r"\bFROM\s+([A-Za-z0-9_,\s]+?)(?:\bWHERE\b|$)",
                           re.IGNORECASE | re.DOTALL)
_SQL_JOIN_RE = re.compile(
    r"([A-Za-z0-9_]+)\.([A-Za-z0-9_]+)\s*=\s*([A-Za-z0-9_]+)\.([A-Za-z0-9_]+)"
)


@dataclass(slots=True)
class _PromptFacts:
    """What the model understood from the prompt."""

    dbms: str = "postgres"
    memory_gb: float = 16.0
    cores: int = 4
    # join column -> partner columns (from snippet lines or raw SQL)
    join_graph: dict[str, set[str]] = field(default_factory=dict)


class SimulatedLLM(LLMClient):
    """GPT-4 stand-in with deterministic, seeded sampling."""

    model = "simulated-gpt-4"
    #: Output is a pure function of (model, prompt, temperature, seed),
    #: so completions may be served from the persistent artifact cache.
    cacheable = True

    #: Fraction of high-temperature samples that come out pathologically
    #: bad (the paper's motivation for bounded-cost selection).
    outlier_rate = 0.2
    #: Maximum number of CREATE INDEX statements per script.  GPT-4
    #: liberally indexes every join column it is shown; the evaluator's
    #: lazy creation keeps that affordable.
    max_indexes = 32

    def complete(
        self, prompt: str, *, temperature: float = 0.7, seed: int = 0
    ) -> LLMResponse:
        if not prompt.strip():
            raise LLMError("empty prompt")
        facts = self._read_prompt(prompt)
        style = self._pick_style(prompt, temperature, seed)
        settings, indexes, commentary = self._generate(facts, style, seed)
        text = render_script(facts.dbms, settings, indexes, commentary=commentary)
        return self._make_response(prompt, text)

    # -- prompt understanding ----------------------------------------------------

    def _read_prompt(self, prompt: str) -> _PromptFacts:
        facts = _PromptFacts()
        lowered = prompt.lower()
        if "columnar" in lowered:
            facts.dbms = "columnar"
        elif "mysql" in lowered:
            facts.dbms = "mysql"

        if (match := _MEMORY_RE.search(prompt)) is not None:
            facts.memory_gb = float(match.group(1))
        if (match := _CORES_RE.search(prompt)) is not None:
            facts.cores = int(match.group(1))

        for match in _SNIPPET_RE.finditer(prompt):
            left = match.group(1).strip().lower()
            partners = {
                partner.strip().lower()
                for partner in match.group(2).split(",")
                if "." in partner
            }
            if not partners:
                continue
            facts.join_graph.setdefault(left, set()).update(partners)
            # Sorted, not set, iteration: insertion order into join_graph
            # defines the "first appearance" tie-break below, which must
            # not depend on PYTHONHASHSEED.
            for partner in sorted(partners):
                facts.join_graph.setdefault(partner, set()).add(left)

        # Fallback: raw SQL in the prompt (the "compressor off" ablation)
        # still conveys join structure, just at a much higher token cost.
        if not facts.join_graph:
            for match in _SQL_JOIN_RE.finditer(prompt):
                left = f"{match.group(1)}.{match.group(2)}".lower()
                right = f"{match.group(3)}.{match.group(4)}".lower()
                if left.split(".")[0] == right.split(".")[0]:
                    continue
                facts.join_graph.setdefault(left, set()).add(right)
                facts.join_graph.setdefault(right, set()).add(left)
        return facts

    # -- sampling styles ------------------------------------------------------------

    def _pick_style(self, prompt: str, temperature: float, seed: int) -> str:
        """Choose a generation style deterministically per (prompt, seed)."""
        if temperature <= 0.05:
            return "balanced"
        # Styles depend only on the seed, not the prompt text: the same
        # sampling sequence must hit equivalent prompts (e.g. obfuscated
        # vs. plain identifiers) identically.
        digest = hashlib.sha256(f"style|{seed}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2**64)
        if unit < self.outlier_rate * min(1.0, temperature / 0.7):
            return "outlier"
        choices = ("balanced", "aggressive", "conservative", "parallel")
        return choices[int.from_bytes(digest[8:12], "big") % len(choices)]

    # -- generation -----------------------------------------------------------------

    def _generate(
        self, facts: _PromptFacts, style: str, seed: int
    ) -> tuple[dict[str, object], list[Index], str]:
        indexes = self._recommend_indexes(facts, style)
        if facts.dbms == "mysql":
            settings = self._mysql_settings(facts, style)
        elif facts.dbms == "columnar":
            settings = self._columnar_settings(facts, style)
        else:
            settings = self._postgres_settings(facts, style, bool(indexes))
        commentary = (
            f"-- Recommended {facts.dbms} configuration "
            f"({facts.memory_gb:g}GB RAM, {facts.cores} cores; style={style})"
        )
        return settings, indexes, commentary

    def _recommend_indexes(self, facts: _PromptFacts, style: str) -> list[Index]:
        if style == "outlier":
            # Bad samples tend to skip physical design entirely.
            return []
        # Rank join columns by how many distinct partners they join with:
        # the compressor puts the most expensive joins in the prompt, so
        # degree within the conveyed subgraph is the model's best signal.
        # Ties break by first appearance in the prompt, which is stable
        # under identifier obfuscation (the §6.4.3 property).
        appearance = {column: rank for rank, column in enumerate(facts.join_graph)}
        ranked = sorted(
            facts.join_graph.items(),
            key=lambda item: (-len(item[1]), appearance[item[0]]),
        )
        limit = self.max_indexes if style != "conservative" else self.max_indexes // 2
        indexes: list[Index] = []
        seen: set[tuple[str, str]] = set()
        for qualified, _partners in ranked:
            table, _, column = qualified.partition(".")
            if not column or (table, column) in seen:
                continue
            seen.add((table, column))
            indexes.append(Index(table, (column,)))
            if len(indexes) >= limit:
                break
        return indexes

    def _postgres_settings(
        self, facts: _PromptFacts, style: str, has_indexes: bool
    ) -> dict[str, object]:
        memory = int(facts.memory_gb * GB)
        cores = facts.cores
        if style == "outlier":
            # Classic LLM failure mode: allocating far more memory than
            # the machine has.
            return {
                "shared_buffers": int(memory * 0.9),
                "work_mem": int(memory * 0.25),
                "effective_cache_size": memory * 2,
                "maintenance_work_mem": int(memory * 0.25),
                "max_parallel_workers_per_gather": cores,
            }

        shared_fraction = {"balanced": 0.25, "aggressive": 0.4,
                           "conservative": 0.15, "parallel": 0.25}[style]
        work_divisor = {"balanced": 64, "aggressive": 16,
                        "conservative": 192, "parallel": 64}[style]
        settings: dict[str, object] = {
            "shared_buffers": int(memory * shared_fraction),
            "work_mem": max(64 * MB, memory // work_divisor),
            "effective_cache_size": int(memory * 0.75),
            "maintenance_work_mem": min(2 * GB, memory // 16),
            "checkpoint_completion_target": 0.9,
            "wal_buffers": 16 * MB,
            "default_statistics_target": 100,
            "effective_io_concurrency": 200,
        }
        if has_indexes:
            # Encourage the optimizer to use the recommended indexes
            # (the coupling the paper highlights in §6.3).
            settings["random_page_cost"] = 1.1
        if style == "parallel":
            settings["max_parallel_workers_per_gather"] = max(2, cores // 2)
            settings["max_parallel_workers"] = cores
            settings["max_worker_processes"] = cores
        elif style == "aggressive":
            settings["max_parallel_workers_per_gather"] = cores
            settings["max_parallel_workers"] = cores * 2
        return settings

    def _mysql_settings(self, facts: _PromptFacts, style: str) -> dict[str, object]:
        memory = int(facts.memory_gb * GB)
        if style == "outlier":
            return {
                "innodb_buffer_pool_size": int(memory * 0.95),
                "join_buffer_size": 1 * GB,
                "sort_buffer_size": 1 * GB,
                "max_connections": 1000,
            }
        pool_fraction = {"balanced": 0.7, "aggressive": 0.75,
                         "conservative": 0.5, "parallel": 0.7}[style]
        buffer_size = {"balanced": 128 * MB, "aggressive": 512 * MB,
                       "conservative": 32 * MB, "parallel": 128 * MB}[style]
        settings: dict[str, object] = {
            "innodb_buffer_pool_size": int(memory * pool_fraction),
            "innodb_buffer_pool_instances": min(8, max(1, facts.cores)),
            "join_buffer_size": buffer_size,
            "sort_buffer_size": buffer_size // 2,
            "tmp_table_size": 1 * GB,
            "max_heap_table_size": 1 * GB,
            "innodb_flush_method": "o_direct",
            "innodb_log_file_size": 1 * GB,
            "innodb_io_capacity": 2000,
            "innodb_read_io_threads": max(4, facts.cores),
        }
        if style == "parallel":
            settings["innodb_parallel_read_threads"] = max(4, facts.cores)
        return settings

    def _columnar_settings(self, facts: _PromptFacts, style: str) -> dict[str, object]:
        memory = int(facts.memory_gb * GB)
        cores = facts.cores
        if style == "outlier":
            # The embedded-engine failure mode: a memory_limit far above
            # physical RAM (the engine happily accepts it and swaps).
            return {
                "memory_limit": int(memory * 1.5),
                "threads": cores * 8,
                "vector_size": 64,
            }
        limit_fraction = {"balanced": 0.8, "aggressive": 0.9,
                          "conservative": 0.5, "parallel": 0.8}[style]
        settings: dict[str, object] = {
            "memory_limit": int(memory * limit_fraction),
            "threads": max(1, cores if style != "conservative" else cores // 2),
            "vector_size": 2048,
            "compression": "lz4" if style != "aggressive" else "zstd",
            "checkpoint_threshold": 64 * MB,
            "preserve_insertion_order": style == "conservative",
            "object_cache": True,
        }
        if style == "parallel":
            settings["threads"] = cores * 2
        return settings
