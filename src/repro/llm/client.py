"""The LLM client contract.

Any provider (OpenAI, Anthropic, a local model, or the bundled
simulator) plugs in by implementing :class:`LLMClient.complete`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import LLMError


@dataclass(frozen=True, slots=True)
class LLMResponse:
    """One completion with token accounting (fees are per-token)."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(abc.ABC):
    """Text-in / text-out completion interface."""

    model: str = "unknown"
    #: Intrinsic context limit; used when the user sets no token budget
    #: (paper §2: "otherwise, lambda-Tune will try to fit as much
    #: information as possible into the prompt, according to the
    #: language model token limit").
    max_input_tokens: int = 128_000

    @abc.abstractmethod
    def complete(
        self, prompt: str, *, temperature: float = 0.7, seed: int = 0
    ) -> LLMResponse:
        """Return one completion for the prompt."""

    def sample(
        self, prompt: str, n: int, *, temperature: float = 0.7, seed: int = 0
    ) -> list[LLMResponse]:
        """Issue ``n`` randomized calls (paper Algorithm 1, line 3)."""
        if n < 1:
            raise LLMError("must request at least one sample")
        return [
            self.complete(prompt, temperature=temperature, seed=seed + i)
            for i in range(n)
        ]

    def _make_response(self, prompt: str, text: str) -> LLMResponse:
        # Imported here: repro.core imports repro.llm at package level,
        # so a module-level import of the tokenizer would be circular.
        from repro.core.prompt.tokens import count_tokens

        return LLMResponse(
            text=text,
            prompt_tokens=count_tokens(prompt),
            completion_tokens=count_tokens(text),
            model=self.model,
        )
