"""The LLM client contract.

Any provider (OpenAI, Anthropic, a local model, or the bundled
simulator) plugs in by implementing :class:`LLMClient.complete`.
"""

from __future__ import annotations

import abc
import hashlib
import time
from dataclasses import dataclass

from repro.errors import LLMError, LLMTransientError


def backoff_jitter(seed: int, attempt: int) -> float:
    """A deterministic jitter factor in [0.5, 1.5) per (seed, attempt).

    Real backoff jitter exists to de-synchronize concurrent clients;
    here it must additionally be *replayable*, so it is derived from a
    digest instead of a random source.
    """
    digest = hashlib.sha256(f"retry|{seed}|{attempt}".encode()).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / float(2**64)


@dataclass(frozen=True, slots=True)
class LLMResponse:
    """One completion with token accounting (fees are per-token)."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(abc.ABC):
    """Text-in / text-out completion interface."""

    model: str = "unknown"
    #: Intrinsic context limit; used when the user sets no token budget
    #: (paper §2: "otherwise, lambda-Tune will try to fit as much
    #: information as possible into the prompt, according to the
    #: language model token limit").
    max_input_tokens: int = 128_000

    #: Retry policy for transient failures (timeouts, rate limits):
    #: up to ``max_retries`` re-issues with exponential backoff
    #: ``backoff_base * 2**attempt`` capped at ``backoff_cap`` seconds,
    #: scaled by a deterministic per-(seed, attempt) jitter.
    max_retries: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Injection point for tests (and simulations) that must not sleep.
    sleep = staticmethod(time.sleep)
    #: Whether completions may be served from the persistent artifact
    #: cache.  Only clients whose output is a pure function of
    #: ``(model, prompt, temperature, seed)`` may opt in -- the bundled
    #: simulator does; real providers and the fault-injecting wrapper
    #: (whose behaviour depends on mutable attempt state) must not.
    cacheable: bool = False

    @abc.abstractmethod
    def complete(
        self, prompt: str, *, temperature: float = 0.7, seed: int = 0
    ) -> LLMResponse:
        """Return one completion for the prompt."""

    def complete_with_retry(
        self, prompt: str, *, temperature: float = 0.7, seed: int = 0
    ) -> LLMResponse:
        """``complete`` with retry on transient errors.

        :class:`LLMTransientError` (timeouts, rate limits) is retried
        under the class retry policy; any other :class:`LLMError` is
        terminal and propagates immediately.  Exhausting the retry
        budget raises a terminal :class:`LLMError` chained to the last
        transient failure.
        """
        persistent = None
        material = None
        if self.cacheable:
            from repro.cache import MISS, active_cache

            persistent = active_cache()
            if persistent is not None:
                material = (self.model, repr(float(temperature)), seed, prompt)
                value = persistent.fetch("llm", material)
                if value is not MISS:
                    return value
        attempt = 0
        while True:
            try:
                response = self.complete(prompt, temperature=temperature, seed=seed)
                if persistent is not None:
                    # LLMResponse is frozen, so the cached instance is
                    # safe to hand out to every future caller.
                    persistent.store("llm", material, response)
                return response
            except LLMTransientError as error:
                if attempt >= self.max_retries:
                    raise LLMError(
                        f"giving up after {attempt + 1} attempts: {error}"
                    ) from error
                delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
                self.sleep(delay * backoff_jitter(seed, attempt))
                attempt += 1

    def sample(
        self, prompt: str, n: int, *, temperature: float = 0.7, seed: int = 0
    ) -> list[LLMResponse]:
        """Issue ``n`` randomized calls (paper Algorithm 1, line 3)."""
        if n < 1:
            raise LLMError("must request at least one sample")
        return [
            self.complete_with_retry(prompt, temperature=temperature, seed=seed + i)
            for i in range(n)
        ]

    def _make_response(self, prompt: str, text: str) -> LLMResponse:
        # Imported here: repro.core imports repro.llm at package level,
        # so a module-level import of the tokenizer would be circular.
        from repro.core.prompt.tokens import count_tokens

        return LLMResponse(
            text=text,
            prompt_tokens=count_tokens(prompt),
            completion_tokens=count_tokens(text),
            model=self.model,
        )
