"""A miniature tuning-manual corpus.

DB-BERT mines tuning hints from text documents ("reads the manual") and
GPTuner uses manual text to prune knob ranges.  This module bundles a
small corpus of manual-style passages for both simulated systems, each
paired with a machine-readable hint so the baselines can translate text
into concrete settings the way their originals do.

``fraction`` hints are relative to system RAM; ``cores`` hints are
relative to CPU count; ``absolute`` hints carry a literal value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.hardware import HardwareSpec
from repro.db.knobs import GB, MB


@dataclass(frozen=True, slots=True)
class ManualHint:
    """One mined tuning hint: a parameter and a recommended value rule."""

    system: str
    parameter: str
    kind: str  # "fraction" | "cores" | "absolute"
    value: float
    text: str

    def concrete_value(self, hardware: HardwareSpec) -> object:
        if self.kind == "fraction":
            return int(hardware.memory_bytes * self.value)
        if self.kind == "cores":
            return max(1, int(hardware.cores * self.value))
        return self.value if not float(self.value).is_integer() else int(self.value)


MANUAL_CORPUS: list[ManualHint] = [
    # -- PostgreSQL ---------------------------------------------------------
    ManualHint("postgres", "shared_buffers", "fraction", 0.25,
               "A reasonable starting value for shared_buffers is 25% of "
               "the memory in your system."),
    ManualHint("postgres", "shared_buffers", "fraction", 0.4,
               "On dedicated analytics servers some administrators raise "
               "shared_buffers up to 40% of RAM."),
    ManualHint("postgres", "effective_cache_size", "fraction", 0.75,
               "Set effective_cache_size to an estimate of the memory "
               "available for disk caching, commonly 75% of RAM."),
    ManualHint("postgres", "work_mem", "fraction", 1.0 / 64,
               "For analytical workloads, work_mem can be sized as total "
               "memory divided by the expected number of concurrent sorts."),
    ManualHint("postgres", "work_mem", "absolute", 256 * MB,
               "Complex queries with large hash joins benefit from "
               "work_mem in the hundreds of megabytes."),
    ManualHint("postgres", "maintenance_work_mem", "absolute", 2 * GB,
               "Larger maintenance_work_mem speeds up CREATE INDEX; 1-2GB "
               "is typical on big machines."),
    ManualHint("postgres", "random_page_cost", "absolute", 1.1,
               "If your database fits in cache or lives on SSDs, lower "
               "random_page_cost to 1.1 to favor index scans."),
    ManualHint("postgres", "effective_io_concurrency", "absolute", 200,
               "SSDs can serve hundreds of concurrent random reads; set "
               "effective_io_concurrency to 200."),
    ManualHint("postgres", "max_parallel_workers_per_gather", "cores", 0.5,
               "Allow half the CPU cores per gather node for parallel "
               "query execution."),
    ManualHint("postgres", "max_parallel_workers", "cores", 1.0,
               "max_parallel_workers is usually set to the core count."),
    ManualHint("postgres", "checkpoint_completion_target", "absolute", 0.9,
               "Spread checkpoints over most of the interval: set "
               "checkpoint_completion_target to 0.9."),
    ManualHint("postgres", "wal_buffers", "absolute", 16 * MB,
               "A wal_buffers value of 16MB suits most systems."),
    ManualHint("postgres", "default_statistics_target", "absolute", 200,
               "Increase default_statistics_target for complex analytical "
               "queries with skewed data."),
    # -- MySQL ----------------------------------------------------------------
    ManualHint("mysql", "innodb_buffer_pool_size", "fraction", 0.7,
               "On a dedicated server, set innodb_buffer_pool_size to "
               "50-75% of physical memory."),
    ManualHint("mysql", "innodb_buffer_pool_instances", "cores", 1.0,
               "Use one buffer pool instance per core up to 8."),
    ManualHint("mysql", "join_buffer_size", "absolute", 128 * MB,
               "Analytical joins without indexes profit from a larger "
               "join_buffer_size."),
    ManualHint("mysql", "sort_buffer_size", "absolute", 64 * MB,
               "Large ORDER BY and GROUP BY operations need a bigger "
               "sort_buffer_size."),
    ManualHint("mysql", "tmp_table_size", "absolute", 1 * GB,
               "Raise tmp_table_size so implicit temporary tables stay in "
               "memory."),
    ManualHint("mysql", "max_heap_table_size", "absolute", 1 * GB,
               "max_heap_table_size caps in-memory temporary tables and "
               "should match tmp_table_size."),
    ManualHint("mysql", "innodb_flush_method", "absolute", 0,
               "Use O_DIRECT to avoid double buffering between InnoDB and "
               "the OS page cache."),
    ManualHint("mysql", "innodb_log_file_size", "absolute", 1 * GB,
               "Redo logs of 1-2GB reduce checkpoint pressure."),
    ManualHint("mysql", "innodb_io_capacity", "absolute", 2000,
               "SSD-backed servers sustain thousands of IOPS; raise "
               "innodb_io_capacity accordingly."),
    ManualHint("mysql", "innodb_read_io_threads", "cores", 1.0,
               "Scale innodb_read_io_threads with the core count."),
    ManualHint("mysql", "innodb_parallel_read_threads", "cores", 1.0,
               "Parallel clustered-index reads scale with "
               "innodb_parallel_read_threads."),
]


def hints_for(system: str) -> list[ManualHint]:
    """All corpus hints applicable to one system."""
    return [hint for hint in MANUAL_CORPUS if hint.system == system]


_FLUSH_METHOD_FIX = {"innodb_flush_method": "o_direct"}


def hint_setting(hint: ManualHint, hardware: HardwareSpec) -> tuple[str, object]:
    """Translate a hint into a (parameter, value) pair."""
    if hint.parameter in _FLUSH_METHOD_FIX:
        return hint.parameter, _FLUSH_METHOD_FIX[hint.parameter]
    return hint.parameter, hint.concrete_value(hardware)
