"""Retrieval-augmented prompt enrichment (paper §2 extension hook).

The paper notes that lambda-Tune "could easily be augmented via
retrieval augmented generation, enabling the LLM to parse additional
information from the Web".  This module implements that hook against
the bundled manual corpus: a lightweight lexical retriever scores each
manual passage against the prompt's content and the top passages are
appended under a "Relevant documentation" header, within a token
budget.

Off by default; enable via ``RetrievalAugmenter.augment``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.llm.corpus import MANUAL_CORPUS, ManualHint

_WORD_RE = re.compile(r"[a-z0-9_]+")


def _terms(text: str) -> list[str]:
    return _WORD_RE.findall(text.lower())


@dataclass(frozen=True, slots=True)
class RetrievedPassage:
    """One manual passage with its relevance score."""

    hint: ManualHint
    score: float


class RetrievalAugmenter:
    """TF-IDF-flavoured lexical retrieval over the manual corpus."""

    def __init__(self, corpus: list[ManualHint] | None = None) -> None:
        self._corpus = corpus if corpus is not None else MANUAL_CORPUS
        # Document frequency per term for IDF weighting.
        self._document_frequency: dict[str, int] = {}
        for hint in self._corpus:
            for term in set(_terms(hint.text)):
                self._document_frequency[term] = (
                    self._document_frequency.get(term, 0) + 1
                )

    def retrieve(
        self, query_text: str, *, system: str | None = None, top_k: int = 3
    ) -> list[RetrievedPassage]:
        """Top passages for a prompt, optionally restricted to one system."""
        query_terms = set(_terms(query_text))
        total_docs = max(1, len(self._corpus))
        results: list[RetrievedPassage] = []
        for hint in self._corpus:
            if system is not None and hint.system != system:
                continue
            score = 0.0
            for term in set(_terms(hint.text)):
                if term in query_terms:
                    df = self._document_frequency.get(term, 1)
                    score += math.log(1.0 + total_docs / df)
            if score > 0:
                results.append(RetrievedPassage(hint=hint, score=score))
        results.sort(key=lambda passage: (-passage.score, passage.hint.parameter))
        return results[:top_k]

    def augment(
        self,
        prompt: str,
        *,
        system: str | None = None,
        token_budget: int = 150,
        top_k: int = 3,
    ) -> str:
        """Append retrieved manual passages to a prompt within a budget."""
        from repro.core.prompt.tokens import count_tokens

        passages = self.retrieve(prompt, system=system, top_k=top_k)
        if not passages:
            return prompt
        lines = ["", "Relevant documentation:"]
        used = count_tokens("\n".join(lines))
        for passage in passages:
            cost = count_tokens(passage.hint.text) + 1
            if used + cost > token_budget:
                break
            lines.append(f"- {passage.hint.text}")
            used += cost
        if len(lines) <= 2:
            return prompt
        return prompt + "\n".join(lines) + "\n"
