"""``scripts/serve.py`` -- the tuning-service command line.

The CLI is deliberately *offline-first*: ``submit``, ``status``,
``result``, ``cancel`` and ``list`` operate directly on the durable
service root (spec files + journals) without any server process, and
``run`` starts a :class:`~repro.service.TuningServer` over the root,
drains the queue (recovering any interrupted jobs first), and exits.
The spec files therefore *are* the queue: a crash between ``submit``
and ``run`` loses nothing, and a crash during ``run`` is recovered by
the next ``run``.

    python scripts/serve.py --root /tmp/svc submit --workload tpch-sf1 \\
        --tenant acme --priority 5 --seed 9
    python scripts/serve.py --root /tmp/svc run --workers 4 \\
        --executor process --cache-dir /tmp/svc/cache
    python scripts/serve.py --root /tmp/svc status job-0000
    python scripts/serve.py --root /tmp/svc result job-0000
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.tuner import LambdaTuneOptions
from repro.db.registry import available_engines
from repro.db.resources import parse_budget
from repro.errors import ReproError
from repro.service.jobs import JobSpec, ServiceRoot
from repro.service.queue import TenantQuota
from repro.service.server import TuningServer
from repro.session.discover import discover_journals, read_result


def _offline_state(root: ServiceRoot, job_id: str, journals: dict) -> str:
    """A job's lifecycle state as derivable from disk alone."""
    info = journals.get(job_id)
    if info is not None and info.complete:
        return "done"
    if root.is_cancelled(job_id):
        return "cancelled"
    if info is not None:
        return "interrupted"  # resumable by the next `run`
    return "queued"


def _journals(root: ServiceRoot) -> dict:
    return {info.name: info for info in discover_journals(root.journals_dir)}


def cmd_submit(root: ServiceRoot, args: argparse.Namespace) -> int:
    if args.system not in available_engines():
        raise ReproError(
            f"unknown system {args.system!r}; registered engines: "
            f"{', '.join(available_engines())}"
        )
    options = LambdaTuneOptions(
        num_configs=args.num_configs,
        token_budget=args.token_budget,
        initial_timeout=args.timeout,
        alpha=args.alpha,
        seed=args.seed,
        workers=args.job_workers,
        budget=parse_budget(args.budget) if args.budget else None,
    )
    spec = JobSpec(
        job_id=args.job_id or root.allocate_job_id(),
        workload=args.workload,
        tenant=args.tenant,
        priority=args.priority,
        system=args.system,
        options=options,
        realtime_factor=args.realtime_factor,
    )
    root.write_spec(spec)
    print(spec.job_id)
    return 0


def cmd_list(root: ServiceRoot, args: argparse.Namespace) -> int:
    journals = _journals(root)
    rows = []
    for job_id in root.job_ids():
        spec = root.read_spec(job_id)
        if args.tenant and spec.tenant != args.tenant:
            continue
        rows.append(
            (
                job_id,
                spec.tenant,
                spec.priority,
                spec.workload_ref(),
                _offline_state(root, job_id, journals),
            )
        )
    print(f"{'JOB':<12} {'TENANT':<12} {'PRI':>4} {'WORKLOAD':<28} STATE")
    for job_id, tenant, priority, workload, state in rows:
        print(f"{job_id:<12} {tenant:<12} {priority:>4} {workload:<28} {state}")
    return 0


def cmd_status(root: ServiceRoot, args: argparse.Namespace) -> int:
    spec = root.read_spec(args.job_id)
    journals = _journals(root)
    info = journals.get(args.job_id)
    print(
        json.dumps(
            {
                "job_id": spec.job_id,
                "tenant": spec.tenant,
                "priority": spec.priority,
                "workload": spec.workload_ref(),
                "system": spec.system,
                "state": _offline_state(root, args.job_id, journals),
                "journal_events": 0 if info is None else info.events,
                "torn_tail": False if info is None else info.torn_tail,
            },
            indent=2,
        )
    )
    return 0


def cmd_result(root: ServiceRoot, args: argparse.Namespace) -> int:
    root.read_spec(args.job_id)  # raises UnknownJobError for bad ids
    path = root.journal_path(args.job_id)
    result = read_result(path) if path.exists() else None
    if result is None:
        print(f"job {args.job_id} has no result yet", file=sys.stderr)
        return 1
    payload = {
        "job_id": args.job_id,
        "workload": result.workload,
        "system": result.system,
        "best_time": repr(result.best_time),
        "best_config": (
            result.best_config.name if result.best_config else None
        ),
        "configs_evaluated": result.configs_evaluated,
        "tuning_seconds": repr(result.tuning_seconds),
    }
    if "budget" in result.extras:
        payload["budget"] = result.extras["budget"]
        payload["feasible"] = result.extras["feasible"]
        payload["cheapest_tier"] = result.extras["cheapest_tier"]
    print(json.dumps(payload, indent=2))
    return 0


def cmd_cancel(root: ServiceRoot, args: argparse.Namespace) -> int:
    root.mark_cancelled(args.job_id)
    print(f"{args.job_id} cancelled")
    return 0


def _parse_quota(text: str) -> tuple[str, TenantQuota]:
    """``tenant=max_concurrent[:max_pending]`` -> (tenant, quota)."""
    tenant, _, limits = text.partition("=")
    if not tenant or not limits:
        raise argparse.ArgumentTypeError(
            f"quota {text!r} is not tenant=max_concurrent[:max_pending]"
        )
    parts = limits.split(":")
    try:
        concurrent = int(parts[0])
        pending = int(parts[1]) if len(parts) > 1 else None
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"quota {text!r} has non-integer limits"
        ) from None
    return tenant, TenantQuota(max_concurrent=concurrent, max_pending=pending)


def cmd_run(root: ServiceRoot, args: argparse.Namespace) -> int:
    quotas = dict(args.quota or [])
    server = TuningServer(
        root.root,
        workers=args.workers,
        executor=args.executor,
        quotas=quotas,
        cache_dir=args.cache_dir,
        aging=args.aging,
    )
    server.start()
    try:
        done = server.wait_all(timeout=args.timeout)
    finally:
        server.stop()
    rows = server.jobs()
    for row in rows:
        suffix = f" ({row['error']})" if row["error"] else ""
        resumed = " [resumed]" if row["resumed"] else ""
        print(f"{row['job_id']:<12} {row['state']}{resumed}{suffix}")
    if not done:
        print("timed out before all jobs finished", file=sys.stderr)
        return 1
    return 0 if all(r["state"] in ("done", "cancelled") for r in rows) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="serve.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--root", required=True, help="service root directory"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", help="enqueue one tuning job")
    submit.add_argument("--workload", required=True,
                        help="workload spec, e.g. tpch-sf1 or "
                             "synthetic:queries=200,scale=100")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--system", "--engine", dest="system",
                        default="postgres",
                        help="target backend, one of the registered "
                             "engines (e.g. postgres, mysql, columnar)")
    submit.add_argument("--budget", default=None,
                        metavar="ram=8GB,disk=100GB",
                        help="resource budget the recommended config "
                             "must fit under (default: latency-only)")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--num-configs", type=int, default=5)
    submit.add_argument("--token-budget", type=int, default=512)
    submit.add_argument("--timeout", type=float, default=10.0,
                        help="initial per-round timeout (simulated seconds)")
    submit.add_argument("--alpha", type=float, default=10.0)
    submit.add_argument("--job-workers", type=int, default=0,
                        help="per-job evaluation pool size")
    submit.add_argument("--realtime-factor", type=float, default=0.0)
    submit.add_argument("--job-id", default=None)
    submit.set_defaults(handler=cmd_submit)

    listing = commands.add_parser("list", help="list jobs and states")
    listing.add_argument("--tenant", default=None)
    listing.set_defaults(handler=cmd_list)

    status = commands.add_parser("status", help="one job's state")
    status.add_argument("job_id")
    status.set_defaults(handler=cmd_status)

    result = commands.add_parser("result", help="one job's tuning result")
    result.add_argument("job_id")
    result.set_defaults(handler=cmd_result)

    cancel = commands.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job_id")
    cancel.set_defaults(handler=cmd_cancel)

    run = commands.add_parser(
        "run", help="start a server over the root and drain the queue"
    )
    run.add_argument("--workers", type=int, default=2)
    run.add_argument("--executor", choices=("thread", "process"),
                     default="thread",
                     help="job execution: worker threads (default; best "
                          "with realtime waits) or a process pool with "
                          "shared-memory catalog stats (best for "
                          "CPU-bound jobs)")
    run.add_argument("--cache-dir", default=None,
                     help="shared cross-tenant artifact cache directory")
    run.add_argument("--aging", type=int, default=1,
                     help="priority points gained per dispatch waited")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job wait bound in wall seconds")
    run.add_argument("--quota", type=_parse_quota, action="append",
                     metavar="TENANT=CONCURRENT[:PENDING]",
                     help="per-tenant quota (repeatable)")
    run.set_defaults(handler=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = ServiceRoot(args.root)
    try:
        return args.handler(root, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/serve.py
    raise SystemExit(main())
