"""Tuning-as-a-service: a multi-tenant job server over the library.

Everything a service needs already existed as a library -- crash-safe
resumable :class:`~repro.session.TuningSession`\\ s (PR 4), batched
tuning and the shared :class:`~repro.cache.ArtifactCache` warm-start
tier (PR 5), and the deterministic fault layer (PR 3).  This package
wires them together::

    from repro.service import JobClient, TenantQuota, TuningServer

    with TuningServer("/var/lib/lambda-tune", workers=4,
                      cache_dir="/var/lib/lambda-tune/cache",
                      quotas={"acme": TenantQuota(max_concurrent=2)}) as server:
        client = JobClient(server)
        job = client.submit("tpch-sf1", tenant="acme", priority=5)
        print(client.result(job).best_time)

Durability model: a job's spec file is written before it is admitted,
and its write-ahead journal is the job record -- restart a server over
the same root and every incomplete job is discovered, leased (no
double-resume), and resumed mid-round with zero re-executed queries,
byte-identical to a never-interrupted run.  See DESIGN.md §13.
"""

from repro.service.client import JobClient
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    ServiceRoot,
)
from repro.service.queue import JobQueue, TenantQuota
from repro.service.server import TuningServer

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "JobClient",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ServiceRoot",
    "TenantQuota",
    "TuningServer",
]
