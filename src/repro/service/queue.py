"""In-process job queue: priorities, aging, and per-tenant quotas.

Scheduling policy, in order:

1. **Admission** (at submit): a tenant's queued+running job count may
   not exceed ``TenantQuota.max_pending``, and a single job's LLM token
   budget may not exceed ``TenantQuota.max_token_budget``.  Violations
   raise :class:`~repro.errors.QuotaExceededError` *before* anything is
   persisted or enqueued.
2. **Eligibility** (at dispatch): a job is eligible only while its
   tenant has fewer than ``TenantQuota.max_concurrent`` jobs running.
   The cap is enforced at the moment of dispatch, so a tenant can never
   exceed it regardless of submission burstiness.
3. **Ordering**: among eligible jobs, highest *effective* priority
   wins; ties break by submission order (FIFO).  Effective priority is
   ``priority + aging * dispatches_waited`` -- every dispatch the queue
   performs raises every waiting job's effective priority by ``aging``,
   so with ``aging > 0`` a low-priority job overtakes any bounded
   static priority after finitely many dispatches.  That is the
   starvation-freedom guarantee: the wait of a priority-``p`` job is
   bounded by ``(p_max - p) / aging`` dispatches, independent of how
   many high-priority jobs keep arriving.

The queue is thread-safe; :meth:`JobQueue.acquire` blocks workers on a
condition variable.  It holds :class:`~repro.service.jobs.JobRecord`
objects and never touches disk -- durability belongs to the spec files
and journals (:mod:`repro.service.jobs`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    UnknownJobError,
)
from repro.service.jobs import CANCELLED, QUEUED, RUNNING, JobRecord


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Admission and concurrency limits for one tenant.

    ``None`` fields are unlimited.
    """

    #: Jobs the tenant may have running at once (dispatch-time cap).
    max_concurrent: int | None = None
    #: Jobs the tenant may have queued + running (admission-time cap).
    max_pending: int | None = None
    #: Per-job ceiling on ``LambdaTuneOptions.token_budget``
    #: (admission-time cap; ``token_budget=None`` means "unbudgeted"
    #: and is rejected by a finite ceiling).
    max_token_budget: int | None = None


#: The quota applied to tenants with no explicit entry: unlimited.
UNLIMITED = TenantQuota()


class JobQueue:
    """Thread-safe priority queue with per-tenant quota enforcement."""

    def __init__(
        self,
        *,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota = UNLIMITED,
        aging: int = 1,
    ) -> None:
        if aging < 0:
            raise ConfigurationError(f"aging cannot be negative: {aging!r}")
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota
        self._aging = aging
        self._pending: list[JobRecord] = []
        self._running: dict[str, int] = {}
        self._admitted: dict[str, int] = {}
        self._seq = 0
        self._dispatches = 0
        self._closed = False
        self._cond = threading.Condition()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    # -- submission ------------------------------------------------------------

    def submit(self, record: JobRecord, *, enforce_quota: bool = True) -> None:
        """Admit ``record``; raises :class:`QuotaExceededError` if over.

        ``enforce_quota=False`` skips the admission caps (not the
        dispatch-time ``max_concurrent`` cap) -- used for jobs being
        *re*-admitted during crash recovery, which were already
        admitted once and must not be lost to a quota change.
        """
        quota = self.quota_for(record.tenant)
        with self._cond:
            if self._closed:
                raise QuotaExceededError("queue is closed to new submissions")
            admitted = self._admitted.get(record.tenant, 0)
            if enforce_quota:
                if (
                    quota.max_pending is not None
                    and admitted >= quota.max_pending
                ):
                    raise QuotaExceededError(
                        f"tenant {record.tenant!r} already has {admitted} "
                        f"jobs admitted (max_pending={quota.max_pending})"
                    )
                if quota.max_token_budget is not None:
                    budget = record.spec.options.token_budget
                    if budget is None or budget > quota.max_token_budget:
                        raise QuotaExceededError(
                            f"job {record.job_id!r} token budget {budget!r} "
                            f"exceeds tenant {record.tenant!r} ceiling "
                            f"{quota.max_token_budget}"
                        )
            record.state = QUEUED
            record.seq = self._seq
            self._seq += 1
            record.enqueued_at = self._dispatches
            self._admitted[record.tenant] = admitted + 1
            self._pending.append(record)
            self._cond.notify_all()

    # -- dispatch --------------------------------------------------------------

    def _effective_priority(self, record: JobRecord) -> int:
        waited = self._dispatches - record.enqueued_at
        return record.spec.priority + self._aging * waited

    def _pick(self) -> JobRecord | None:
        """The eligible record to dispatch next, or ``None``."""
        best: JobRecord | None = None
        best_key: tuple[int, int] | None = None
        for record in self._pending:
            quota = self.quota_for(record.tenant)
            running = self._running.get(record.tenant, 0)
            if (
                quota.max_concurrent is not None
                and running >= quota.max_concurrent
            ):
                continue
            key = (self._effective_priority(record), -record.seq)
            if best_key is None or key > best_key:
                best, best_key = record, key
        return best

    def acquire(self, timeout: float | None = None) -> JobRecord | None:
        """Block until a job is dispatchable; ``None`` on timeout/close.

        The returned record is in state ``running`` and counts against
        its tenant's ``max_concurrent`` until :meth:`release`.
        """
        with self._cond:
            while True:
                record = self._pick()
                if record is not None:
                    self._pending.remove(record)
                    self._dispatches += 1
                    self._running[record.tenant] = (
                        self._running.get(record.tenant, 0) + 1
                    )
                    record.state = RUNNING
                    return record
                if self._closed and not self._pending:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def release(self, record: JobRecord) -> None:
        """Return the quota a dispatched job held; call exactly once."""
        with self._cond:
            self._running[record.tenant] = max(
                0, self._running.get(record.tenant, 0) - 1
            )
            self._admitted[record.tenant] = max(
                0, self._admitted.get(record.tenant, 0) - 1
            )
            self._cond.notify_all()

    # -- cancellation & shutdown -----------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Remove a still-queued job, releasing its admission quota."""
        with self._cond:
            for record in self._pending:
                if record.job_id == job_id:
                    self._pending.remove(record)
                    self._admitted[record.tenant] = max(
                        0, self._admitted.get(record.tenant, 0) - 1
                    )
                    record.state = CANCELLED
                    self._cond.notify_all()
                    return record
        raise UnknownJobError(f"job {job_id!r} is not queued")

    def close(self) -> None:
        """Refuse new submissions; wake workers so they can drain out."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- introspection ---------------------------------------------------------

    def pending_count(self, tenant: str | None = None) -> int:
        with self._cond:
            if tenant is None:
                return len(self._pending)
            return sum(1 for r in self._pending if r.tenant == tenant)

    def running_count(self, tenant: str | None = None) -> int:
        with self._cond:
            if tenant is None:
                return sum(self._running.values())
            return self._running.get(tenant, 0)

    def snapshot(self) -> list[tuple[str, str, int, int]]:
        """(job_id, tenant, priority, effective_priority) of queued jobs,
        in current dispatch preference order."""
        with self._cond:
            rows = sorted(
                self._pending,
                key=lambda r: (-self._effective_priority(r), r.seq),
            )
            return [
                (r.job_id, r.tenant, r.spec.priority, self._effective_priority(r))
                for r in rows
            ]
