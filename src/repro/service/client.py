"""The thin front-end API over a :class:`TuningServer`.

:class:`JobClient` is what an embedding application (or the
``scripts/serve.py`` CLI) programs against: submit / status / result /
cancel / list, with workloads given as registry spec strings or
in-process :class:`~repro.workloads.base.Workload` objects.  It owns no
state beyond a reference to the server -- every durable fact lives in
the service root.
"""

from __future__ import annotations

from repro.core.result import TuningResult
from repro.core.tuner import LambdaTuneOptions
from repro.service.jobs import JobSpec
from repro.service.server import TuningServer
from repro.workloads.base import Workload


class JobClient:
    """One tenant-agnostic handle on a running tuning server."""

    def __init__(self, server: TuningServer) -> None:
        self._server = server

    def submit(
        self,
        workload: str | Workload,
        *,
        tenant: str = "default",
        priority: int = 0,
        system: str = "postgres",
        options: LambdaTuneOptions | None = None,
        fault_plan: object | None = None,
        realtime_factor: float = 0.0,
        job_id: str | None = None,
    ) -> str:
        """Submit one tuning job; returns its job id.

        Raises :class:`~repro.errors.QuotaExceededError` when the
        tenant's admission quota rejects the job -- nothing is enqueued
        or persisted in that case.
        """
        spec = JobSpec(
            job_id=job_id or self._server.allocate_job_id(),
            workload=workload,
            tenant=tenant,
            priority=priority,
            system=system,
            options=options or LambdaTuneOptions(),
            fault_plan=fault_plan,
            realtime_factor=realtime_factor,
        )
        return self._server.submit(spec)

    def status(self, job_id: str) -> dict:
        """The job's lifecycle snapshot (state, tenant, priority, ...)."""
        return self._server.status(job_id)

    def result(
        self, job_id: str, *, timeout: float | None = None
    ) -> TuningResult:
        """Block for the job's :class:`TuningResult` (or raise on failure)."""
        return self._server.result(job_id, timeout=timeout)

    def cancel(self, job_id: str) -> str:
        """Cancel the job; returns the state the job ended up in."""
        return self._server.cancel(job_id)

    def jobs(self, tenant: str | None = None) -> list[dict]:
        """Status rows for every known job (optionally one tenant's)."""
        return self._server.jobs(tenant)

    def wait_all(self, *, timeout: float | None = None) -> bool:
        return self._server.wait_all(timeout=timeout)
