"""The multi-tenant tuning job server.

:class:`TuningServer` glues the existing primitives into a service:

- jobs are :class:`~repro.service.jobs.JobSpec`\\ s persisted
  write-ahead under the service root, admitted through a
  :class:`~repro.service.queue.JobQueue` (priorities, aging,
  per-tenant quotas), and run by a pool of worker threads;
- every job executes as a PR-4 :class:`~repro.session.TuningSession`
  whose journal *is* the durable job record: :meth:`TuningServer.start`
  discovers incomplete journals (torn tails included) and resumes them
  mid-round with zero re-executed completed queries, reproducing the
  uninterrupted result byte-for-byte;
- all tenants share one installed
  :class:`~repro.cache.ArtifactCache` as a warm-start tier -- plans,
  compiled workloads, ILP solutions, and LLM samples computed for one
  tenant are served from disk to every other -- and because the cache
  is bit-transparent (PR 5) and each job owns its engine/clock/LLM,
  concurrent multi-tenant results are byte-identical to isolated runs;
- a journal lease (:class:`~repro.session.JournalLease`) guards every
  adoption, so two workers -- or two servers sharing a root -- can
  never double-resume one journal.

Cancellation and chaos share one mechanism: the server wraps each
job's journal so that *before every append* it checks the job's cancel
flag and the server's crash probe.  A cancelled job unwinds with
:class:`~repro.errors.JobCancelledError` at the next journal boundary,
releases its quota, and leaves a resumable journal; a chaos kill
(:class:`~repro.errors.ServerKilledError`) abandons leases and
in-memory state exactly as ``kill -9`` would, leaving recovery to the
next server instance.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.cache import ArtifactCache, active_cache, install_cache
from repro.core.batch import (
    BATCH_EXECUTORS,
    BatchJob,
    _BatchWorkerContext,
    _check_process_portable,
    _init_batch_worker,
    resume_job,
    run_job,
)
from repro.core.parallel import ensure_pool_env, preferred_mp_context
from repro.core.result import TuningResult
from repro.db import engine as engine_module
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    ServerKilledError,
    ServiceError,
    UnknownJobError,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    ServiceRoot,
    durable_spec,
)
from repro.service.queue import JobQueue, TenantQuota
from repro.session import JournalLease, TuningJournal, discover_journals
from repro.session.discover import read_result, register_owner, retire_owner
from repro.workloads.base import Workload

_SERVER_TOKENS = itertools.count()


class _JobControl:
    """Per-job cancellation flag + chaos probe, checked at journal appends."""

    def __init__(self, server: "TuningServer", job_id: str) -> None:
        self._server = server
        self.job_id = job_id
        self.cancel_event = threading.Event()
        self.appends = 0

    def before_append(self) -> None:
        if self._server._killed.is_set():
            raise ServerKilledError(
                f"server {self._server.token} is down (job {self.job_id})"
            )
        if self.cancel_event.is_set():
            raise JobCancelledError(f"job {self.job_id} cancelled by tenant")
        self.appends += 1
        probe = self._server.crash_probe
        if probe is not None:
            probe(self.job_id, self.appends)


class _ServiceJournal(TuningJournal):
    """A journal that consults the job control before every append."""

    def __init__(self, path, *, append: bool = False, control=None) -> None:
        super().__init__(path, append=append)
        self._control = control

    def append(self, kind, payload, *, sync: bool = False) -> int:
        self._control.before_append()
        return super().append(kind, payload, sync=sync)


@dataclass(slots=True)
class _ProcessJobPayload:
    """Everything a worker *process* needs to run one service job.

    The parent keeps the lease, the record, and the queue; the child
    gets the picklable execution recipe.  Cancellation crosses the
    boundary through the durable cancel marker file (``cancel()``
    writes it before flipping the in-memory event, precisely so a
    child can poll it), and the chaos ``probe`` rides along when it is
    picklable (module-level functions; closures stay thread-only).
    """

    job: BatchJob
    resumed: bool
    cancel_path: str
    job_id: str
    probe: object | None = None


class _MarkerControl:
    """Child-side twin of :class:`_JobControl`: polls the cancel file."""

    def __init__(self, payload: _ProcessJobPayload) -> None:
        self._payload = payload
        self.appends = 0

    def before_append(self) -> None:
        if os.path.exists(self._payload.cancel_path):
            raise JobCancelledError(
                f"job {self._payload.job_id} cancelled by tenant"
            )
        self.appends += 1
        if self._payload.probe is not None:
            self._payload.probe(self._payload.job_id, self.appends)


def _service_process_job(payload: _ProcessJobPayload) -> TuningResult:
    """Run one service job inside a pool worker process.

    ``JobCancelledError`` / ``ServerKilledError`` raised here propagate
    to the parent through the future (``concurrent.futures`` process
    workers forward ``BaseException``), where ``_run_record``'s
    existing handlers classify them exactly as in thread mode.
    """
    control = _MarkerControl(payload)

    def factory(path, *, append: bool = False):
        return _ServiceJournal(path, append=append, control=control)

    if payload.resumed:
        return resume_job(payload.job, journal_factory=factory)
    return run_job(payload.job, journal_factory=factory)


class TuningServer:
    """A restartable multi-tenant tuning service over one root directory.

    Parameters
    ----------
    root:
        Service directory (spec files, journals, leases).  Restarting a
        server over the same root recovers every incomplete job.
    workers:
        Worker threads.  Each runs one job at a time; per-job
        parallelism still comes from ``LambdaTuneOptions(workers=...)``.
    executor:
        ``"thread"`` (default) runs job bodies on the worker threads
        themselves.  ``"process"`` keeps the threads for queueing,
        leases, and state, but dispatches each job body to a process
        pool: the child rebuilds engine/LLM from the job spec, installs
        the shared on-disk cache, and attaches the shared-memory
        catalog stats published from the workload resolver at
        :meth:`start`.  Right for CPU-bound jobs
        (``realtime_factor=0``) that worker threads would serialize on
        the GIL; results stay byte-identical either way.  Cache-counter
        deltas (:meth:`tenant_cache_stats`) accrue in the children and
        read as zero from the parent.  A ``crash_probe`` must be
        picklable (a module-level function) to cross into the pool.
    quotas / default_quota / aging:
        Scheduling policy, passed to :class:`JobQueue`.
    cache_dir:
        Directory for the shared cross-tenant artifact cache, installed
        process-wide for the server's lifetime (previous cache restored
        on stop).  ``None`` leaves the ambient cache untouched.
    workload_resolver:
        Name -> :class:`Workload` mapping backing ``"@name"`` workload
        references.  Workload objects submitted in-process register
        themselves here automatically.
    crash_probe:
        Chaos hook: ``(job_id, append_ordinal)`` called before every
        journal append; raise :class:`ServerKilledError` to simulate a
        hard kill at that boundary.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        workers: int = 2,
        executor: str = "thread",
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        aging: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        workload_resolver: dict[str, Workload] | None = None,
        crash_probe=None,
    ) -> None:
        self.root = ServiceRoot(root)
        self.token = f"server-{os.getpid()}-{next(_SERVER_TOKENS)}"
        self.crash_probe = crash_probe
        self._queue = JobQueue(
            quotas=quotas,
            default_quota=default_quota or TenantQuota(),
            aging=aging,
        )
        if executor not in BATCH_EXECUTORS:
            raise ConfigurationError(
                f"unknown service executor {executor!r}; "
                f"expected one of {BATCH_EXECUTORS}"
            )
        self.executor = executor
        self._pool: ProcessPoolExecutor | None = None
        self._publication = None
        self._workers_wanted = max(1, workers)
        self._cache_dir = cache_dir
        self._previous_cache: ArtifactCache | None = None
        self._cache_installed = False
        self._resolver = dict(workload_resolver or {})
        self._records: dict[str, JobRecord] = {}
        self._controls: dict[str, _JobControl] = {}
        self._terminal: dict[str, threading.Event] = {}
        self._tenant_stats: dict[str, dict[str, int]] = {}
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._killed = threading.Event()
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "TuningServer":
        """Install the shared cache, recover the root, start workers."""
        if self._started:
            raise ServiceError("server already started")
        self._started = True
        self.root.ensure()
        register_owner(self.token)
        if self._cache_dir is not None:
            self._previous_cache = install_cache(ArtifactCache(self._cache_dir))
            self._cache_installed = True
        self._recover()
        if self.executor == "process":
            self._start_pool()
        for number in range(self._workers_wanted):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.token}-worker-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _start_pool(self) -> None:
        """Bring up the process pool (``executor="process"`` only).

        Runs after the cache install so the children inherit the
        server's cache root, and after ``_recover`` so the resolver
        holds every workload the recovered jobs reference: their
        catalog stats are published to shared memory here, once, and
        every pool worker attaches the same read-only segments.
        Workloads first seen in a later ``submit()`` still work -- the
        child simply builds those stats locally (sharing is an
        accelerator, never a correctness dependency).
        """
        from repro.db.shared_stats import publish_catalog_stats

        catalogs, seen = [], set()
        for workload in self._resolver.values():
            if id(workload.catalog) not in seen:
                seen.add(id(workload.catalog))
                catalogs.append(workload.catalog)
        self._publication = publish_catalog_stats(catalogs)
        cache = active_cache()
        cache_root = (
            cache.root if cache is not None and cache.root is not None else None
        )
        ensure_pool_env()
        ctx = _BatchWorkerContext(
            cache_root=cache_root,
            shared_refs=self._publication.refs,
            caches_enabled=engine_module.CACHES_ENABLED,
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers_wanted,
            mp_context=preferred_mp_context(),
            initializer=_init_batch_worker,
            initargs=(ctx,),
        )

    def _teardown_pool(self, *, terminate: bool = False) -> None:
        """Shut the pool down and unlink the shared-stats segments."""
        if self._pool is not None:
            if terminate:
                # kill -9 fidelity: children die mid-write, leaving
                # torn journal tails for the next server to recover.
                for process in list(
                    getattr(self._pool, "_processes", {}).values()
                ):
                    process.terminate()
            self._pool.shutdown(wait=not terminate, cancel_futures=True)
            self._pool = None
        if self._publication is not None:
            self._publication.close()
            self._publication = None

    def _recover(self) -> None:
        """Rebuild queue state from the root's spec files and journals.

        Classification per persisted job:

        - cancel marker, no journal -> ``cancelled`` (never ran);
        - journal with a ``done`` event -> ``done`` (result on disk);
        - journal without ``done`` (torn tail included) -> requeued as
          a *resume* job, unless a cancel marker holds it cancelled;
        - no journal -> requeued to run from scratch.
        """
        journals = {
            info.name: info
            for info in discover_journals(self.root.journals_dir)
        }
        for job_id in self.root.job_ids():
            spec = self.root.read_spec(job_id)
            record = JobRecord(spec=spec)
            info = journals.get(job_id)
            if info is not None and info.complete:
                record.state = DONE
                self._register(record, terminal=True)
            elif self.root.is_cancelled(job_id):
                record.state = CANCELLED
                record.resumed = info is not None
                self._register(record, terminal=True)
            else:
                # A journal whose only content is a torn line carries
                # no intact state: drop it and run from scratch (the
                # crash predates the first fsync'd event).
                if info is not None and info.events == 0:
                    info.path.unlink(missing_ok=True)
                    info = None
                record.resumed = info is not None
                self._register(record, terminal=False)
                self._queue.submit(record, enforce_quota=False)

    def _register(self, record: JobRecord, *, terminal: bool) -> None:
        with self._lock:
            self._records[record.job_id] = record
            self._controls[record.job_id] = _JobControl(self, record.job_id)
            event = threading.Event()
            if terminal:
                event.set()
            self._terminal[record.job_id] = event

    def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down: optionally drain the queue, then join the workers."""
        self._stopping.set()
        if not drain:
            self._killed.set()
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._teardown_pool()
        retire_owner(self.token)
        if self._cache_installed:
            install_cache(self._previous_cache)
            self._cache_installed = False

    def kill(self) -> None:
        """Chaos: die *now*, abandoning state as ``kill -9`` would.

        In-flight jobs stop at their next journal append; leases stay
        on disk (stale-breakable); the queue's memory is lost.  Only a
        new server instance over the same root can continue the work.
        """
        self._killed.set()
        self._stopping.set()
        self._queue.close()
        self._teardown_pool(terminate=True)
        retire_owner(self.token)
        for thread in self._threads:
            thread.join(timeout=30.0)
        if self._cache_installed:
            install_cache(self._previous_cache)
            self._cache_installed = False

    @property
    def killed(self) -> bool:
        return self._killed.is_set()

    # -- submission & control --------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Admit one job: quota check, durable spec write, enqueue."""
        if not self._started or self._stopping.is_set():
            raise ServiceError("server is not accepting submissions")
        if spec.job_id in self._records:
            raise ServiceError(f"job id {spec.job_id!r} already exists")
        if isinstance(spec.workload, Workload):
            self._resolver.setdefault(spec.workload.name, spec.workload)
        record = JobRecord(spec=spec)
        # Write-ahead: the spec hits disk before the queue, so an
        # admitted job survives any later crash; a quota rejection
        # removes the spec again below.
        self.root.write_spec(durable_spec(spec))
        self._register(record, terminal=False)
        try:
            self._queue.submit(record)
        except Exception:
            # Rejected after persisting: remove the spec so a restart
            # does not resurrect a job that was never admitted.
            self.root.spec_path(spec.job_id).unlink(missing_ok=True)
            with self._lock:
                self._records.pop(spec.job_id, None)
                self._controls.pop(spec.job_id, None)
                self._terminal.pop(spec.job_id, None)
            raise
        return spec.job_id

    def allocate_job_id(self) -> str:
        return self.root.allocate_job_id()

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its resulting state.

        Queued jobs leave the queue immediately (quota released).  A
        running job is stopped at its next journal boundary -- its
        journal stays on disk, resumable if the tenant changes its
        mind.  Terminal jobs are left untouched.
        """
        record = self._record(job_id)
        if record.state == QUEUED:
            try:
                cancelled = self._queue.cancel(job_id)
            except UnknownJobError:
                cancelled = None  # dispatched while we looked: fall through
            if cancelled is not None:
                record.state = CANCELLED
                self.root.mark_cancelled(job_id)
                self._terminal[job_id].set()
                return CANCELLED
        if record.state == RUNNING:
            self.root.mark_cancelled(job_id)
            self._controls[job_id].cancel_event.set()
        return record.state

    # -- inspection ------------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise UnknownJobError(f"no such job {job_id!r}")
        return record

    def status(self, job_id: str) -> dict:
        record = self._record(job_id)
        return {
            "job_id": record.job_id,
            "tenant": record.tenant,
            "priority": record.spec.priority,
            "state": record.state,
            "resumed": record.resumed,
            "error": record.error,
        }

    def jobs(self, tenant: str | None = None) -> list[dict]:
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.job_id)
        return [
            self.status(record.job_id)
            for record in records
            if tenant is None or record.tenant == tenant
        ]

    def result(
        self, job_id: str, *, timeout: float | None = None
    ) -> TuningResult:
        """Block until ``job_id`` is terminal and return its result."""
        record = self._record(job_id)
        if not self._terminal[job_id].wait(timeout=timeout):
            raise ServiceError(f"job {job_id!r} did not finish in time")
        if record.state != DONE:
            raise ServiceError(
                f"job {job_id!r} is {record.state}"
                + (f": {record.error}" if record.error else "")
            )
        if record.result is None:
            # Completed in a previous server life: the journal has it.
            record.result = read_result(self.root.journal_path(job_id))
        return record.result

    def wait_all(self, *, timeout: float | None = None) -> bool:
        """Wait until every known job is terminal; False on timeout."""
        with self._lock:
            events = list(self._terminal.values())
        for event in events:
            if not event.wait(timeout=timeout):
                return False
        return True

    def cache_stats(self) -> dict[str, int] | None:
        cache = active_cache()
        return None if cache is None else cache.stats.snapshot()

    def tenant_cache_stats(self, tenant: str) -> dict[str, int]:
        """Cache-counter deltas accumulated while this tenant's jobs ran.

        Exact under ``workers=1``; with concurrent workers, deltas of
        overlapping jobs interleave and the split is approximate (the
        totals across tenants remain exact).
        """
        with self._lock:
            return dict(
                self._tenant_stats.get(
                    tenant,
                    {"memory_hits": 0, "disk_hits": 0, "stores": 0},
                )
            )

    # -- the worker loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._killed.is_set():
            record = self._queue.acquire(timeout=0.05)
            if record is None:
                if self._stopping.is_set() and self._queue.pending_count() == 0:
                    return
                continue
            try:
                self._run_record(record)
            except ServerKilledError:
                return
            finally:
                self._queue.release(record)

    def _run_record(self, record: JobRecord) -> None:
        job_id = record.job_id
        control = self._controls[job_id]
        journal_path = self.root.journal_path(job_id)
        try:
            lease = JournalLease.acquire(journal_path, owner_token=self.token)
        except ServiceError as error:
            record.state = FAILED
            record.error = str(error)
            self._terminal[job_id].set()
            return

        def factory(path, *, append: bool = False):
            return _ServiceJournal(path, append=append, control=control)

        stats_before = self.cache_stats()
        try:
            batch_job = record.spec.to_batch_job(
                resolver=self._resolver, journal_path=journal_path
            )
            resumed = record.resumed or journal_path.exists()
            if self._pool is not None:
                result = self._run_in_process(batch_job, job_id, resumed)
            elif resumed:
                result = resume_job(batch_job, journal_factory=factory)
            else:
                result = run_job(batch_job, journal_factory=factory)
            record.result = result
            record.state = DONE
            record.error = None
            lease.release()
            self._terminal[job_id].set()
        except JobCancelledError:
            record.state = CANCELLED
            lease.release()
            self._terminal[job_id].set()
        except ServerKilledError:
            # kill -9 semantics: the lease file survives (stale), the
            # record stays RUNNING in this dead server's memory, and
            # the journal on disk is the only truth.
            lease.abandon()
            raise
        except Exception as error:
            record.state = FAILED
            record.error = f"{type(error).__name__}: {error}"
            lease.release()
            self._terminal[job_id].set()
        finally:
            self._account(record.tenant, stats_before)

    def _run_in_process(
        self, batch_job: BatchJob, job_id: str, resumed: bool
    ) -> TuningResult:
        """Dispatch one job body to the process pool and await it.

        The worker thread keeps the lease and the record; the child
        does the tuning.  Child-side ``JobCancelledError`` /
        ``ServerKilledError`` surface through the future unchanged; a
        pool broken by :meth:`kill` (children terminated mid-write)
        maps to :class:`ServerKilledError` so the caller's chaos
        handling is identical to thread mode.
        """
        _check_process_portable(batch_job)
        payload = _ProcessJobPayload(
            job=batch_job,
            resumed=resumed,
            cancel_path=os.fspath(self.root.cancel_path(job_id)),
            job_id=job_id,
            probe=self.crash_probe,
        )
        pool = self._pool
        try:
            future = pool.submit(_service_process_job, payload)
            return future.result()
        except (BrokenProcessPool, RuntimeError) as error:
            if self._killed.is_set():
                raise ServerKilledError(
                    f"server {self.token} is down (job {job_id})"
                ) from error
            raise

    def _account(self, tenant: str, before: dict[str, int] | None) -> None:
        after = self.cache_stats()
        if before is None or after is None:
            return
        with self._lock:
            bucket = self._tenant_stats.setdefault(
                tenant, {"memory_hits": 0, "disk_hits": 0, "stores": 0}
            )
            for key in bucket:
                bucket[key] += max(0, after[key] - before[key])

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "TuningServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if not self._killed.is_set():
            self.stop()
