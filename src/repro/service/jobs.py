"""Durable job records for the tuning service.

A job is described by a :class:`JobSpec` and tracked by a
:class:`JobRecord`.  Durability is two files under the service root:

- ``jobs/<job_id>.job`` -- the spec, written atomically (tmp file +
  ``os.replace`` + fsync) *before* the job is admitted to the queue, so
  an accepted submission survives any later crash;
- ``journals/<job_id>.journal`` -- the PR-4 write-ahead tuning journal,
  which doubles as the job's progress record and, once it holds a
  ``done`` event, its result of record.

A ``jobs/<job_id>.cancel`` marker persists an offline cancellation (the
CLI can cancel jobs while no server is running); recovery honours it.

Specs are serialized with the session codec
(:mod:`repro.session.codec`), so options and fault plans round-trip
with exact floats and no pickling.  Workloads are persisted as spec
*strings*: either a :func:`repro.workloads.load_workload` spec
(``"tpch-sf1"``, ``"synthetic:queries=200,scale=100"``), or
``"@<name>"`` naming an entry in the server's in-process workload
resolver -- the escape hatch tests and embedders use for workloads that
have no registry spelling.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.batch import BatchJob
from repro.core.tuner import LambdaTuneOptions
from repro.errors import ServiceError, UnknownJobError
from repro.session import codec
from repro.session.discover import JOURNAL_SUFFIX
from repro.workloads.base import Workload
from repro.workloads.registry import load_workload

#: Job lifecycle states (see DESIGN.md §13 for the transition diagram).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

SPEC_SUFFIX = ".job"
CANCEL_SUFFIX = ".cancel"

#: Spec files carry their own format version, separate from the journal
#: codec's: the two evolve independently.
SPEC_VERSION = 1


@dataclass(frozen=True, slots=True)
class JobSpec:
    """Everything needed to run -- or re-run -- one tuning job."""

    job_id: str
    workload: str | Workload
    tenant: str = "default"
    priority: int = 0
    system: str = "postgres"
    options: LambdaTuneOptions = field(default_factory=LambdaTuneOptions)
    fault_plan: object | None = None
    realtime_factor: float = 0.0

    def workload_ref(self) -> str:
        """The durable string form of :attr:`workload`."""
        if isinstance(self.workload, str):
            return self.workload
        return "@" + self.workload.name

    def resolve_workload(
        self, resolver: dict[str, Workload] | None = None
    ) -> Workload:
        """The concrete workload this spec names."""
        if isinstance(self.workload, Workload):
            return self.workload
        if self.workload.startswith("@"):
            name = self.workload[1:]
            if resolver is None or name not in resolver:
                raise ServiceError(
                    f"job {self.job_id!r} references in-process workload "
                    f"{name!r} but the server has no resolver entry for it"
                )
            return resolver[name]
        return load_workload(self.workload)

    def to_batch_job(
        self,
        *,
        resolver: dict[str, Workload] | None = None,
        journal_path: str | os.PathLike[str] | None = None,
    ) -> BatchJob:
        """The :class:`~repro.core.batch.BatchJob` executing this spec."""
        return BatchJob(
            workload=self.resolve_workload(resolver),
            system=self.system,
            options=self.options,
            realtime_factor=self.realtime_factor,
            fault_plan=self.fault_plan,
            journal_path=journal_path,
        )


@dataclass(slots=True)
class JobRecord:
    """One job's in-memory state on a running server."""

    spec: JobSpec
    state: str = QUEUED
    #: Present for DONE jobs run in this server's lifetime; recovered
    #: DONE jobs read their result lazily from the journal.
    result: object | None = None
    error: str | None = None
    #: Submission order (server-lifetime monotonic).
    seq: int = 0
    #: Global dispatch counter value at enqueue time (priority aging).
    enqueued_at: int = 0
    #: The journal existed before this server adopted the job.
    resumed: bool = False

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant


# -- service root layout ------------------------------------------------------


class ServiceRoot:
    """Path layout + durable spec persistence for one service directory."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.journals_dir = self.root / "journals"

    def ensure(self) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.journals_dir.mkdir(parents=True, exist_ok=True)

    def spec_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{SPEC_SUFFIX}"

    def cancel_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}{CANCEL_SUFFIX}"

    def journal_path(self, job_id: str) -> Path:
        return self.journals_dir / f"{job_id}{JOURNAL_SUFFIX}"

    def job_ids(self) -> list[str]:
        """Every persisted job id, in submission (= allocation) order."""
        if not self.jobs_dir.is_dir():
            return []
        return sorted(
            path.name[: -len(SPEC_SUFFIX)]
            for path in self.jobs_dir.glob(f"*{SPEC_SUFFIX}")
        )

    def allocate_job_id(self) -> str:
        """The next free ``job-NNNN`` id (sorted = submission order)."""
        taken = set(self.job_ids())
        number = len(taken)
        while f"job-{number:04d}" in taken:
            number += 1
        return f"job-{number:04d}"

    def write_spec(self, spec: JobSpec) -> Path:
        """Persist ``spec`` durably; the write-ahead step of submit."""
        self.ensure()
        path = self.spec_path(spec.job_id)
        if path.exists():
            raise ServiceError(f"job id {spec.job_id!r} already exists")
        payload = {
            "spec_version": SPEC_VERSION,
            "job_id": spec.job_id,
            "tenant": spec.tenant,
            "priority": spec.priority,
            "workload": spec.workload_ref(),
            "system": spec.system,
            "realtime_factor": spec.realtime_factor,
            "options": codec.encode(spec.options),
            "fault_plan": codec.encode(spec.fault_plan),
        }
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        fd, temp_path = tempfile.mkstemp(dir=self.jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def read_spec(self, job_id: str) -> JobSpec:
        path = self.spec_path(job_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise UnknownJobError(f"no such job {job_id!r}") from None
        except (OSError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"unreadable job spec {path}: {error}"
            ) from error
        version = payload.get("spec_version")
        if version != SPEC_VERSION:
            raise ServiceError(
                f"job spec {path} has version {version!r}; "
                f"this build reads version {SPEC_VERSION}"
            )
        return JobSpec(
            job_id=payload["job_id"],
            tenant=payload["tenant"],
            priority=payload["priority"],
            workload=payload["workload"],
            system=payload["system"],
            realtime_factor=payload["realtime_factor"],
            options=codec.decode(payload["options"]),
            fault_plan=codec.decode(payload["fault_plan"]),
        )

    def mark_cancelled(self, job_id: str) -> None:
        """Persist an offline cancellation marker."""
        if not self.spec_path(job_id).exists():
            raise UnknownJobError(f"no such job {job_id!r}")
        self.cancel_path(job_id).write_text("", encoding="utf-8")

    def is_cancelled(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()


def durable_spec(spec: JobSpec) -> JobSpec:
    """A copy of ``spec`` with its workload in durable string form."""
    if isinstance(spec.workload, str):
        return spec
    return replace(spec, workload=spec.workload_ref())
