"""Batched multi-workload tuning over a shared pool and shared cache.

:func:`tune_many` runs N independent tuning jobs concurrently.  Each job
gets its own engine, virtual clock, and LLM client, so job results are
byte-identical to running the same jobs serially -- concurrency changes
wall-clock time only.  What the jobs *share* is the process-wide
persistent :class:`repro.cache.ArtifactCache`: overlapping workloads
(TPC-H / TPC-DS / JOB share the planner, solver, and scheduler work for
any queries, plans, and prompts they have in common) warm each other's
artifacts mid-batch, and the disk tier carries the warmth to the next
invocation.

Threads, not processes, drive the jobs: a tune's wall-clock cost under a
positive ``realtime_factor`` is dominated by engine waits (sleeps), which
release the GIL -- the same property the PR-2 parallel selector exploits
-- and within one process all jobs see the same cache object without any
serialization.  Each job can still fan its own candidate evaluation over
worker processes via ``LambdaTuneOptions(workers=..., executor=...)``;
the round-based control flow inside each job is the unchanged PR-4
``RoundDriver`` machinery.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cache import ArtifactCache, active_cache, install_cache
from repro.core.result import TuningResult
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.llm.client import LLMClient
from repro.workloads.base import Workload
from repro.workloads.compile import make_engine


@dataclass(slots=True)
class BatchJob:
    """One workload to tune, with everything the tune needs.

    ``engine`` and ``llm`` default to a fresh default-configured engine
    for ``system`` and a fresh :class:`repro.llm.mock.SimulatedLLM`.
    Jobs must not share mutable collaborators: passing the same engine
    or a stateful LLM client (e.g. the fault-injecting wrapper) to two
    jobs makes results depend on scheduling order.
    """

    workload: Workload
    system: str = "postgres"
    options: LambdaTuneOptions = field(default_factory=LambdaTuneOptions)
    engine: DatabaseEngine | None = None
    llm: LLMClient | None = None
    #: Wall-clock seconds slept per simulated second of engine work on
    #: this job's engine (see ``DatabaseEngine.realtime_factor``).
    realtime_factor: float = 0.0

    def build(self) -> LambdaTune:
        engine = self.engine
        if engine is None:
            engine = make_engine(self.workload, self.system)
        if self.realtime_factor > 0:
            engine.realtime_factor = self.realtime_factor
        llm = self.llm
        if llm is None:
            from repro.llm.mock import SimulatedLLM

            llm = SimulatedLLM()
        return LambdaTune(engine, llm, options=self.options)


def _run_job(job: BatchJob) -> TuningResult:
    tuner = job.build()
    return tuner.tune(job.workload.queries, workload_name=job.workload.name)


def tune_many(
    jobs: list[BatchJob],
    *,
    max_workers: int | None = None,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[TuningResult]:
    """Tune every job, concurrently, returning results in job order.

    ``cache_dir`` installs a shared persistent artifact cache for the
    duration of the batch (restoring the previously active cache after);
    omit it to use whatever cache is already active -- including none.
    """
    if not jobs:
        raise ConfigurationError("tune_many needs at least one job")
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 1)
    max_workers = max(1, min(max_workers, len(jobs)))

    previous = active_cache()
    if cache_dir is not None:
        install_cache(ArtifactCache(cache_dir))
    try:
        if max_workers == 1:
            return [_run_job(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_job, jobs))
    finally:
        if cache_dir is not None:
            install_cache(previous)
