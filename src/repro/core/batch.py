"""Batched multi-workload tuning over a shared pool and shared cache.

:func:`tune_many` runs N independent tuning jobs concurrently.  Each job
gets its own engine, virtual clock, and LLM client, so job results are
byte-identical to running the same jobs serially -- concurrency changes
wall-clock time only.  What the jobs *share* is the process-wide
persistent :class:`repro.cache.ArtifactCache`: overlapping workloads
(TPC-H / TPC-DS / JOB share the planner, solver, and scheduler work for
any queries, plans, and prompts they have in common) warm each other's
artifacts mid-batch, and the disk tier carries the warmth to the next
invocation.

Two batch executors drive the jobs.  ``executor="thread"`` (default)
fits wall-clock dominated by engine waits under a positive
``realtime_factor`` -- sleeps release the GIL, the same property the
PR-2 parallel selector exploits -- and all jobs see the same cache
object without serialization.  ``executor="process"`` fits CPU-bound
batches (``realtime_factor=0``): worker processes rebuild each job's
engine/LLM from the pickled :class:`BatchJob` spec, share the on-disk
artifact cache via the pool initializer, and attach the parent's
published shared-memory :class:`~repro.db.catalog_stats.CatalogStats`
instead of rebuilding them (:mod:`repro.db.shared_stats`).  Either way
each job can still fan its own candidate evaluation over worker
processes via ``LambdaTuneOptions(workers=..., executor=...)``; the
round-based control flow inside each job is the unchanged PR-4
``RoundDriver`` machinery.

:class:`BatchJob` doubles as the execution recipe for the service layer
(:mod:`repro.service`): its :meth:`~BatchJob.build_engine` /
:meth:`~BatchJob.build_llm` factories are the *only* place engines and
LLM clients are constructed for batch and service work, so a resumed
service job rebuilds collaborators identically to a fresh one, and
:func:`run_job` is the single per-job runner both drivers share --
journaled (crash-safe via :class:`repro.session.TuningSession`) when the
job carries a ``journal_path``, plain otherwise.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import (
    CACHE_DIR_ENV,
    ArtifactCache,
    active_cache,
    install_cache,
)
from repro.core.parallel import ensure_pool_env, preferred_mp_context
from repro.core.result import TuningResult
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db import engine as engine_module
from repro.db.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.llm.client import LLMClient
from repro.workloads.base import Workload
from repro.workloads.compile import make_engine

#: Batch-level executors: how *jobs* are distributed (distinct from the
#: per-job candidate-evaluation executor in ``LambdaTuneOptions``).
BATCH_EXECUTORS = ("thread", "process")


@dataclass(slots=True)
class BatchJob:
    """One workload to tune, with everything the tune needs.

    ``engine`` and ``llm`` default to a fresh default-configured engine
    for ``system`` and a fresh :class:`repro.llm.mock.SimulatedLLM`.
    Jobs must not share mutable collaborators: passing the same engine
    or a stateful LLM client (e.g. the fault-injecting wrapper) to two
    jobs makes results depend on scheduling order.
    """

    workload: Workload
    system: str = "postgres"
    options: LambdaTuneOptions = field(default_factory=LambdaTuneOptions)
    engine: DatabaseEngine | None = None
    llm: LLMClient | None = None
    #: Wall-clock seconds slept per simulated second of engine work on
    #: this job's engine (see ``DatabaseEngine.realtime_factor``).
    realtime_factor: float = 0.0
    #: Deterministic chaos plan (PR 3).  Installed on the built engine
    #: and wrapped around the built LLM client; results stay a pure
    #: function of ``(job, plan)``.  Ignored for an explicit ``engine``
    #: / ``llm`` -- the caller owns those collaborators.
    fault_plan: object | None = None
    #: Write-ahead journal for this job (crash-safe resume, PR 4).
    #: ``None`` tunes unjournaled.
    journal_path: str | os.PathLike[str] | None = None

    def build_engine(self) -> DatabaseEngine:
        """A fresh engine for this job (fault plan installed)."""
        engine = self.engine
        if engine is None:
            engine = make_engine(self.workload, self.system)
            if self.fault_plan is not None:
                engine.install_faults(self.fault_plan)
        if self.realtime_factor > 0:
            engine.realtime_factor = self.realtime_factor
        return engine

    def build_llm(self) -> LLMClient:
        """A fresh LLM client for this job (fault wrapper applied).

        The fault wrapper's transient-retry backoff sleeps are disabled:
        they are wall-clock only (the virtual clock never sees them), so
        in batch and service contexts they would merely stall a worker.
        """
        llm = self.llm
        if llm is not None:
            return llm
        from repro.llm.mock import SimulatedLLM

        llm = SimulatedLLM()
        if self.fault_plan is not None:
            from repro.faults import FaultyLLMClient

            llm = FaultyLLMClient(llm, self.fault_plan)
            llm.sleep = lambda seconds: None
        return llm

    def build(self) -> LambdaTune:
        return LambdaTune(
            self.build_engine(), self.build_llm(), options=self.options
        )


def run_job(job: BatchJob, *, journal_factory=None) -> TuningResult:
    """Run one job to completion; the shared batch/service runner.

    With a ``journal_path`` on the job the tune runs inside a
    :class:`~repro.session.TuningSession` (``journal_factory`` is
    forwarded, letting the service layer interpose cancellation and
    chaos checks); otherwise it is a plain ``tune()`` call.  Either way
    the result is bit-identical -- journaling observes, never perturbs.
    """
    tuner = job.build()
    queries = list(job.workload.queries)
    if job.journal_path is None:
        return tuner.tune(queries, workload_name=job.workload.name)
    from repro.session import TuningSession

    session = TuningSession(
        tuner,
        Path(job.journal_path),
        workload_name=job.workload.name,
        journal_factory=journal_factory,
    )
    return session.run(queries)


def resume_job(job: BatchJob, *, journal_factory=None) -> TuningResult:
    """Continue ``job``'s journal on freshly built collaborators.

    The engine is built *without* the fault plan -- resume reinstalls
    the journaled plan itself -- while the LLM client is rebuilt exactly
    as :meth:`BatchJob.build_llm` would, so replayed samples and fresh
    samples alike come from the same deterministic source.
    """
    if job.journal_path is None:
        raise ConfigurationError("resume_job needs a job with a journal_path")
    from repro.session import TuningSession

    engine = make_engine(job.workload, job.system)
    if job.realtime_factor > 0:
        engine.realtime_factor = job.realtime_factor
    return TuningSession.resume(
        Path(job.journal_path),
        engine=engine,
        llm=job.build_llm(),
        journal_factory=journal_factory,
    )


def _run_job(job: BatchJob) -> TuningResult:
    return run_job(job)


# -- process-pool plumbing ----------------------------------------------------


@dataclass(slots=True)
class _BatchWorkerContext:
    """Picklable per-worker setup, shipped once via the pool initializer.

    Mirrors ``core/parallel.py``'s :class:`WorkerContext` discipline:
    the initializer payload carries everything a worker process needs to
    mirror the parent's environment -- the shared on-disk artifact cache
    root, the zero-copy catalog refs, and the cache regime flag.
    """

    cache_root: str | None = None
    shared_refs: dict = field(default_factory=dict)
    caches_enabled: bool = True


def _init_batch_worker(ctx: _BatchWorkerContext) -> None:
    """Process-pool initializer: cache + shared catalogs, once per worker."""
    engine_module.CACHES_ENABLED = ctx.caches_enabled
    if ctx.cache_root is not None:
        # Both channels on purpose: install_cache for this interpreter,
        # the env var so any grandchild pool a job spawns (per-job
        # candidate workers) initializes from LAMBDA_TUNE_CACHE_DIR too.
        os.environ[CACHE_DIR_ENV] = ctx.cache_root
        install_cache(ArtifactCache(ctx.cache_root))
    if ctx.shared_refs:
        from repro.db.shared_stats import register_shared_refs

        register_shared_refs(ctx.shared_refs)


def _check_process_portable(job: BatchJob) -> None:
    """Process workers rebuild collaborators from the spec; an explicit
    engine or LLM client cannot cross the process boundary (it is both
    unpicklable in general and, per the :class:`BatchJob` contract,
    owned by the caller)."""
    if job.engine is not None or job.llm is not None:
        raise ConfigurationError(
            "executor='process' requires jobs that build their own "
            "engine and LLM (leave BatchJob.engine / BatchJob.llm unset)"
        )


def _publish_job_catalogs(jobs: list[BatchJob]):
    """Publish each distinct job catalog's stats to shared memory."""
    from repro.db.shared_stats import publish_catalog_stats

    catalogs, seen = [], set()
    for job in jobs:
        catalog = job.workload.catalog
        if id(catalog) not in seen:
            seen.add(id(catalog))
            catalogs.append(catalog)
    return publish_catalog_stats(catalogs)


def _default_max_workers(n_jobs: int, executor: str) -> int:
    """The ``max_workers=None`` heuristic, executor-aware.

    A process worker burns a whole core; oversubscribing past the
    *usable* core count (affinity/cgroup-aware, and never above
    ``os.cpu_count()``) adds fork and pickling overhead without
    parallelism, no matter how many jobs are queued.  Thread workers
    mostly wait on engine sleeps (``realtime_factor``) and keep the
    pre-PR-10 default unchanged.
    """
    cpus = os.cpu_count() or 1
    if executor == "process":
        try:
            usable = len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):  # platforms without affinity
            usable = cpus
        return max(1, min(n_jobs, usable, cpus))
    return max(1, min(n_jobs, cpus))


def tune_many(
    jobs: list[BatchJob],
    *,
    max_workers: int | None = None,
    executor: str = "thread",
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[TuningResult]:
    """Tune every job, concurrently, returning results in job order.

    ``executor`` picks the scale-out mechanism.  ``"thread"`` (the
    default, unchanged semantics) runs jobs on a thread pool -- right
    when wall-clock is dominated by engine waits (``realtime_factor``),
    which release the GIL.  ``"process"`` runs each job in a worker
    process: jobs are pickled to workers that rebuild engine/LLM from
    the :class:`BatchJob` spec, install the shared on-disk artifact
    cache via the pool initializer, and attach zero-copy shared-memory
    views of every job catalog's :class:`CatalogStats`
    (:mod:`repro.db.shared_stats`) -- right when jobs are CPU-bound
    simulation work that a thread pool would serialize on the GIL.
    Results are byte-identical across serial, thread, and process
    paths: each job owns its engine, virtual clock, and LLM client, so
    only wall-clock time changes.

    ``cache_dir`` installs a shared persistent artifact cache for the
    duration of the batch (restoring the previously active cache after);
    omit it to use whatever cache is already active -- including none.
    Process workers inherit the same cache directory through their
    initializer, so the batch still shares one warm disk tier.
    """
    if not jobs:
        raise ConfigurationError("tune_many needs at least one job")
    if executor not in BATCH_EXECUTORS:
        raise ConfigurationError(
            f"unknown batch executor {executor!r}; "
            f"expected one of {BATCH_EXECUTORS}"
        )
    if max_workers is None:
        max_workers = _default_max_workers(len(jobs), executor)
    max_workers = max(1, min(max_workers, len(jobs)))

    previous = active_cache()
    if cache_dir is not None:
        install_cache(ArtifactCache(cache_dir))
    try:
        if max_workers == 1:
            return [_run_job(job) for job in jobs]
        if executor == "process":
            return _tune_many_process(jobs, max_workers, cache_dir)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_job, jobs))
    finally:
        if cache_dir is not None:
            install_cache(previous)


def _tune_many_process(
    jobs: list[BatchJob],
    max_workers: int,
    cache_dir: str | os.PathLike[str] | None,
) -> list[TuningResult]:
    """The ``executor="process"`` body of :func:`tune_many`.

    The active cache at this point is the batch cache (installed by the
    caller); its *root* travels to workers so every process shares the
    same disk tier (the memory tiers are process-local, which is
    exactly the cross-process cache-race scenario the store's atomic
    ``os.replace`` publishes are built for).  Journaled jobs write
    their journals directly from the worker process -- the journal
    file on the shared filesystem is the result/event stream back to
    the parent, same as the service layer reads it.
    """
    for job in jobs:
        _check_process_portable(job)
    cache = active_cache()
    cache_root = None
    if cache_dir is not None:
        cache_root = os.fspath(cache_dir)
    elif cache is not None and cache.root is not None:
        cache_root = cache.root
    publication = _publish_job_catalogs(jobs)
    ensure_pool_env()
    ctx = _BatchWorkerContext(
        cache_root=cache_root,
        shared_refs=publication.refs,
        caches_enabled=engine_module.CACHES_ENABLED,
    )
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=preferred_mp_context(),
            initializer=_init_batch_worker,
            initargs=(ctx,),
        ) as pool:
            return list(pool.map(_run_job, jobs))
    finally:
        publication.close()
