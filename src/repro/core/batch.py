"""Batched multi-workload tuning over a shared pool and shared cache.

:func:`tune_many` runs N independent tuning jobs concurrently.  Each job
gets its own engine, virtual clock, and LLM client, so job results are
byte-identical to running the same jobs serially -- concurrency changes
wall-clock time only.  What the jobs *share* is the process-wide
persistent :class:`repro.cache.ArtifactCache`: overlapping workloads
(TPC-H / TPC-DS / JOB share the planner, solver, and scheduler work for
any queries, plans, and prompts they have in common) warm each other's
artifacts mid-batch, and the disk tier carries the warmth to the next
invocation.

Threads, not processes, drive the jobs: a tune's wall-clock cost under a
positive ``realtime_factor`` is dominated by engine waits (sleeps), which
release the GIL -- the same property the PR-2 parallel selector exploits
-- and within one process all jobs see the same cache object without any
serialization.  Each job can still fan its own candidate evaluation over
worker processes via ``LambdaTuneOptions(workers=..., executor=...)``;
the round-based control flow inside each job is the unchanged PR-4
``RoundDriver`` machinery.

:class:`BatchJob` doubles as the execution recipe for the service layer
(:mod:`repro.service`): its :meth:`~BatchJob.build_engine` /
:meth:`~BatchJob.build_llm` factories are the *only* place engines and
LLM clients are constructed for batch and service work, so a resumed
service job rebuilds collaborators identically to a fresh one, and
:func:`run_job` is the single per-job runner both drivers share --
journaled (crash-safe via :class:`repro.session.TuningSession`) when the
job carries a ``journal_path``, plain otherwise.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache import ArtifactCache, active_cache, install_cache
from repro.core.result import TuningResult
from repro.core.tuner import LambdaTune, LambdaTuneOptions
from repro.db.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.llm.client import LLMClient
from repro.workloads.base import Workload
from repro.workloads.compile import make_engine


@dataclass(slots=True)
class BatchJob:
    """One workload to tune, with everything the tune needs.

    ``engine`` and ``llm`` default to a fresh default-configured engine
    for ``system`` and a fresh :class:`repro.llm.mock.SimulatedLLM`.
    Jobs must not share mutable collaborators: passing the same engine
    or a stateful LLM client (e.g. the fault-injecting wrapper) to two
    jobs makes results depend on scheduling order.
    """

    workload: Workload
    system: str = "postgres"
    options: LambdaTuneOptions = field(default_factory=LambdaTuneOptions)
    engine: DatabaseEngine | None = None
    llm: LLMClient | None = None
    #: Wall-clock seconds slept per simulated second of engine work on
    #: this job's engine (see ``DatabaseEngine.realtime_factor``).
    realtime_factor: float = 0.0
    #: Deterministic chaos plan (PR 3).  Installed on the built engine
    #: and wrapped around the built LLM client; results stay a pure
    #: function of ``(job, plan)``.  Ignored for an explicit ``engine``
    #: / ``llm`` -- the caller owns those collaborators.
    fault_plan: object | None = None
    #: Write-ahead journal for this job (crash-safe resume, PR 4).
    #: ``None`` tunes unjournaled.
    journal_path: str | os.PathLike[str] | None = None

    def build_engine(self) -> DatabaseEngine:
        """A fresh engine for this job (fault plan installed)."""
        engine = self.engine
        if engine is None:
            engine = make_engine(self.workload, self.system)
            if self.fault_plan is not None:
                engine.install_faults(self.fault_plan)
        if self.realtime_factor > 0:
            engine.realtime_factor = self.realtime_factor
        return engine

    def build_llm(self) -> LLMClient:
        """A fresh LLM client for this job (fault wrapper applied).

        The fault wrapper's transient-retry backoff sleeps are disabled:
        they are wall-clock only (the virtual clock never sees them), so
        in batch and service contexts they would merely stall a worker.
        """
        llm = self.llm
        if llm is not None:
            return llm
        from repro.llm.mock import SimulatedLLM

        llm = SimulatedLLM()
        if self.fault_plan is not None:
            from repro.faults import FaultyLLMClient

            llm = FaultyLLMClient(llm, self.fault_plan)
            llm.sleep = lambda seconds: None
        return llm

    def build(self) -> LambdaTune:
        return LambdaTune(
            self.build_engine(), self.build_llm(), options=self.options
        )


def run_job(job: BatchJob, *, journal_factory=None) -> TuningResult:
    """Run one job to completion; the shared batch/service runner.

    With a ``journal_path`` on the job the tune runs inside a
    :class:`~repro.session.TuningSession` (``journal_factory`` is
    forwarded, letting the service layer interpose cancellation and
    chaos checks); otherwise it is a plain ``tune()`` call.  Either way
    the result is bit-identical -- journaling observes, never perturbs.
    """
    tuner = job.build()
    queries = list(job.workload.queries)
    if job.journal_path is None:
        return tuner.tune(queries, workload_name=job.workload.name)
    from repro.session import TuningSession

    session = TuningSession(
        tuner,
        Path(job.journal_path),
        workload_name=job.workload.name,
        journal_factory=journal_factory,
    )
    return session.run(queries)


def resume_job(job: BatchJob, *, journal_factory=None) -> TuningResult:
    """Continue ``job``'s journal on freshly built collaborators.

    The engine is built *without* the fault plan -- resume reinstalls
    the journaled plan itself -- while the LLM client is rebuilt exactly
    as :meth:`BatchJob.build_llm` would, so replayed samples and fresh
    samples alike come from the same deterministic source.
    """
    if job.journal_path is None:
        raise ConfigurationError("resume_job needs a job with a journal_path")
    from repro.session import TuningSession

    engine = make_engine(job.workload, job.system)
    if job.realtime_factor > 0:
        engine.realtime_factor = job.realtime_factor
    return TuningSession.resume(
        Path(job.journal_path),
        engine=engine,
        llm=job.build_llm(),
        journal_factory=journal_factory,
    )


def _run_job(job: BatchJob) -> TuningResult:
    return run_job(job)


def tune_many(
    jobs: list[BatchJob],
    *,
    max_workers: int | None = None,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[TuningResult]:
    """Tune every job, concurrently, returning results in job order.

    ``cache_dir`` installs a shared persistent artifact cache for the
    duration of the batch (restoring the previously active cache after);
    omit it to use whatever cache is already active -- including none.
    """
    if not jobs:
        raise ConfigurationError("tune_many needs at least one job")
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 1)
    max_workers = max(1, min(max_workers, len(jobs)))

    previous = active_cache()
    if cache_dir is not None:
        install_cache(ArtifactCache(cache_dir))
    try:
        if max_workers == 1:
            return [_run_job(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_job, jobs))
    finally:
        if cache_dir is not None:
            install_cache(previous)
