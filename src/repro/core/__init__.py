"""lambda-Tune's core: prompt generation, selection, and evaluation.

- :mod:`repro.core.prompt` -- prompt template, workload compression, and
  the ILP snippet selector (paper §3).
- :mod:`repro.core.selector` -- round-based configuration selection with
  geometric timeouts (paper §4, Algorithm 2).
- :mod:`repro.core.evaluator` -- lazy index creation and per-query
  timeout accounting (paper §5.1, Algorithm 3).
- :mod:`repro.core.scheduler` -- the DP query scheduler minimizing
  expected index-creation cost (paper §5.2-5.3, Algorithm 4).
- :mod:`repro.core.clustering` -- K-means query clustering capping the
  DP input size (paper §5.4).
- :mod:`repro.core.tuner` -- the full pipeline (Algorithm 1).
"""

from repro.core.batch import BatchJob, tune_many
from repro.core.config import Configuration, parse_config_script
from repro.core.tuner import LambdaTune, LambdaTuneOptions

__all__ = [
    "BatchJob",
    "Configuration",
    "parse_config_script",
    "LambdaTune",
    "LambdaTuneOptions",
    "tune_many",
]
