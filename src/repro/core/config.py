"""Candidate configurations and parsing of LLM-generated scripts.

The LLM answers with a block of SQL commands (``ALTER SYSTEM SET`` /
``SET GLOBAL`` plus ``CREATE INDEX``), possibly interleaved with prose.
:func:`parse_config_script` extracts the valid commands, validates them
against the target engine's knob space and catalog, and drops anything
unusable -- real LLM output is messy and one bad line must not discard
an otherwise good configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.engine import DatabaseEngine
from repro.db.indexes import Index
from repro.db.knobs import KnobSpace
from repro.errors import CatalogError, ConfigurationRejectedError, KnobError

_SET_RE = re.compile(
    r"(?:ALTER\s+SYSTEM\s+SET|SET\s+GLOBAL|SET)\s+"
    r"([A-Za-z0-9_]+)\s*=\s*([^;\n]+)",
    re.IGNORECASE,
)
_INDEX_RE = re.compile(
    r"CREATE\s+(?:UNIQUE\s+)?INDEX\s+(?:IF\s+NOT\s+EXISTS\s+)?"
    r"(?:([A-Za-z0-9_]+)\s+)?ON\s+([A-Za-z0-9_]+)\s*\(([^)]+)\)",
    re.IGNORECASE,
)


@dataclass(slots=True)
class Configuration:
    """One candidate configuration: parameter settings plus indexes."""

    name: str
    settings: dict[str, object] = field(default_factory=dict)
    indexes: list[Index] = field(default_factory=list)
    raw_text: str = ""
    #: Lines that could not be validated (kept for diagnostics).
    rejected: list[str] = field(default_factory=list)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Configuration) and other.name == self.name

    @property
    def is_empty(self) -> bool:
        return not self.settings and not self.indexes

    def content_key(self) -> tuple:
        """Hashable identity of this configuration's tuning content.

        Covers name, parameter settings, and the recommended index set
        -- everything evaluation reads -- so caches keyed on it are
        invalidated when a configuration is mutated mid-selection.
        """
        return (
            self.name,
            tuple(sorted(self.settings.items())),
            tuple(index.key for index in self.indexes),
        )

    def without_indexes(self) -> "Configuration":
        """A copy restricted to parameter settings (Fig. 3 scenarios)."""
        return Configuration(
            name=self.name,
            settings=dict(self.settings),
            indexes=[],
            raw_text=self.raw_text,
            rejected=list(self.rejected),
        )

    def indexes_only(self) -> "Configuration":
        """A copy restricted to index recommendations (Fig. 8 scenario)."""
        return Configuration(
            name=self.name,
            settings={},
            indexes=list(self.indexes),
            raw_text=self.raw_text,
            rejected=list(self.rejected),
        )

    def apply_settings(self, engine: DatabaseEngine) -> float:
        """Apply parameter settings to the engine; returns restart time."""
        return engine.apply_config(self.settings)


def parse_config_script(
    text: str,
    knob_space: KnobSpace,
    catalog: Catalog,
    *,
    name: str = "config",
    strict: bool = False,
) -> Configuration:
    """Parse an LLM response into a validated :class:`Configuration`.

    Invalid commands are dropped line by line (kept in ``rejected``);
    only typed errors ever escape this function.  With ``strict=True`` a
    script from which *nothing* valid could be salvaged raises
    :class:`ConfigurationRejectedError` instead of returning an empty
    configuration, so callers can distinguish "the LLM recommended the
    defaults" from "the response was garbage".
    """
    config = Configuration(name=name, raw_text=text)

    for match in _SET_RE.finditer(text):
        knob_name = match.group(1).lower()
        raw_value = match.group(2).strip().strip("'\"").rstrip(";").strip()
        if knob_name not in knob_space:
            config.rejected.append(match.group(0))
            continue
        try:
            value = knob_space.coerce(knob_name, raw_value)
        except KnobError:
            config.rejected.append(match.group(0))
            continue
        config.settings[knob_name] = value

    seen: set[tuple[str, tuple[str, ...]]] = set()
    for match in _INDEX_RE.finditer(text):
        index_name = (match.group(1) or "").lower()
        table = match.group(2).lower()
        columns = tuple(
            column.strip().lower()
            for column in match.group(3).split(",")
            if column.strip()
        )
        try:
            index = Index(table, columns, name=index_name)
            index.validate(catalog)
        except CatalogError:
            config.rejected.append(match.group(0))
            continue
        if index.key in seen:
            continue
        seen.add(index.key)
        config.indexes.append(index)

    if strict and config.is_empty:
        raise ConfigurationRejectedError(
            f"no valid commands in configuration script {name!r} "
            f"({len(config.rejected)} rejected)"
        )
    return config
