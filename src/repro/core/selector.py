"""Configuration selection (paper §4, Algorithm 2).

The selection control flow lives in :mod:`repro.core.rounds` -- one
round-driver over an explicit :class:`~repro.core.rounds.SelectionState`
-- and the classes here bind it to an execution strategy:

- :class:`ConfigurationSelector` runs the paper's serial algorithm
  (:class:`~repro.core.rounds.SerialExecution`);
- :class:`ParallelConfigurationSelector` fans each phase's candidate
  evaluations over a worker pool
  (:class:`~repro.core.parallel.ParallelExecution`) with byte-identical
  results.

Both accept a rehydrated ``state``/``cursor`` pair (see
:mod:`repro.session`) to continue an interrupted selection exactly where
it stopped.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.config import Configuration
from repro.core.parallel import ParallelExecution
from repro.core.rounds import (
    BestConfig,
    RoundCursor,
    RoundDriver,
    SelectionResult,
    SelectionState,
    SerialExecution,
    TuningObserver,
)
from repro.db.engine import DatabaseEngine
from repro.workloads.base import Query

__all__ = [
    "BestConfig",
    "SelectionResult",
    "ConfigurationSelector",
    "ParallelConfigurationSelector",
]


class ConfigurationSelector:
    """Runs Algorithm 2 against a live engine, one Update at a time."""

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        initial_timeout: float = 10.0,
        alpha: float = 10.0,
        adaptive_timeout: bool = True,
        max_rounds: int = 64,
    ) -> None:
        self._driver = RoundDriver(
            engine,
            evaluator,
            initial_timeout=initial_timeout,
            alpha=alpha,
            adaptive_timeout=adaptive_timeout,
            max_rounds=max_rounds,
        )

    @property
    def driver(self) -> RoundDriver:
        return self._driver

    def _strategy(self):
        return SerialExecution()

    def select(
        self,
        workload: list[Query],
        configs: list[Configuration],
        *,
        state: SelectionState | None = None,
        cursor: RoundCursor | None = None,
        observer: TuningObserver | None = None,
    ) -> SelectionResult:
        """Identify the best configuration among the candidates.

        See :meth:`repro.core.rounds.RoundDriver.run` for quarantine and
        resume semantics.
        """
        return self._driver.run(
            workload,
            configs,
            self._strategy(),
            state=state,
            cursor=cursor,
            observer=observer,
        )


class ParallelConfigurationSelector(ConfigurationSelector):
    """Algorithm 2 with per-round candidate evaluations fanned over a pool.

    Speculate/merge/recompute semantics (and the proof sketch of
    byte-identity with the serial selector) are documented on
    :class:`repro.core.parallel.ParallelExecution`.
    """

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        workers: int = 0,
        executor: str = "process",
        mp_context: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(engine, evaluator, **kwargs)
        self._workers = max(1, int(workers))
        self._executor = executor
        self._mp_context = mp_context
        #: Merge accounting for the most recent ``select`` call:
        #: speculative outcomes folded as-is, outcomes discarded and
        #: recomputed serially, and Update calls skipped entirely.
        self.last_stats: dict[str, int] = {}

    def _strategy(self):
        return ParallelExecution(
            workers=self._workers,
            executor=self._executor,
            mp_context=self._mp_context,
        )

    def select(
        self,
        workload: list[Query],
        configs: list[Configuration],
        *,
        state: SelectionState | None = None,
        cursor: RoundCursor | None = None,
        observer: TuningObserver | None = None,
    ) -> SelectionResult:
        result = super().select(
            workload, configs, state=state, cursor=cursor, observer=observer
        )
        self.last_stats = result.stats
        return result
