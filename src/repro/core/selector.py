"""Configuration selection (paper §4, Algorithm 2).

Evaluates the k candidate configurations in rounds with geometrically
increasing timeouts (factor alpha), never re-runs completed queries,
iterates in decreasing-throughput order, folds index-creation overheads
into the round timeout, and -- once a first configuration completes --
gives every other candidate one chance under the configuration-specific
timeout ``best.time - meta[c].time`` (any configuration exceeding it is
provably sub-optimal).

Theorem 4.3: total evaluation time is O(k * alpha * C_best) for
alpha >= 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.parallel import EvalOutcome, EvalTask, TaskRunner, WorkerContext
from repro.db import engine as engine_module
from repro.db.engine import DatabaseEngine, EngineState
from repro.errors import BudgetExceededError
from repro.workloads.base import Query


@dataclass(slots=True)
class BestConfig:
    """The best fully-evaluated configuration so far."""

    time: float = math.inf
    config: Configuration | None = None


@dataclass(slots=True)
class SelectionResult:
    """Outcome of Algorithm 2 with per-configuration metadata."""

    best: BestConfig
    meta: dict[str, ConfigMeta]
    rounds: int
    #: (clock time, best completed workload time) trace for plots.
    trace: list[tuple[float, float]] = field(default_factory=list)


class ConfigurationSelector:
    """Runs Algorithm 2 against a live engine."""

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        initial_timeout: float = 10.0,
        alpha: float = 10.0,
        adaptive_timeout: bool = True,
        max_rounds: int = 64,
    ) -> None:
        if initial_timeout <= 0:
            raise BudgetExceededError("initial timeout must be positive")
        if alpha <= 1.0:
            raise BudgetExceededError("alpha must exceed 1 for progress")
        self._engine = engine
        self._evaluator = evaluator
        self._initial_timeout = initial_timeout
        self._alpha = alpha
        self._adaptive_timeout = adaptive_timeout
        self._max_rounds = max_rounds

    def select(
        self, workload: list[Query], configs: list[Configuration]
    ) -> SelectionResult:
        """Identify the best configuration among the candidates.

        Candidates whose evaluation fails (crash, OOM, inapplicable
        script) are quarantined: they drop out of every later round and
        of the final candidates pass.  If every candidate fails, the
        result carries ``best.config is None`` and the per-candidate
        failure records -- callers degrade gracefully instead of
        receiving an exception mid-tune.
        """
        if not configs:
            raise BudgetExceededError("no candidate configurations to select from")
        best = BestConfig()
        meta: dict[str, ConfigMeta] = {
            config.name: ConfigMeta() for config in configs
        }
        trace: list[tuple[float, float]] = []

        timeout = self._initial_timeout
        rounds = 0
        candidates: list[Configuration] = []

        while math.isinf(best.time):
            active = self._surviving(configs, meta)
            if not active:
                # Every candidate is quarantined; report, don't raise.
                return SelectionResult(
                    best=best, meta=meta, rounds=rounds, trace=trace
                )
            rounds += 1
            if rounds > self._max_rounds:
                raise BudgetExceededError(
                    f"no configuration finished within {self._max_rounds} rounds"
                )
            for config in self._by_throughput(active, meta):
                self._update(config, workload, meta, timeout, best, trace)
                if meta[config.name].is_complete:
                    candidates = [c for c in configs if c.name != config.name]
                    break
            if self._adaptive_timeout:
                # Fold reconfiguration overheads into the timeout so
                # index builds never dominate query evaluation (§4).
                # ``index_time`` is cumulative across rounds: evaluation
                # drops its indexes on exit, so a slow configuration may
                # rebuild the same index every round and the cumulative
                # figure is the conservative upper bound on what the
                # next round may spend rebuilding before any query runs.
                index_times = (m.index_time for m in meta.values())
                timeout = max(timeout, *index_times)
            timeout *= self._alpha

        for config in self._by_throughput(self._surviving(candidates, meta), meta):
            self._update(config, workload, meta, timeout, best, trace)

        return SelectionResult(best=best, meta=meta, rounds=rounds, trace=trace)

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _surviving(
        configs: list[Configuration], meta: dict[str, ConfigMeta]
    ) -> list[Configuration]:
        """Candidates not yet quarantined by a failed evaluation."""
        return [config for config in configs if not meta[config.name].failed]

    def _by_throughput(
        self, configs: list[Configuration], meta: dict[str, ConfigMeta]
    ) -> list[Configuration]:
        """Decreasing order of queries finished per unit time."""
        return sorted(
            configs,
            key=lambda config: -meta[config.name].throughput(),
        )

    def _update(
        self,
        config: Configuration,
        workload: list[Query],
        meta: dict[str, ConfigMeta],
        timeout: float,
        best: BestConfig,
        trace: list[tuple[float, float]],
    ) -> None:
        """The paper's Update procedure (Algorithm 2, lines 16-25)."""
        config_meta = meta[config.name]
        if config_meta.failed:
            return
        if config_meta.is_complete and not self._pending(workload, config_meta):
            return

        effective_timeout = timeout
        if not math.isinf(best.time):
            # Configuration-specific timeout: anything slower than the
            # best known total is provably sub-optimal.
            effective_timeout = best.time - config_meta.time
            if effective_timeout <= 0:
                return

        pending = self._pending(workload, config_meta)
        self._evaluator.evaluate(config, pending, effective_timeout, config_meta)

        if config_meta.is_complete and config_meta.time < best.time:
            best.time = config_meta.time
            best.config = config
            trace.append((self._engine.clock.now, best.time))

    @staticmethod
    def _pending(workload: list[Query], config_meta: ConfigMeta) -> list[Query]:
        return [
            query
            for query in workload
            if query.name not in config_meta.completed_queries
        ]


class ParallelConfigurationSelector(ConfigurationSelector):
    """Algorithm 2 with per-round candidate evaluations fanned over a pool.

    **Speculate / merge / recompute.**  Each phase -- one round of the
    main loop, or the final candidates pass -- first computes the
    canonical throughput order, then *speculates* every ``Update`` call
    in that order: for candidate *i* it predicts the engine state the
    serial algorithm would present (base settings merged with the
    coerced settings of candidates ``1..i-1``, the unchanged physical
    design -- evaluation is net-zero on indexes) and the effective
    timeout, and ships both to an isolated worker
    (:mod:`repro.core.parallel`).  Workers run Algorithm 3 on forked
    engines with zero-based recording clocks.

    The *merge* folds outcomes back in canonical order.  A speculative
    outcome is folded only when it provably equals what a serial
    ``Update`` would have produced:

    - the predicted start settings match the live engine's settings
      (detects mispredicted settings threading, e.g. an earlier
      candidate that was skipped serially but speculated as run), and
    - the predicted timeout matches the actual one exactly, **or** the
      speculative run completed and replaying Algorithm 3's
      ``remaining_time`` cascade over its per-query execution times --
      the exact float subtractions and comparisons the serial path would
      perform -- shows every budget check still passing under the actual
      timeout (a completed run is step-for-step identical under any
      timeout its cascade fits).

    A fold applies the candidate's settings to the main engine without
    restart cost, then replays the worker's individual clock advances in
    order -- the restart advance is the first of them -- so clock floats
    accumulate in exactly the serial order.  Any outcome failing the
    checks is discarded and *recomputed* serially via the inherited
    ``_update`` on the main engine.  During the geometric rounds the
    predictions are exact by construction (no candidate is complete
    before the first completion, so no ``Update`` is skipped and every
    timeout equals the round timeout); recomputes only arise in the
    final candidates pass when an early candidate improves ``best``.

    Results are **byte-identical** to :class:`ConfigurationSelector` --
    same ``SelectionResult`` floats, trace, and rounds for the same
    seed -- which the equivalence tests and ``scripts/bench.py`` assert.
    """

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        workers: int = 0,
        executor: str = "process",
        mp_context: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(engine, evaluator, **kwargs)
        self._workers = max(1, int(workers))
        self._executor = executor
        self._mp_context = mp_context
        #: Merge accounting for the most recent ``select`` call:
        #: speculative outcomes folded as-is, outcomes discarded and
        #: recomputed serially, and Update calls skipped entirely.
        self.last_stats: dict[str, int] = {}

    def select(
        self, workload: list[Query], configs: list[Configuration]
    ) -> SelectionResult:
        if not configs:
            raise BudgetExceededError("no candidate configurations to select from")
        best = BestConfig()
        meta: dict[str, ConfigMeta] = {
            config.name: ConfigMeta() for config in configs
        }
        trace: list[tuple[float, float]] = []

        timeout = self._initial_timeout
        rounds = 0
        candidates: list[Configuration] = []
        self.last_stats = {"folded": 0, "recomputed": 0, "skipped": 0, "inline": 0}

        ctx = WorkerContext(
            engine_cls=type(self._engine),
            catalog=self._engine.catalog,
            hardware=self._engine.hardware,
            workload=tuple(workload),
            evaluator_options=self._evaluator.worker_options(),
            caches_enabled=engine_module.CACHES_ENABLED,
            realtime_factor=self._engine.realtime_factor,
            fault_plan=self._engine.fault_plan,
        )
        with TaskRunner(
            ctx,
            workers=self._workers,
            executor=self._executor,
            mp_context=self._mp_context,
        ) as runner:
            while math.isinf(best.time):
                active = self._surviving(configs, meta)
                if not active:
                    return SelectionResult(
                        best=best, meta=meta, rounds=rounds, trace=trace
                    )
                rounds += 1
                if rounds > self._max_rounds:
                    raise BudgetExceededError(
                        f"no configuration finished within {self._max_rounds} rounds"
                    )
                ordered = self._by_throughput(active, meta)
                tasks = self._speculate(ordered, workload, meta, timeout, best)
                stream = runner.stream(tasks)
                try:
                    for config, (task, outcome) in zip(ordered, stream):
                        self._fold(config, task, outcome, workload, meta, timeout, best, trace)
                        if meta[config.name].is_complete:
                            candidates = [c for c in configs if c.name != config.name]
                            break
                finally:
                    # The serial algorithm stops a round at its first
                    # completion; closing the stream cancels speculative
                    # work past the break point.
                    stream.close()
                if self._adaptive_timeout:
                    index_times = (m.index_time for m in meta.values())
                    timeout = max(timeout, *index_times)
                timeout *= self._alpha

            ordered = self._by_throughput(self._surviving(candidates, meta), meta)
            if ordered:
                # Evaluate the throughput leader inline on the live
                # engine: it is the likeliest candidate to improve
                # ``best``, and speculating the rest only *after* its
                # result is folded gives them near-exact timeout
                # predictions -- without this, every remaining candidate
                # is speculated against the stale pre-phase ``best`` and
                # the pool burns its time on timeouts the serial path
                # never grants.
                self.last_stats["inline"] += 1
                self._update(ordered[0], workload, meta, timeout, best, trace)
            rest = ordered[1:]
            tasks = self._speculate(rest, workload, meta, timeout, best)
            for config, (task, outcome) in zip(rest, runner.stream(tasks)):
                self._fold(config, task, outcome, workload, meta, timeout, best, trace)

        return SelectionResult(best=best, meta=meta, rounds=rounds, trace=trace)

    # -- speculation ---------------------------------------------------------------

    def _speculate(
        self,
        ordered: list[Configuration],
        workload: list[Query],
        meta: dict[str, ConfigMeta],
        timeout: float,
        best: BestConfig,
    ) -> list[EvalTask | None]:
        """Build one task per candidate the serial pass would evaluate.

        ``None`` marks candidates the serial pass is predicted to skip;
        those slots never reach the pool.
        """
        base_state = self._engine.capture_state()
        settings = dict(base_state.settings)
        tasks: list[EvalTask | None] = []
        for position, config in enumerate(ordered):
            config_meta = meta[config.name]
            pending = self._pending(workload, config_meta)
            if config_meta.failed:
                tasks.append(None)
                continue
            if config_meta.is_complete and not pending:
                tasks.append(None)
                continue
            predicted_timeout = timeout
            if not math.isinf(best.time):
                predicted_timeout = best.time - config_meta.time
                if predicted_timeout <= 0:
                    tasks.append(None)
                    continue
            tasks.append(
                EvalTask(
                    position=position,
                    config=config,
                    pending=frozenset(query.name for query in pending),
                    timeout=predicted_timeout,
                    state=EngineState(
                        settings=tuple(sorted(settings.items())),
                        indexes=base_state.indexes,
                        clock=0.0,
                    ),
                    meta_time=config_meta.time,
                    meta_complete=config_meta.is_complete,
                    meta_index_time=config_meta.index_time,
                    meta_completed=tuple(sorted(config_meta.completed_queries)),
                )
            )
            # Thread the predicted settings: a run (not skipped) Update
            # leaves the candidate's coerced settings applied.
            settings.update(self._engine.coerced_settings(config.settings))
        return tasks

    # -- merge ---------------------------------------------------------------------

    def _fold(
        self,
        config: Configuration,
        task: EvalTask | None,
        outcome: EvalOutcome | None,
        workload: list[Query],
        meta: dict[str, ConfigMeta],
        timeout: float,
        best: BestConfig,
        trace: list[tuple[float, float]],
    ) -> None:
        """Fold one speculative outcome, or recompute it serially."""
        config_meta = meta[config.name]
        if config_meta.failed:
            self.last_stats["skipped"] += 1
            return
        if config_meta.is_complete and not self._pending(workload, config_meta):
            self.last_stats["skipped"] += 1
            return
        actual_timeout = timeout
        if not math.isinf(best.time):
            actual_timeout = best.time - config_meta.time
            if actual_timeout <= 0:
                self.last_stats["skipped"] += 1
                return

        if not self._fold_is_valid(task, outcome, actual_timeout):
            # Misprediction (an earlier candidate changed ``best`` or the
            # settings threading): fall back to the serial Update on the
            # live engine.
            self.last_stats["recomputed"] += 1
            self._update(config, workload, meta, timeout, best, trace)
            return
        self.last_stats["folded"] += 1

        # Mirror ``config.apply_settings`` minus the restart advance --
        # the worker recorded that advance, and replaying the recording
        # preserves the serial order of clock-float additions.  When the
        # script itself is inapplicable the serial apply raises before
        # mutating anything, so the fold leaves the settings untouched
        # too (the worker recorded the same failure and no advances).
        if outcome.settings_applied:
            self._engine.set_many(config.settings)
        clock = self._engine.clock
        for seconds in outcome.advances:
            clock.advance(seconds)

        config_meta.time = outcome.time
        config_meta.is_complete = outcome.is_complete
        config_meta.index_time = outcome.index_time
        config_meta.completed_queries = set(outcome.completed)
        config_meta.failed = outcome.failed
        config_meta.failure = outcome.failure

        if config_meta.is_complete and config_meta.time < best.time:
            best.time = config_meta.time
            best.config = config
            trace.append((clock.now, best.time))

    def _fold_is_valid(
        self,
        task: EvalTask | None,
        outcome: EvalOutcome | None,
        actual_timeout: float,
    ) -> bool:
        if task is None or outcome is None:
            return False
        live_settings = tuple(sorted(self._engine.config.items()))
        if task.state.settings != live_settings:
            return False
        if task.timeout == actual_timeout:
            return True
        if not outcome.is_complete:
            return False
        # The speculative run completed under the predicted timeout.  It
        # is step-for-step identical under the actual timeout iff every
        # per-query budget check still passes -- decided by replaying
        # Algorithm 3's ``remaining_time`` cascade with the *exact*
        # float operations ``evaluate``/``execute`` would perform.  (A
        # summed comparison is not enough: the serial cascade subtracts
        # sequentially, so at exact ties -- duplicate candidates make
        # ``best.time - meta.time`` hit the run length to the bit -- a
        # differently-associated sum can disagree with it by one ulp.)
        remaining = actual_timeout
        for seconds in outcome.executions:
            if remaining <= 0 or seconds > remaining:
                return False
            remaining -= seconds
        return True
