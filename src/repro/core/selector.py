"""Configuration selection (paper §4, Algorithm 2).

Evaluates the k candidate configurations in rounds with geometrically
increasing timeouts (factor alpha), never re-runs completed queries,
iterates in decreasing-throughput order, folds index-creation overheads
into the round timeout, and -- once a first configuration completes --
gives every other candidate one chance under the configuration-specific
timeout ``best.time - meta[c].time`` (any configuration exceeding it is
provably sub-optimal).

Theorem 4.3: total evaluation time is O(k * alpha * C_best) for
alpha >= 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.db.engine import DatabaseEngine
from repro.errors import BudgetExceededError
from repro.workloads.base import Query


@dataclass(slots=True)
class BestConfig:
    """The best fully-evaluated configuration so far."""

    time: float = math.inf
    config: Configuration | None = None


@dataclass(slots=True)
class SelectionResult:
    """Outcome of Algorithm 2 with per-configuration metadata."""

    best: BestConfig
    meta: dict[str, ConfigMeta]
    rounds: int
    #: (clock time, best completed workload time) trace for plots.
    trace: list[tuple[float, float]] = field(default_factory=list)


class ConfigurationSelector:
    """Runs Algorithm 2 against a live engine."""

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        initial_timeout: float = 10.0,
        alpha: float = 10.0,
        adaptive_timeout: bool = True,
        max_rounds: int = 64,
    ) -> None:
        if initial_timeout <= 0:
            raise BudgetExceededError("initial timeout must be positive")
        if alpha <= 1.0:
            raise BudgetExceededError("alpha must exceed 1 for progress")
        self._engine = engine
        self._evaluator = evaluator
        self._initial_timeout = initial_timeout
        self._alpha = alpha
        self._adaptive_timeout = adaptive_timeout
        self._max_rounds = max_rounds

    def select(
        self, workload: list[Query], configs: list[Configuration]
    ) -> SelectionResult:
        """Identify the best configuration among the candidates."""
        if not configs:
            raise BudgetExceededError("no candidate configurations to select from")
        best = BestConfig()
        meta: dict[str, ConfigMeta] = {
            config.name: ConfigMeta() for config in configs
        }
        trace: list[tuple[float, float]] = []

        timeout = self._initial_timeout
        rounds = 0
        candidates: list[Configuration] = []

        while math.isinf(best.time):
            rounds += 1
            if rounds > self._max_rounds:
                raise BudgetExceededError(
                    f"no configuration finished within {self._max_rounds} rounds"
                )
            for config in self._by_throughput(configs, meta):
                self._update(config, workload, meta, timeout, best, trace)
                if meta[config.name].is_complete:
                    candidates = [c for c in configs if c.name != config.name]
                    break
            if self._adaptive_timeout:
                # Fold reconfiguration overheads into the timeout so
                # index builds never dominate query evaluation (§4).
                # ``index_time`` is cumulative across rounds: evaluation
                # drops its indexes on exit, so a slow configuration may
                # rebuild the same index every round and the cumulative
                # figure is the conservative upper bound on what the
                # next round may spend rebuilding before any query runs.
                index_times = (m.index_time for m in meta.values())
                timeout = max(timeout, *index_times)
            timeout *= self._alpha

        for config in self._by_throughput(candidates, meta):
            self._update(config, workload, meta, timeout, best, trace)

        return SelectionResult(best=best, meta=meta, rounds=rounds, trace=trace)

    # -- internals ----------------------------------------------------------------

    def _by_throughput(
        self, configs: list[Configuration], meta: dict[str, ConfigMeta]
    ) -> list[Configuration]:
        """Decreasing order of queries finished per unit time."""
        return sorted(
            configs,
            key=lambda config: -meta[config.name].throughput(),
        )

    def _update(
        self,
        config: Configuration,
        workload: list[Query],
        meta: dict[str, ConfigMeta],
        timeout: float,
        best: BestConfig,
        trace: list[tuple[float, float]],
    ) -> None:
        """The paper's Update procedure (Algorithm 2, lines 16-25)."""
        config_meta = meta[config.name]
        if config_meta.is_complete and not self._pending(workload, config_meta):
            return

        effective_timeout = timeout
        if not math.isinf(best.time):
            # Configuration-specific timeout: anything slower than the
            # best known total is provably sub-optimal.
            effective_timeout = best.time - config_meta.time
            if effective_timeout <= 0:
                return

        pending = self._pending(workload, config_meta)
        self._evaluator.evaluate(config, pending, effective_timeout, config_meta)

        if config_meta.is_complete and config_meta.time < best.time:
            best.time = config_meta.time
            best.config = config
            trace.append((self._engine.clock.now, best.time))

    @staticmethod
    def _pending(workload: list[Query], config_meta: ConfigMeta) -> list[Query]:
        return [
            query
            for query in workload
            if query.name not in config_meta.completed_queries
        ]
