"""Common result types shared by lambda-Tune and every baseline tuner."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TracePoint:
    """Best workload execution time known at a point in tuning time.

    This is exactly one data point of the paper's convergence plots
    (Figures 3 and 4): x = optimization time, y = best execution time
    found so far.
    """

    time: float
    best_time: float


@dataclass(slots=True)
class TuningResult:
    """Outcome of one tuning run."""

    tuner: str
    workload: str
    system: str
    best_time: float
    best_config: object | None
    trace: list[TracePoint] = field(default_factory=list)
    configs_evaluated: int = 0
    tuning_seconds: float = 0.0
    extras: dict[str, object] = field(default_factory=dict)

    def best_time_until(self, time_limit: float) -> float:
        """Best execution time found up to ``time_limit`` (inf if none)."""
        best = float("inf")
        for point in self.trace:
            if point.time <= time_limit and point.best_time < best:
                best = point.best_time
        return best

    def record(self, time: float, best_time: float) -> None:
        self.trace.append(TracePoint(time=time, best_time=best_time))
        if best_time < self.best_time:
            self.best_time = best_time

    def fingerprint(self) -> dict:
        """Bit-exact, JSON-serializable identity of this result.

        Floats are rendered with ``repr`` (shortest round-trip form), so
        two results fingerprint equal iff their floats are bit-identical
        -- the equality the determinism, parallel-equivalence, and
        crash-resume guarantees are stated in.  Per-configuration
        ``meta`` records are included when present in ``extras``;
        execution bookkeeping (e.g. parallel merge stats) is not part of
        result identity and is excluded.
        """
        meta = self.extras.get("meta", {})
        return {
            "tuner": self.tuner,
            "workload": self.workload,
            "system": self.system,
            "best_time": repr(self.best_time),
            "tuning_seconds": repr(self.tuning_seconds),
            "best_config": self.best_config.name if self.best_config else None,
            "configs_evaluated": self.configs_evaluated,
            "rounds": self.extras.get("rounds"),
            "trace": [
                (repr(point.time), repr(point.best_time))
                for point in self.trace
            ],
            "meta": {
                name: {
                    "time": repr(m.time),
                    "is_complete": m.is_complete,
                    "index_time": repr(m.index_time),
                    "completed_queries": sorted(m.completed_queries),
                    "failed": m.failed,
                    "failure": m.failure,
                }
                for name, m in sorted(meta.items())
            },
            "failed_configs": list(self.extras.get("failed_configs", [])),
            "fallback": self.extras.get("fallback", False),
        }
