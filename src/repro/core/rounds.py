"""The Algorithm-2 round-driver: one selection state machine, two executors.

This module is the *single* home of the paper's configuration-selection
control flow (§4, Algorithm 2).  Serial and parallel selection used to
carry hand-synchronized copies of the round loop; they are now two
:class:`ExecutionStrategy` implementations driven over one explicit,
serializable :class:`SelectionState`:

- the quarantine filter (failed candidates drop out of every later
  round),
- the decreasing-throughput iteration order,
- the Update procedure with its configuration-specific timeout
  ``best.time - meta[c].time``,
- the adaptive-timeout fold of index-creation overheads, and
- the final candidates pass once a first configuration completes

all live here and only here.  :class:`SelectionState` round-trips
through :mod:`repro.session.codec`, and the driver accepts a
:class:`RoundCursor` to continue a selection mid-phase -- the mechanism
crash-safe tuning sessions (:mod:`repro.session`) are built on.

Both execution strategies reach query execution through
``ConfigurationEvaluator.evaluate``, which runs each index-stable
segment of the scheduled order in one batched ``execute_many`` call
(scalar per-query reference retained behind
``repro.db.planner.VECTORIZED_ENABLED``); the Update timeouts threaded
from here are consumed by the batch's prefix-sum cut bit-identically
to the scalar subtraction loop.

Theorem 4.3: total evaluation time is O(k * alpha * C_best) for
alpha >= 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.db.engine import DatabaseEngine
from repro.errors import BudgetExceededError
from repro.workloads.base import Query

#: The geometric main rounds of Algorithm 2 (lines 3-15).
PHASE_ROUNDS = "rounds"
#: The one-chance candidates pass after the first completion (line 14).
PHASE_FINAL = "final"


@dataclass(slots=True)
class BestConfig:
    """The best fully-evaluated configuration so far."""

    time: float = math.inf
    config: Configuration | None = None


@dataclass(slots=True)
class SelectionResult:
    """Outcome of Algorithm 2 with per-configuration metadata."""

    best: BestConfig
    meta: dict[str, ConfigMeta]
    rounds: int
    #: (clock time, best completed workload time) trace for plots.
    trace: list[tuple[float, float]] = field(default_factory=list)
    #: Parallel merge accounting (folded/recomputed/skipped/inline).
    #: Execution bookkeeping, never part of result identity: a resumed
    #: run legitimately folds fewer outcomes than an uninterrupted one.
    stats: dict[str, int] = field(default_factory=dict)


def new_stats() -> dict[str, int]:
    return {"folded": 0, "recomputed": 0, "skipped": 0, "inline": 0}


@dataclass(slots=True)
class SelectionState:
    """The explicit, serializable state of one Algorithm-2 selection.

    Everything the round loop reads or writes lives here: the current
    round timeout, the round counter, the per-configuration
    :class:`ConfigMeta` table, the running best, the convergence trace,
    the candidates earmarked for the final pass, and the parallel merge
    statistics.  Transitions are expressed as methods so the serial and
    parallel executors cannot drift apart, and the whole object
    round-trips through :mod:`repro.session.codec` for
    checkpoint/resume.
    """

    timeout: float
    rounds: int = 0
    meta: dict[str, ConfigMeta] = field(default_factory=dict)
    best: BestConfig = field(default_factory=BestConfig)
    trace: list[tuple[float, float]] = field(default_factory=list)
    #: Names of the remaining candidates once a first configuration
    #: completes (``None`` until then).
    candidates: list[str] | None = None
    stats: dict[str, int] = field(default_factory=new_stats)

    @classmethod
    def initial(
        cls, configs: list[Configuration], initial_timeout: float
    ) -> "SelectionState":
        return cls(
            timeout=initial_timeout,
            meta={config.name: ConfigMeta() for config in configs},
        )

    # -- transitions ------------------------------------------------------------

    @property
    def finished_first(self) -> bool:
        """Whether some configuration has completed the whole workload."""
        return not math.isinf(self.best.time)

    def begin_round(self, max_rounds: int) -> None:
        """Start one geometric round (Algorithm 2, line 3)."""
        self.rounds += 1
        if self.rounds > max_rounds:
            raise BudgetExceededError(
                f"no configuration finished within {max_rounds} rounds"
            )

    def fold_update(
        self, config: Configuration, meta: ConfigMeta, clock_now: float
    ) -> bool:
        """Fold one Update outcome into best/trace (lines 23-25).

        ``meta`` is the (already mutated) per-configuration record;
        returns whether the running best improved.
        """
        if meta.is_complete and meta.time < self.best.time:
            self.best.time = meta.time
            self.best.config = config
            self.trace.append((clock_now, self.best.time))
            return True
        return False

    def advance_timeout(self, alpha: float, adaptive: bool) -> None:
        """End-of-round timeout transition (line 15).

        With adaptive timeouts, reconfiguration overheads are folded in
        first so index builds never dominate query evaluation (§4).
        ``index_time`` is cumulative across rounds: evaluation drops its
        indexes on exit, so a slow configuration may rebuild the same
        index every round and the cumulative figure is the conservative
        upper bound on what the next round may spend rebuilding before
        any query runs.
        """
        if adaptive:
            index_times = (m.index_time for m in self.meta.values())
            self.timeout = max(self.timeout, *index_times)
        self.timeout *= alpha

    def enter_final_pass(
        self, configs: list[Configuration], winner: Configuration
    ) -> None:
        """Earmark every other candidate for the final pass (line 14)."""
        self.candidates = [
            config.name for config in configs if config.name != winner.name
        ]

    def result(self) -> SelectionResult:
        return SelectionResult(
            best=self.best,
            meta=self.meta,
            rounds=self.rounds,
            trace=self.trace,
            stats=self.stats,
        )


@dataclass(slots=True)
class RoundCursor:
    """Where inside a phase a resumed selection should pick back up.

    ``order`` is the phase's canonical candidate order as journaled by
    its ``round_started`` event; ``position`` is the index of the next
    candidate to evaluate.  Candidates the original run *skipped* emit
    no journal events, so a cursor may point at one -- re-evaluating the
    skip condition is deterministic and free, which keeps the cursor
    well-defined without journaling non-events.
    """

    phase: str
    order: list[str]
    position: int = 0

    def remaining(
        self, by_name: dict[str, Configuration]
    ) -> list[Configuration]:
        return [by_name[name] for name in self.order[self.position:]]


class TuningObserver:
    """No-op observer of the tuning pipeline.

    :class:`repro.session.TuningSession` subclasses this to journal
    every stage; the default implementation makes observation free for
    plain tunes.  Selection-level callbacks are invoked by
    :class:`RoundDriver`; pipeline-level ones by
    :class:`repro.core.tuner.LambdaTune`.
    """

    # -- pipeline stages (emitted by LambdaTune) ------------------------------

    def prompt_generated(self, prompt) -> None:
        pass

    def sample_accepted(self, ordinal: int, config: Configuration) -> None:
        pass

    def sample_dropped(
        self, ordinal: int, reason: str, *, llm_error: bool = False
    ) -> None:
        pass

    def selection_started(
        self,
        label: str,
        configs: list[Configuration],
        carryover_meta: dict[str, ConfigMeta] | None = None,
    ) -> None:
        pass

    def selection_finished(self, label: str, result: SelectionResult) -> None:
        pass

    def done(self, result) -> None:
        pass

    # -- selection events (emitted by RoundDriver) ----------------------------

    def round_started(
        self, state: SelectionState, phase: str, order: list[str]
    ) -> None:
        pass

    def update_folded(
        self,
        config: Configuration,
        position: int,
        meta: ConfigMeta,
        state: SelectionState,
        engine: DatabaseEngine,
    ) -> None:
        pass

    def config_quarantined(self, config: Configuration, meta: ConfigMeta) -> None:
        pass

    def best_improved(self, config: Configuration, state: SelectionState) -> None:
        pass

    def round_checkpoint(
        self, state: SelectionState, engine: DatabaseEngine
    ) -> None:
        pass


NULL_OBSERVER = TuningObserver()


class ExecutionStrategy:
    """How one phase's Update calls are executed (serial or pooled).

    ``offset`` is the starting position within the phase's canonical
    order -- non-zero only when a :class:`RoundCursor` resumed the phase
    mid-way -- and keeps journaled ``update_folded`` positions aligned
    with the order recorded by the phase's ``round_started`` event.
    """

    def begin(
        self,
        driver: "RoundDriver",
        workload: list[Query],
        state: SelectionState,
    ) -> None:
        self.driver = driver

    def run_round(
        self,
        ordered: list[Configuration],
        offset: int,
        workload: list[Query],
        state: SelectionState,
        observer: TuningObserver,
    ) -> Configuration | None:
        """Evaluate one main round; stop at (and return) the first
        configuration whose update completes the workload."""
        raise NotImplementedError

    def run_final(
        self,
        ordered: list[Configuration],
        offset: int,
        workload: list[Query],
        state: SelectionState,
        observer: TuningObserver,
    ) -> None:
        """Give every remaining candidate its one final chance."""
        raise NotImplementedError

    def finish(self) -> None:
        pass


class SerialExecution(ExecutionStrategy):
    """Algorithm 2 exactly as written: one Update at a time."""

    def run_round(self, ordered, offset, workload, state, observer):
        for position, config in enumerate(ordered, start=offset):
            self.driver.update(config, workload, state, observer, position)
            if state.meta[config.name].is_complete:
                return config
        return None

    def run_final(self, ordered, offset, workload, state, observer) -> None:
        for position, config in enumerate(ordered, start=offset):
            self.driver.update(config, workload, state, observer, position)


class RoundDriver:
    """Runs Algorithm 2 against a live engine via an execution strategy."""

    def __init__(
        self,
        engine: DatabaseEngine,
        evaluator: ConfigurationEvaluator,
        *,
        initial_timeout: float = 10.0,
        alpha: float = 10.0,
        adaptive_timeout: bool = True,
        max_rounds: int = 64,
    ) -> None:
        if initial_timeout <= 0:
            raise BudgetExceededError("initial timeout must be positive")
        if alpha <= 1.0:
            raise BudgetExceededError("alpha must exceed 1 for progress")
        self.engine = engine
        self.evaluator = evaluator
        self.initial_timeout = initial_timeout
        self.alpha = alpha
        self.adaptive_timeout = adaptive_timeout
        self.max_rounds = max_rounds

    # -- the loop (Algorithm 2, lines 1-15) -------------------------------------

    def run(
        self,
        workload: list[Query],
        configs: list[Configuration],
        strategy: ExecutionStrategy,
        *,
        state: SelectionState | None = None,
        cursor: RoundCursor | None = None,
        observer: TuningObserver | None = None,
    ) -> SelectionResult:
        """Identify the best configuration among the candidates.

        Candidates whose evaluation fails (crash, OOM, inapplicable
        script) are quarantined: they drop out of every later round and
        of the final candidates pass.  If every candidate fails, the
        result carries ``best.config is None`` and the per-candidate
        failure records -- callers degrade gracefully instead of
        receiving an exception mid-tune.

        Pass ``state``/``cursor`` (rehydrated from a session journal) to
        continue an interrupted selection: the driver resumes inside the
        cursor's phase at its position and the journaled prefix is never
        re-executed.
        """
        if not configs:
            raise BudgetExceededError("no candidate configurations to select from")
        observer = observer or NULL_OBSERVER
        by_name = {config.name: config for config in configs}
        if state is None:
            state = SelectionState.initial(configs, self.initial_timeout)

        strategy.begin(self, workload, state)
        try:
            while not state.finished_first:
                if cursor is not None and cursor.phase == PHASE_ROUNDS:
                    # Resumed mid-round: the round is already counted
                    # and journaled; evaluate only its remaining tail.
                    ordered = cursor.remaining(by_name)
                    offset = cursor.position
                    cursor = None
                else:
                    active = self.surviving(configs, state.meta)
                    if not active:
                        # Every candidate is quarantined; report, don't
                        # raise.
                        return state.result()
                    state.begin_round(self.max_rounds)
                    ordered = self.by_throughput(active, state.meta)
                    offset = 0
                    observer.round_started(
                        state, PHASE_ROUNDS, [c.name for c in ordered]
                    )
                winner = strategy.run_round(
                    ordered, offset, workload, state, observer
                )
                if winner is not None:
                    state.enter_final_pass(configs, winner)
                state.advance_timeout(self.alpha, self.adaptive_timeout)
                observer.round_checkpoint(state, self.engine)

            if cursor is not None and cursor.phase == PHASE_FINAL:
                ordered = cursor.remaining(by_name)
                offset = cursor.position
                cursor = None
            else:
                remaining = [by_name[name] for name in state.candidates or []]
                ordered = self.by_throughput(
                    self.surviving(remaining, state.meta), state.meta
                )
                offset = 0
                observer.round_started(
                    state, PHASE_FINAL, [c.name for c in ordered]
                )
            strategy.run_final(ordered, offset, workload, state, observer)
        finally:
            strategy.finish()

        return state.result()

    # -- the Update procedure (Algorithm 2, lines 16-25) ------------------------

    def update(
        self,
        config: Configuration,
        workload: list[Query],
        state: SelectionState,
        observer: TuningObserver,
        position: int = -1,
    ) -> None:
        meta = state.meta[config.name]
        if meta.failed:
            return
        if meta.is_complete and not self.pending(workload, meta):
            return
        effective_timeout = self.effective_timeout(state, meta)
        if effective_timeout is None:
            return

        pending = self.pending(workload, meta)
        self.evaluator.evaluate(config, pending, effective_timeout, meta)
        self.fold(config, meta, state, observer, position)

    def fold(
        self,
        config: Configuration,
        meta: ConfigMeta,
        state: SelectionState,
        observer: TuningObserver,
        position: int,
    ) -> None:
        """Fold one finished Update into the state, emitting events."""
        improved = state.fold_update(config, meta, self.engine.clock.now)
        observer.update_folded(config, position, meta, state, self.engine)
        if meta.failed:
            observer.config_quarantined(config, meta)
        if improved:
            observer.best_improved(config, state)

    def effective_timeout(
        self, state: SelectionState, meta: ConfigMeta
    ) -> float | None:
        """The Update call's timeout, or ``None`` when it must be skipped.

        Before the first completion every Update gets the round timeout;
        afterwards each configuration gets ``best.time - meta.time`` --
        anything slower than the best known total is provably
        sub-optimal (§4).
        """
        effective = state.timeout
        if state.finished_first:
            effective = state.best.time - meta.time
            if effective <= 0:
                return None
        return effective

    # -- shared loop-body helpers ------------------------------------------------

    @staticmethod
    def surviving(
        configs: list[Configuration], meta: dict[str, ConfigMeta]
    ) -> list[Configuration]:
        """Candidates not yet quarantined by a failed evaluation."""
        return [config for config in configs if not meta[config.name].failed]

    @staticmethod
    def by_throughput(
        configs: list[Configuration], meta: dict[str, ConfigMeta]
    ) -> list[Configuration]:
        """Decreasing order of queries finished per unit time."""
        return sorted(
            configs,
            key=lambda config: -meta[config.name].throughput(),
        )

    @staticmethod
    def pending(workload: list[Query], config_meta: ConfigMeta) -> list[Query]:
        return [
            query
            for query in workload
            if query.name not in config_meta.completed_queries
        ]
