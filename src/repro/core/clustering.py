"""Query clustering by index dependencies (paper §5.4).

The DP scheduler is exponential, so large workloads are first clustered:
each query becomes a binary vector over the candidate indexes (1 if the
query could use the index), clusters are formed with K-means under
Euclidean distance, and the scheduler then orders *clusters* -- each
labelled with the union of its members' indexes -- instead of single
queries.  The input to the DP is strictly capped at 13.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.scheduler import MAX_DP_INPUT
from repro.errors import SchedulerError


@dataclass(slots=True)
class QueryCluster:
    """A group of queries scheduled as one unit."""

    queries: list = field(default_factory=list)
    indexes: frozenset = frozenset()

    def __hash__(self) -> int:
        return hash(tuple(str(query) for query in self.queries))


def index_vectors(
    queries: Sequence[Hashable],
    index_map: Mapping[Hashable, frozenset],
) -> tuple[np.ndarray, list[Hashable]]:
    """Binary query-by-index matrix plus the index column order."""
    all_indexes = sorted(
        {index for handle in queries for index in index_map.get(handle, frozenset())},
        key=str,
    )
    position = {index: column for column, index in enumerate(all_indexes)}
    matrix = np.zeros((len(queries), max(1, len(all_indexes))), dtype=float)
    for row, handle in enumerate(queries):
        for index in index_map.get(handle, frozenset()):
            matrix[row, position[index]] = 1.0
    return matrix, all_indexes


def kmeans(
    points: np.ndarray, k: int, *, seed: int = 0, max_iterations: int = 50
) -> np.ndarray:
    """Plain Lloyd's K-means with k-means++ seeding; returns labels."""
    count = points.shape[0]
    if k <= 0:
        raise SchedulerError("k must be positive")
    if k >= count:
        return np.arange(count)

    rng = np.random.default_rng(seed)
    centers = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(count, dtype=int)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for center_index in range(k):
            members = points[labels == center_index]
            if len(members):
                centers[center_index] = members.mean(axis=0)
    return labels


def _kmeans_plus_plus(points: np.ndarray, k: int, rng) -> np.ndarray:
    count = points.shape[0]
    centers = [points[rng.integers(count)]]
    while len(centers) < k:
        distances = np.min(
            [np.sum((points - center) ** 2, axis=1) for center in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with a center; pick arbitrarily.
            centers.append(points[rng.integers(count)])
            continue
        probabilities = distances / total
        centers.append(points[rng.choice(count, p=probabilities)])
    return np.array(centers, dtype=float)


def cluster_queries(
    queries: Sequence[Hashable],
    index_map: Mapping[Hashable, frozenset],
    *,
    max_clusters: int = MAX_DP_INPUT,
    seed: int = 0,
) -> list[QueryCluster]:
    """Group queries into at most ``max_clusters`` clusters.

    Queries with identical index dependencies always land in the same
    cluster (they are indistinguishable to the cost model -- the paper's
    ``q1: A``, ``q2: A`` example).
    """
    if not queries:
        return []
    handles = list(queries)

    # Collapse identical dependency signatures first; K-means then only
    # has to merge *distinct* signatures down to the cap.
    by_signature: dict[frozenset, list] = {}
    for handle in handles:
        signature = frozenset(index_map.get(handle, frozenset()))
        by_signature.setdefault(signature, []).append(handle)

    signatures = sorted(by_signature, key=lambda s: (len(s), sorted(map(str, s))))
    if len(signatures) <= max_clusters:
        return [
            QueryCluster(queries=list(by_signature[signature]), indexes=signature)
            for signature in signatures
        ]

    signature_map = {signature: signature for signature in signatures}
    matrix, _ = index_vectors(signatures, signature_map)
    labels = kmeans(matrix, max_clusters, seed=seed)

    clusters: dict[int, QueryCluster] = {}
    for signature, label in zip(signatures, labels):
        cluster = clusters.setdefault(int(label), QueryCluster())
        cluster.queries.extend(by_signature[signature])
        cluster.indexes = cluster.indexes | signature
    return [clusters[label] for label in sorted(clusters)]
