"""Workload compression (paper §3.2).

The compressor decomposes the workload into *query snippets* -- binary
relationships between columns -- weights each join condition by the
optimizer-estimated cost of the joins that evaluate it, and selects the
most valuable subset under the token budget via the §3.3 ILP.

Beyond join conditions, the same machinery supports the other binary
relationships the paper mentions (§3.2: table co-occurrence in queries,
column usage), exposed through ``relation=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.prompt.ilp import SnippetSelection, select_snippets
from repro.db.engine import DatabaseEngine
from repro.db.explain import join_condition_values
from repro.errors import ReproError
from repro.sql.analyzer import JoinCondition

RELATIONS = ("join", "co_occurrence", "column_usage")


@dataclass(slots=True)
class CompressionResult:
    """Compressed workload representation for the prompt."""

    lines: list[str]
    tokens_used: int
    selected_value: float
    total_value: float
    conditions: set[JoinCondition] = field(default_factory=set)

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def coverage(self) -> float:
        """Fraction of total join-cost value conveyed to the LLM."""
        if self.total_value <= 0:
            return 1.0
        return self.selected_value / self.total_value


class WorkloadCompressor:
    """Builds the compressed workload block of the prompt."""

    def __init__(
        self,
        engine: DatabaseEngine,
        *,
        solver_method: str = "auto",
        relation: str = "join",
    ) -> None:
        if relation not in RELATIONS:
            raise ReproError(
                f"unknown relation {relation!r}; choose one of {RELATIONS}"
            )
        self._engine = engine
        self._solver_method = solver_method
        self._relation = relation

    # -- snippet extraction ------------------------------------------------------

    def snippet_values(self, queries: list) -> dict[JoinCondition, float]:
        """Value V(p) per binary relationship in the workload."""
        if self._relation == "join":
            return join_condition_values(self._engine, queries)
        if self._relation == "co_occurrence":
            return self._co_occurrence_values(queries)
        return self._column_usage_values(queries)

    def _co_occurrence_values(self, queries: list) -> dict[JoinCondition, float]:
        """Pairs of tables appearing in the same query, weighted by cost.

        Plans come from one batched :meth:`DatabaseEngine.plan_many`
        call -- the vectorized planning core costs the whole workload
        in a single pass, bit-identical to per-query ``explain``.
        """
        values: dict[JoinCondition, float] = {}
        plans = self._engine.plan_many(queries)
        for query, plan in zip(queries, plans):
            cost = plan.estimated_cost
            tables = sorted(self._engine.query_info(query).tables)
            for i, left in enumerate(tables):
                for right in tables[i + 1 :]:
                    condition = JoinCondition.make(
                        f"{left}._table", f"{right}._table"
                    )
                    values[condition] = values.get(condition, 0.0) + cost
        return values

    def _column_usage_values(self, queries: list) -> dict[JoinCondition, float]:
        """Filtered columns paired with their table, weighted by scan cost.

        Batched like :meth:`_co_occurrence_values`: one ``plan_many``
        pass replaces N ``explain`` round-trips, values unchanged.
        """
        values: dict[JoinCondition, float] = {}
        plans = self._engine.plan_many(queries)
        for query, plan in zip(queries, plans):
            scan_cost = {scan.table: scan.estimated_cost for scan in plan.scans}
            info = self._engine.query_info(query)
            for predicate in info.filters:
                condition = JoinCondition.make(
                    f"{predicate.table}._filters",
                    predicate.qualified_column,
                )
                values[condition] = values.get(condition, 0.0) + scan_cost.get(
                    predicate.table, 0.0
                )
        return values

    # -- compression -----------------------------------------------------------------

    def compress(self, queries: list, token_budget: int) -> CompressionResult:
        """Select and render the most valuable snippets under the budget."""
        values = self.snippet_values(queries)
        total_value = sum(values.values())
        selection = select_snippets(
            values, token_budget, method=self._solver_method
        )
        return CompressionResult(
            lines=render_lines(selection, values),
            tokens_used=selection.tokens_used,
            selected_value=selection.value,
            total_value=total_value,
            conditions=selection.conditions,
        )


def render_lines(
    selection: SnippetSelection,
    values: dict[JoinCondition, float] | None = None,
) -> list[str]:
    """Render ``head: partner, partner`` lines, most valuable first.

    Ordering lines by the total optimizer cost of their join conditions
    conveys importance to the LLM positionally, without spending tokens
    on explicit weights.
    """

    def line_value(head: str, partners: list[str]) -> float:
        if not values:
            return 0.0
        return sum(
            values.get(JoinCondition.make(head, partner), 0.0)
            for partner in partners
        )

    ordered = sorted(
        selection.lines.items(),
        key=lambda item: (-line_value(item[0], item[1]), item[0]),
    )
    return [f"{head}: {', '.join(partners)}" for head, partners in ordered]
