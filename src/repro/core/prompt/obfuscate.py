"""Identifier obfuscation (paper §6.4.3).

Replaces table and column names in the compressed snippets with generic
identifiers (``Tx``/``Cy``) before they reach the LLM, and maps the
identifiers in the LLM's response back to real names before the
configuration script is parsed.  The paper uses this to test whether
GPT-4 merely regurgitates benchmark configurations from pre-training.
"""

from __future__ import annotations

import re

_QUALIFIED_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\.([A-Za-z_][A-Za-z0-9_]*)\b")


class Obfuscator:
    """Bidirectional mapping between real and generic identifiers."""

    def __init__(self) -> None:
        self._table_codes: dict[str, str] = {}
        self._column_codes: dict[str, str] = {}

    # -- encoding -------------------------------------------------------------

    def encode_table(self, table: str) -> str:
        table = table.lower()
        if table not in self._table_codes:
            self._table_codes[table] = f"t{len(self._table_codes) + 1}"
        return self._table_codes[table]

    def encode_column(self, column: str) -> str:
        column = column.lower()
        if column not in self._column_codes:
            self._column_codes[column] = f"c{len(self._column_codes) + 1}"
        return self._column_codes[column]

    def encode_qualified(self, qualified: str) -> str:
        table, _, column = qualified.partition(".")
        return f"{self.encode_table(table)}.{self.encode_column(column)}"

    def encode_line(self, line: str) -> str:
        """Obfuscate every ``table.column`` occurrence in a snippet line."""
        return _QUALIFIED_RE.sub(
            lambda match: self.encode_qualified(match.group(0)), line
        )

    # -- decoding -----------------------------------------------------------------

    def decode_text(self, text: str) -> str:
        """Map generic identifiers in LLM output back to real names.

        Longer codes are replaced first so ``t12`` is never clobbered by
        ``t1``.
        """
        reverse: list[tuple[str, str]] = [
            (code, real) for real, code in self._table_codes.items()
        ] + [(code, real) for real, code in self._column_codes.items()]
        reverse.sort(key=lambda item: -len(item[0]))
        for code, real in reverse:
            text = re.sub(rf"\b{re.escape(code)}\b", real, text)
        return text
