"""The snippet-selection ILP (paper §3.3, Table 1).

Given join conditions with values ``V(p)`` and per-column token costs
``H_c``, select which column pairs appear in the compressed prompt so
that total value is maximized under the token budget.

Variables
---------
- ``L_c``: column ``c`` opens a line (appears on a left-hand side).
- ``R_(c1,c2)``: column ``c2`` appears on the right-hand side of
  ``c1``'s line.

Constraints (Table 1)
---------------------
- ``R_(c1,c2) <= L_c1`` -- a right-hand entry needs its line head.
- ``L_c1 <= sum_c2 R_(c1,c2)`` -- a line head needs at least one entry.
- ``R_(c1,c2) + R_(c2,c1) <= 1`` -- no symmetric duplicates.
- ``sum H_c2 R + sum H_c L <= B`` -- the token budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prompt.tokens import column_tokens
from repro.sql.analyzer import JoinCondition
from repro.solver import ILPModel


@dataclass(slots=True)
class SnippetSelection:
    """Solved selection: line head -> ordered right-hand columns."""

    lines: dict[str, list[str]]
    value: float
    tokens_used: int
    conditions: set[JoinCondition]


def build_snippet_ilp(
    values: dict[JoinCondition, float],
    budget: int,
    token_cost: dict[str, int] | None = None,
) -> tuple[ILPModel, dict[str, int], dict[tuple[str, str], int]]:
    """Construct the Table-1 ILP.

    Returns the model plus the variable-index maps for ``L`` and ``R``.
    """
    columns: set[str] = set()
    for condition in values:
        columns.update(condition.columns)
    costs = token_cost or {column: column_tokens(column) for column in columns}

    model = ILPModel()
    left_vars: dict[str, int] = {}
    right_vars: dict[tuple[str, str], int] = {}

    # Secondary objective: among equal-value selections, prefer the one
    # spending fewer tokens (merged lines).  Epsilon is small enough
    # never to sacrifice join-condition value for compactness.
    positive_values = [value for value in values.values() if value > 0]
    total_cost = sum(costs.values()) * 3 + 1
    epsilon = (
        min(positive_values) / total_cost * 1e-3 if positive_values else 0.0
    )

    for column in sorted(columns):
        left_vars[column] = model.add_variable(
            f"L[{column}]", -epsilon * costs[column]
        )

    ordered_pairs: list[tuple[str, str, float]] = []
    for condition in sorted(values, key=str):
        value = values[condition]
        c1, c2 = condition.columns
        ordered_pairs.append((c1, c2, value))
        ordered_pairs.append((c2, c1, value))

    for c1, c2, value in ordered_pairs:
        right_vars[(c1, c2)] = model.add_variable(
            f"R[{c1}|{c2}]", value - epsilon * costs[c2]
        )

    # R <= L (line-head dependency).
    for (c1, _c2), r_index in right_vars.items():
        model.add_constraint({r_index: 1.0, left_vars[c1]: -1.0}, 0.0)

    # L <= sum of its R entries (no empty lines).
    rights_by_head: dict[str, list[int]] = {}
    for (c1, _c2), r_index in right_vars.items():
        rights_by_head.setdefault(c1, []).append(r_index)
    for column, l_index in left_vars.items():
        entries = rights_by_head.get(column)
        if not entries:
            # A column that never heads a line: force L to zero.
            model.add_constraint({l_index: 1.0}, 0.0)
            continue
        coefficients = {l_index: 1.0}
        for r_index in entries:
            coefficients[r_index] = -1.0
        model.add_constraint(coefficients, 0.0)

    # Symmetry: R(c1,c2) + R(c2,c1) <= 1.
    for condition in values:
        c1, c2 = condition.columns
        model.add_constraint(
            {right_vars[(c1, c2)]: 1.0, right_vars[(c2, c1)]: 1.0}, 1.0
        )

    # Token budget.
    budget_coefficients: dict[int, float] = {}
    for column, l_index in left_vars.items():
        budget_coefficients[l_index] = float(costs[column])
    for (_c1, c2), r_index in right_vars.items():
        budget_coefficients[r_index] = float(costs[c2])
    model.add_constraint(budget_coefficients, float(budget))

    return model, left_vars, right_vars


def select_snippets(
    values: dict[JoinCondition, float],
    budget: int,
    *,
    method: str = "auto",
    token_cost: dict[str, int] | None = None,
) -> SnippetSelection:
    """Solve the selection problem and assemble prompt lines."""
    if not values or budget <= 0:
        return SnippetSelection(lines={}, value=0.0, tokens_used=0, conditions=set())

    model, left_vars, right_vars = build_snippet_ilp(values, budget, token_cost)
    solution = model.solve(method)

    costs = token_cost or {
        column: column_tokens(column)
        for condition in values
        for column in condition.columns
    }

    lines: dict[str, list[str]] = {}
    conditions: set[JoinCondition] = set()
    tokens_used = 0
    chosen = set(solution.selected())

    for column, l_index in left_vars.items():
        if l_index in chosen:
            lines[column] = []
            tokens_used += costs[column]
    for (c1, c2), r_index in right_vars.items():
        if r_index in chosen and c1 in lines:
            lines[c1].append(c2)
            tokens_used += costs[c2]
            conditions.add(JoinCondition.make(c1, c2))
    for entries in lines.values():
        entries.sort()

    # Drop line heads whose entries all vanished (defensive; the ILP's
    # "no empty lines" constraint should prevent this).
    lines = {head: entries for head, entries in lines.items() if entries}

    return SnippetSelection(
        lines=lines,
        # Report the true value of the covered conditions, not the
        # epsilon-adjusted solver objective.
        value=sum(values[condition] for condition in conditions),
        tokens_used=tokens_used,
        conditions=conditions,
    )
