"""The prompt template (paper §3.1, Listing 1) and prompt assembly."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prompt.compression import CompressionResult, WorkloadCompressor
from repro.core.prompt.obfuscate import Obfuscator
from repro.core.prompt.tokens import count_tokens
from repro.db.engine import DatabaseEngine
from repro.db.hardware import HardwareSpec

_TEMPLATE = """\
Recommend some configuration parameters for {dbms} to
optimize the system's performance. Parameters might
include system-level configurations, like memory,
query optimizer or physical design configurations,
like index recommendations.
Each row in the following list has the following format:
{{a join key A}}:{{all the joins with A in the workload}}
{compressed_workload}
The workload runs on a system with the following specs:
memory: {memory:g}GB
cores: {cores}
"""

def render_prompt(
    dbms: str,
    compressed_workload: str,
    hardware: HardwareSpec,
) -> str:
    """Fill the Listing-1 template.

    The DBMS display name comes from the engine registry, so a newly
    registered backend renders correctly with no prompt-layer change;
    unregistered names pass through verbatim.
    """
    from repro.db.registry import display_name

    return _TEMPLATE.format(
        dbms=display_name(dbms),
        compressed_workload=compressed_workload,
        memory=hardware.memory_gb,
        cores=hardware.cores,
    )


@dataclass(slots=True)
class GeneratedPrompt:
    """A rendered prompt with its accounting and obfuscation context."""

    text: str
    compression: CompressionResult | None
    obfuscator: Obfuscator | None

    @property
    def tokens(self) -> int:
        return count_tokens(self.text)


class PromptGenerator:
    """Generates the tuning prompt for a workload (Algorithm 1, line 2).

    ``token_budget`` bounds only the workload-representation block, as
    in the paper; the fixed template costs a constant ~70 tokens on top.
    Setting ``obfuscate=True`` hides table/column names behind generic
    identifiers (the §6.4.3 ablation); setting ``use_compressor=False``
    pastes raw SQL instead (the §6.4.4 ablation).
    """

    def __init__(
        self,
        engine: DatabaseEngine,
        *,
        solver_method: str = "auto",
        use_compressor: bool = True,
        obfuscate: bool = False,
    ) -> None:
        self._engine = engine
        self._compressor = WorkloadCompressor(engine, solver_method=solver_method)
        self._use_compressor = use_compressor
        self._obfuscate = obfuscate

    def generate(self, queries: list, token_budget: int) -> GeneratedPrompt:
        if self._use_compressor:
            return self._generate_compressed(queries, token_budget)
        return self._generate_raw_sql(queries, token_budget)

    def _generate_compressed(
        self, queries: list, token_budget: int
    ) -> GeneratedPrompt:
        compression = self._compressor.compress(queries, token_budget)
        obfuscator: Obfuscator | None = None
        lines = compression.lines
        if self._obfuscate:
            # Obfuscation happens after snippet extraction (§6.4.3): the
            # LLM sees generic identifiers, never the query templates.
            obfuscator = Obfuscator()
            lines = [obfuscator.encode_line(line) for line in lines]
        text = render_prompt(
            self._engine.system, "\n".join(lines), self._engine.hardware
        )
        return GeneratedPrompt(
            text=text, compression=compression, obfuscator=obfuscator
        )

    def _generate_raw_sql(self, queries: list, token_budget: int) -> GeneratedPrompt:
        """The compressor-off ablation: paste whole SQL queries."""
        chunks: list[str] = []
        used = 0
        for query in queries:
            sql = getattr(query, "sql", str(query)).strip()
            cost = count_tokens(sql)
            if used + cost > token_budget:
                break
            chunks.append(sql + ";")
            used += cost
        text = render_prompt(
            self._engine.system, "\n".join(chunks), self._engine.hardware
        )
        return GeneratedPrompt(text=text, compression=None, obfuscator=None)
