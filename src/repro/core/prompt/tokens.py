"""Approximate tokenizer.

Provider fees and context limits are denominated in tokens.  Without a
network tokenizer we approximate GPT-style byte-pair tokenization the
standard way: split on word/punctuation boundaries, then charge long
words about one token per four characters.  The approximation is
monotone in text length, which is all the compressor's budget
accounting needs.
"""

from __future__ import annotations

import re
from functools import lru_cache

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")

#: Bounded memo size.  The compressor re-counts the same column names
#: and snippet fragments on every knapsack evaluation; a schema has at
#: most a few thousand distinct strings, so 16k entries covers every
#: workload with room to spare while capping memory for adversarial
#: callers (the counted strings themselves are the dominant cost).
_MEMO_SIZE = 16384


@lru_cache(maxsize=_MEMO_SIZE)
def count_tokens(text: str) -> int:
    """Approximate GPT token count of ``text`` (memoized, bounded)."""
    total = 0
    for piece in _WORD_RE.findall(text):
        if piece.isalnum() or "_" in piece:
            total += max(1, (len(piece) + 3) // 4)
        else:
            total += 1
    return total


@lru_cache(maxsize=_MEMO_SIZE)
def column_tokens(qualified_column: str) -> int:
    """Tokens needed to render one ``table.column`` in the prompt.

    Includes the separator punctuation charged to each snippet entry
    (colon or comma plus whitespace).  Memoized like
    :func:`count_tokens`; a pure function of its argument, so the memo
    is invisible to callers.
    """
    return count_tokens(qualified_column) + 1
