"""Approximate tokenizer.

Provider fees and context limits are denominated in tokens.  Without a
network tokenizer we approximate GPT-style byte-pair tokenization the
standard way: split on word/punctuation boundaries, then charge long
words about one token per four characters.  The approximation is
monotone in text length, which is all the compressor's budget
accounting needs.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")


def count_tokens(text: str) -> int:
    """Approximate GPT token count of ``text``."""
    total = 0
    for piece in _WORD_RE.findall(text):
        if piece.isalnum() or "_" in piece:
            total += max(1, (len(piece) + 3) // 4)
        else:
            total += 1
    return total


def column_tokens(qualified_column: str) -> int:
    """Tokens needed to render one ``table.column`` in the prompt.

    Includes the separator punctuation charged to each snippet entry
    (colon or comma plus whitespace).
    """
    return count_tokens(qualified_column) + 1
