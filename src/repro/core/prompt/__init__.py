"""Prompt generation (paper §3).

- :mod:`repro.core.prompt.template` -- the Listing-1 prompt template.
- :mod:`repro.core.prompt.compression` -- join-snippet workload
  compression and line assembly.
- :mod:`repro.core.prompt.ilp` -- the Table-1 ILP for snippet selection
  under a token budget.
- :mod:`repro.core.prompt.tokens` -- approximate token counting.
- :mod:`repro.core.prompt.obfuscate` -- identifier obfuscation used by
  the §6.4.3 ablation.
"""

from repro.core.prompt.template import PromptGenerator, render_prompt
from repro.core.prompt.compression import CompressionResult, WorkloadCompressor
from repro.core.prompt.ilp import build_snippet_ilp, select_snippets
from repro.core.prompt.tokens import count_tokens
from repro.core.prompt.obfuscate import Obfuscator

__all__ = [
    "PromptGenerator",
    "render_prompt",
    "CompressionResult",
    "WorkloadCompressor",
    "build_snippet_ilp",
    "select_snippets",
    "count_tokens",
    "Obfuscator",
]
