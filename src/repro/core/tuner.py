"""The lambda-Tune pipeline (paper §2, Algorithm 1).

1. Generate the prompt from workload + hardware + DBMS under the token
   budget (§3).
2. Sample k configurations from the LLM at a fixed temperature.
3. Parse each response into a validated :class:`Configuration`.
4. Identify the best candidate with bounded evaluation cost (§4-5).

``LambdaTune.tune`` returns the same :class:`TuningResult` the baseline
tuners produce, so the harness can compare all systems uniformly.

Every stage reports to a :class:`~repro.core.rounds.TuningObserver`
(no-op by default); :class:`repro.session.TuningSession` uses this to
journal the pipeline, and ``tune`` accepts a rehydrated resume point to
continue an interrupted run exactly where it stopped -- journaled
samples are not re-requested from the LLM and journaled selection
progress is not re-evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import Configuration, parse_config_script
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.prompt.template import PromptGenerator
from repro.core.result import TuningResult
from repro.core.rounds import NULL_OBSERVER, RoundCursor, SelectionState, TuningObserver
from repro.core.selector import (
    ConfigurationSelector,
    ParallelConfigurationSelector,
    SelectionResult,
)
from repro.db.engine import DatabaseEngine
from repro.db.resources import ResourceBudget, cheapest_feasible_tier
from repro.errors import ConfigurationError, LLMError
from repro.llm.client import LLMClient
from repro.workloads.base import Query

#: Valid pool flavors for ``LambdaTuneOptions.executor`` (mirrors
#: :data:`repro.core.parallel._EXECUTOR_KINDS`).
EXECUTOR_KINDS = ("process", "thread", "serial")

#: Selection labels used in observer events and session journals.
SELECTION_PRIMARY = "primary"
SELECTION_FALLBACK = "fallback"


@dataclass(frozen=True, slots=True)
class LambdaTuneOptions:
    """Tuning hyper-parameters (paper §6.1 defaults)."""

    #: Number of LLM samples k (the paper evaluates exactly 5 configs).
    num_configs: int = 5
    #: Sampling temperature for configuration diversity.
    temperature: float = 0.7
    #: Token budget B for the workload-representation block.  ``None``
    #: means "no user budget": fit as much as the LLM's context allows
    #: (paper §2).
    token_budget: int | None = 512
    #: Initial round timeout t (seconds); the paper uses 10.
    initial_timeout: float = 10.0
    #: Geometric timeout factor alpha; the paper uses 10.
    alpha: float = 10.0
    #: Fold index-creation overheads into timeouts (§4; ablation 6.4.1).
    adaptive_timeout: bool = True
    #: Order queries with the DP scheduler (§5.3; ablation 6.4.2).
    use_scheduler: bool = True
    #: Create indexes lazily before their first relevant query (§5.1).
    lazy_indexes: bool = True
    #: Compress the workload; False pastes raw SQL (ablation 6.4.4).
    use_compressor: bool = True
    #: Hide identifiers from the LLM (ablation 6.4.3).
    obfuscate: bool = False
    #: Restrict configurations to parameter settings (Fig. 3 scenarios).
    parameters_only: bool = False
    #: Restrict configurations to index recommendations (Fig. 8).
    indexes_only: bool = False
    #: ILP backend for snippet selection.
    solver_method: str = "auto"
    #: Base seed for LLM sampling.
    seed: int = 0
    #: Pool size for parallel configuration selection; 0/1 runs the
    #: serial Algorithm 2.  Results are byte-identical either way.
    workers: int = 0
    #: Pool flavor for ``workers > 1``: process, thread, or serial.
    executor: str = "process"
    #: Resource budget the recommended configuration must fit under
    #: (peak memory / disk footprint).  ``None`` -- the default -- keeps
    #: the paper's latency-only objective and is bit-identical to a
    #: build without this field; with a budget, infeasible candidates
    #: are quarantined exactly like inapplicable scripts.
    budget: ResourceBudget | None = None

    def __post_init__(self) -> None:
        # Fail at construction, not rounds deep inside a worker pool.
        if self.num_configs < 1:
            raise ConfigurationError(
                f"num_configs must be at least 1, got {self.num_configs!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers cannot be negative, got {self.workers!r}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {EXECUTOR_KINDS}"
            )
        if self.budget is not None and not isinstance(self.budget, ResourceBudget):
            raise ConfigurationError(
                f"budget must be a ResourceBudget, got {self.budget!r}"
            )

    def ablated(self, **changes: object) -> "LambdaTuneOptions":
        """A copy with selected fields changed (ablation studies)."""
        return replace(self, **changes)


class LambdaTune:
    """LLM-driven database tuning with bounded evaluation cost."""

    name = "lambda-tune"

    def __init__(
        self,
        engine: DatabaseEngine,
        llm: LLMClient,
        options: LambdaTuneOptions | None = None,
    ) -> None:
        self._engine = engine
        self._llm = llm
        self.options = options or LambdaTuneOptions()
        #: (ordinal, reason) for LLM samples dropped by the last
        #: ``sample_configurations`` call.
        self.last_dropped_samples: list[tuple[int, str]] = []
        #: Terminal LLM errors behind those drops.
        self.last_llm_errors: list[LLMError] = []

    @property
    def engine(self) -> DatabaseEngine:
        """The engine under tuning (exposed for session journaling)."""
        return self._engine

    @property
    def llm(self) -> LLMClient:
        """The LLM client samples are drawn from."""
        return self._llm

    # -- pipeline stages (public so tests and ablations can call them) ----------

    def generate_prompt(self, queries: list[Query]):
        generator = PromptGenerator(
            self._engine,
            solver_method=self.options.solver_method,
            use_compressor=self.options.use_compressor,
            obfuscate=self.options.obfuscate,
        )
        budget = self.options.token_budget
        if budget is None:
            # No user budget: fill up to the model's own context limit,
            # reserving room for the fixed template text.
            budget = max(1, self._llm.max_input_tokens - 200)
        return generator.generate(queries, budget)

    def sample_configurations(
        self,
        prompt,
        *,
        observer: TuningObserver | None = None,
        known: dict[int, tuple] | None = None,
    ) -> list[Configuration]:
        """Sample and parse the k candidate scripts.

        Transient LLM failures are retried with backoff inside
        :meth:`LLMClient.complete_with_retry`; a sample whose retries
        are exhausted (or whose script is rejected outright) is dropped
        rather than aborting the tune, so a flaky provider degrades the
        candidate pool instead of the whole pipeline.  Dropped samples
        are recorded in :attr:`last_dropped_samples`.

        ``known`` maps ordinals to journaled outcomes from an
        interrupted session -- ``("accepted", config)`` or
        ``("dropped", reason, was_llm_error)`` -- which are replayed
        without touching the LLM (and without re-notifying the
        observer; their journal events already exist).
        """
        observer = observer or NULL_OBSERVER
        known = known or {}
        self.last_dropped_samples = []
        self.last_llm_errors = []
        configs: list[Configuration] = []
        for ordinal in range(self.options.num_configs):
            record = known.get(ordinal)
            if record is not None:
                if record[0] == "accepted":
                    configs.append(record[1])
                else:
                    _, reason, was_llm_error = record
                    self.last_dropped_samples.append((ordinal, reason))
                    if was_llm_error:
                        self.last_llm_errors.append(LLMError(reason))
                continue
            try:
                response = self._llm.complete_with_retry(
                    prompt.text,
                    temperature=self.options.temperature,
                    seed=self.options.seed + ordinal,
                )
            except LLMError as error:
                self.last_dropped_samples.append((ordinal, str(error)))
                self.last_llm_errors.append(error)
                observer.sample_dropped(ordinal, str(error), llm_error=True)
                continue
            text = response.text
            if prompt.obfuscator is not None:
                text = prompt.obfuscator.decode_text(text)
            try:
                config = parse_config_script(
                    text,
                    self._engine.knob_space,
                    self._engine.catalog,
                    name=f"llm-config-{ordinal + 1}",
                    strict=True,
                )
            except ConfigurationError as error:
                self.last_dropped_samples.append((ordinal, str(error)))
                observer.sample_dropped(ordinal, str(error))
                continue
            if self.options.parameters_only:
                config = config.without_indexes()
            if self.options.indexes_only:
                config = config.indexes_only()
            configs.append(config)
            observer.sample_accepted(ordinal, config)
        return configs

    def select_best(
        self,
        queries: list[Query],
        configs: list[Configuration],
        *,
        observer: TuningObserver | None = None,
        state: SelectionState | None = None,
        cursor: RoundCursor | None = None,
    ):
        evaluator = ConfigurationEvaluator(
            self._engine,
            use_scheduler=self.options.use_scheduler,
            lazy_indexes=self.options.lazy_indexes,
            cluster_seed=self.options.seed,
            budget=self.options.budget,
        )
        if self.options.workers > 1:
            selector: ConfigurationSelector = ParallelConfigurationSelector(
                self._engine,
                evaluator,
                workers=self.options.workers,
                executor=self.options.executor,
                initial_timeout=self.options.initial_timeout,
                alpha=self.options.alpha,
                adaptive_timeout=self.options.adaptive_timeout,
            )
        else:
            selector = ConfigurationSelector(
                self._engine,
                evaluator,
                initial_timeout=self.options.initial_timeout,
                alpha=self.options.alpha,
                adaptive_timeout=self.options.adaptive_timeout,
            )
        return selector.select(
            queries, configs, state=state, cursor=cursor, observer=observer
        )

    # -- Algorithm 1 -------------------------------------------------------------

    def tune(
        self,
        queries: list[Query],
        *,
        workload_name: str = "",
        observer: TuningObserver | None = None,
        resume=None,
    ) -> TuningResult:
        """Run the full pipeline and return the comparable result.

        Failure handling (chaos-tested): unusable LLM samples shrink the
        candidate pool; candidates that crash the engine are quarantined
        by selection; and if *nothing* survives, the tuner falls back to
        the default configuration instead of raising (the result's
        ``extras['fallback']`` records the degradation).

        ``resume`` is a :class:`repro.session.ResumePoint` rehydrated
        from a journal; journaled stages are replayed from it instead of
        re-executed, and the run continues mid-selection if that is
        where it stopped.
        """
        if not queries:
            raise ConfigurationError("cannot tune an empty workload")
        observer = observer or NULL_OBSERVER
        clock = self._engine.clock
        start = resume.start_clock if resume is not None else clock.now

        prompt_tokens, coverage, configs = self._sampling_stage(
            queries, observer, resume
        )
        dropped = list(self.last_dropped_samples)
        if not configs and len(self.last_llm_errors) == self.options.num_configs:
            # Every sample died with a terminal LLM error: the provider
            # is unreachable.  That is an operator problem, not a tuning
            # outcome -- propagate instead of silently recommending the
            # default configuration.
            raise self.last_llm_errors[-1]

        selection = (
            self._run_selection(
                SELECTION_PRIMARY, queries, configs, observer, resume
            )
            if configs
            else None
        )
        fallback = selection is None or selection.best.config is None
        if fallback:
            failed_meta = selection.meta if selection is not None else {}
            # Evaluate the default configuration (no setting changes, no
            # indexes) as the last-resort candidate: it is always
            # *applicable*; if the engine faults even under it, the
            # returned selection reports that too and the caller ships
            # the default with an unknown workload time -- the tuner
            # still never raises.
            selection = self._run_selection(
                SELECTION_FALLBACK,
                queries,
                [Configuration(name="default-config")],
                observer,
                resume,
                carryover_meta=failed_meta,
            )
            # Keep the quarantined candidates' records visible alongside
            # the fallback evaluation.
            for name, meta in failed_meta.items():
                selection.meta.setdefault(name, meta)
            if selection.best.config is None:
                # Even the default configuration faulted: report it as
                # the (only applicable) recommendation with an unknown
                # workload time rather than raising mid-tune.
                selection.best.config = Configuration(name="default-config")

        result = TuningResult(
            tuner=self.name,
            workload=workload_name,
            system=self._engine.system,
            best_time=selection.best.time,
            best_config=selection.best.config,
            configs_evaluated=len(configs),
            tuning_seconds=clock.now - start,
            extras={
                "prompt_tokens": prompt_tokens,
                "rounds": selection.rounds,
                "meta": selection.meta,
                "fallback": fallback,
                "dropped_samples": dropped,
                "failed_configs": sorted(
                    name for name, m in selection.meta.items() if m.failed
                ),
                "compression_coverage": coverage,
            },
        )
        if self.options.budget is not None:
            # Budget-objective reporting.  Keyed additions only: the
            # fingerprint's key set is fixed, and with budget=None (the
            # default) this branch never runs, so latency-only results
            # stay byte-identical.
            budget = self.options.budget
            result.extras["budget"] = budget.describe()
            if selection.best.config is not None:
                footprint = self._engine.resource_footprint(
                    selection.best.config.settings,
                    selection.best.config.indexes,
                )
                tier = cheapest_feasible_tier(
                    footprint, method=self.options.solver_method
                )
                result.extras["resource_footprint"] = {
                    "peak_memory_bytes": footprint.peak_memory_bytes,
                    "disk_bytes": footprint.disk_bytes,
                }
                result.extras["feasible"] = budget.admits(footprint)
                result.extras["cheapest_tier"] = tier.name if tier else None
        for time, best_time in selection.trace:
            result.record(time, best_time)
        observer.done(result)
        return result

    @staticmethod
    def tune_many(
        jobs: list,
        *,
        max_workers: int | None = None,
        executor: str = "thread",
        cache_dir=None,
    ) -> list[TuningResult]:
        """Tune N workloads concurrently over a shared artifact cache.

        Thin entry point to :func:`repro.core.batch.tune_many`; see that
        module for the concurrency and determinism contract (including
        the ``executor="thread"|"process"`` scale-out choice).  ``jobs``
        is a list of :class:`repro.core.batch.BatchJob`.
        """
        from repro.core.batch import tune_many as _tune_many

        return _tune_many(
            jobs,
            max_workers=max_workers,
            executor=executor,
            cache_dir=cache_dir,
        )

    # -- stage drivers -----------------------------------------------------------

    def _sampling_stage(
        self, queries: list[Query], observer: TuningObserver, resume
    ) -> tuple[int, float | None, list[Configuration]]:
        """Prompt + sampling, skipping whatever the journal already has.

        Prompt generation is pure (no clock advance, deterministic for a
        given workload and options), so re-running it on resume is safe;
        it is skipped only when every sample outcome is already known
        and the prompt text is therefore unneeded.
        """
        known = resume.samples if resume is not None else {}
        journaled_prompt = resume is not None and resume.prompt_tokens is not None
        if journaled_prompt and len(known) >= self.options.num_configs:
            configs = self.sample_configurations(
                None, observer=observer, known=known
            )
            return resume.prompt_tokens, resume.compression_coverage, configs

        prompt = self.generate_prompt(queries)
        if journaled_prompt:
            prompt_tokens = resume.prompt_tokens
            coverage = resume.compression_coverage
        else:
            observer.prompt_generated(prompt)
            prompt_tokens = prompt.tokens
            coverage = prompt.compression.coverage if prompt.compression else None
        configs = self.sample_configurations(prompt, observer=observer, known=known)
        return prompt_tokens, coverage, configs

    def _run_selection(
        self,
        label: str,
        queries: list[Query],
        configs: list[Configuration],
        observer: TuningObserver,
        resume,
        carryover_meta: dict | None = None,
    ) -> SelectionResult:
        """Run (or resume, or replay) one labeled selection."""
        replay = resume.selections.get(label) if resume is not None else None
        if replay is not None and replay.finished:
            # The journal saw this selection through to the end; its
            # replayed state IS the result -- never re-enter the driver,
            # final-pass updates are not idempotent.
            return replay.state.result()
        if replay is not None:
            state, cursor = replay.state, replay.cursor
            configs = replay.configs
        else:
            state = cursor = None
            observer.selection_started(label, configs, carryover_meta)
        selection = self.select_best(
            queries, configs, observer=observer, state=state, cursor=cursor
        )
        observer.selection_finished(label, selection)
        return selection
