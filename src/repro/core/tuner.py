"""The lambda-Tune pipeline (paper §2, Algorithm 1).

1. Generate the prompt from workload + hardware + DBMS under the token
   budget (§3).
2. Sample k configurations from the LLM at a fixed temperature.
3. Parse each response into a validated :class:`Configuration`.
4. Identify the best candidate with bounded evaluation cost (§4-5).

``LambdaTune.tune`` returns the same :class:`TuningResult` the baseline
tuners produce, so the harness can compare all systems uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import Configuration, parse_config_script
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.prompt.template import PromptGenerator
from repro.core.result import TuningResult
from repro.core.selector import ConfigurationSelector, ParallelConfigurationSelector
from repro.db.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.llm.client import LLMClient
from repro.workloads.base import Query


@dataclass(frozen=True, slots=True)
class LambdaTuneOptions:
    """Tuning hyper-parameters (paper §6.1 defaults)."""

    #: Number of LLM samples k (the paper evaluates exactly 5 configs).
    num_configs: int = 5
    #: Sampling temperature for configuration diversity.
    temperature: float = 0.7
    #: Token budget B for the workload-representation block.  ``None``
    #: means "no user budget": fit as much as the LLM's context allows
    #: (paper §2).
    token_budget: int | None = 512
    #: Initial round timeout t (seconds); the paper uses 10.
    initial_timeout: float = 10.0
    #: Geometric timeout factor alpha; the paper uses 10.
    alpha: float = 10.0
    #: Fold index-creation overheads into timeouts (§4; ablation 6.4.1).
    adaptive_timeout: bool = True
    #: Order queries with the DP scheduler (§5.3; ablation 6.4.2).
    use_scheduler: bool = True
    #: Create indexes lazily before their first relevant query (§5.1).
    lazy_indexes: bool = True
    #: Compress the workload; False pastes raw SQL (ablation 6.4.4).
    use_compressor: bool = True
    #: Hide identifiers from the LLM (ablation 6.4.3).
    obfuscate: bool = False
    #: Restrict configurations to parameter settings (Fig. 3 scenarios).
    parameters_only: bool = False
    #: Restrict configurations to index recommendations (Fig. 8).
    indexes_only: bool = False
    #: ILP backend for snippet selection.
    solver_method: str = "auto"
    #: Base seed for LLM sampling.
    seed: int = 0
    #: Pool size for parallel configuration selection; 0/1 runs the
    #: serial Algorithm 2.  Results are byte-identical either way.
    workers: int = 0
    #: Pool flavor for ``workers > 1``: process, thread, or serial.
    executor: str = "process"

    def ablated(self, **changes: object) -> "LambdaTuneOptions":
        """A copy with selected fields changed (ablation studies)."""
        return replace(self, **changes)


class LambdaTune:
    """LLM-driven database tuning with bounded evaluation cost."""

    name = "lambda-tune"

    def __init__(
        self,
        engine: DatabaseEngine,
        llm: LLMClient,
        options: LambdaTuneOptions | None = None,
    ) -> None:
        self._engine = engine
        self._llm = llm
        self.options = options or LambdaTuneOptions()

    # -- pipeline stages (public so tests and ablations can call them) ----------

    def generate_prompt(self, queries: list[Query]):
        generator = PromptGenerator(
            self._engine,
            solver_method=self.options.solver_method,
            use_compressor=self.options.use_compressor,
            obfuscate=self.options.obfuscate,
        )
        budget = self.options.token_budget
        if budget is None:
            # No user budget: fill up to the model's own context limit,
            # reserving room for the fixed template text.
            budget = max(1, self._llm.max_input_tokens - 200)
        return generator.generate(queries, budget)

    def sample_configurations(self, prompt) -> list[Configuration]:
        responses = self._llm.sample(
            prompt.text,
            self.options.num_configs,
            temperature=self.options.temperature,
            seed=self.options.seed,
        )
        configs: list[Configuration] = []
        for ordinal, response in enumerate(responses):
            text = response.text
            if prompt.obfuscator is not None:
                text = prompt.obfuscator.decode_text(text)
            config = parse_config_script(
                text,
                self._engine.knob_space,
                self._engine.catalog,
                name=f"llm-config-{ordinal + 1}",
            )
            if self.options.parameters_only:
                config = config.without_indexes()
            if self.options.indexes_only:
                config = config.indexes_only()
            configs.append(config)
        return configs

    def select_best(self, queries: list[Query], configs: list[Configuration]):
        evaluator = ConfigurationEvaluator(
            self._engine,
            use_scheduler=self.options.use_scheduler,
            lazy_indexes=self.options.lazy_indexes,
            cluster_seed=self.options.seed,
        )
        if self.options.workers > 1:
            selector: ConfigurationSelector = ParallelConfigurationSelector(
                self._engine,
                evaluator,
                workers=self.options.workers,
                executor=self.options.executor,
                initial_timeout=self.options.initial_timeout,
                alpha=self.options.alpha,
                adaptive_timeout=self.options.adaptive_timeout,
            )
        else:
            selector = ConfigurationSelector(
                self._engine,
                evaluator,
                initial_timeout=self.options.initial_timeout,
                alpha=self.options.alpha,
                adaptive_timeout=self.options.adaptive_timeout,
            )
        return selector.select(queries, configs)

    # -- Algorithm 1 -------------------------------------------------------------

    def tune(self, queries: list[Query]) -> TuningResult:
        """Run the full pipeline and return the comparable result."""
        if not queries:
            raise ConfigurationError("cannot tune an empty workload")
        start = self._engine.clock.now

        prompt = self.generate_prompt(queries)
        configs = self.sample_configurations(prompt)
        selection = self.select_best(queries, configs)

        result = TuningResult(
            tuner=self.name,
            workload="",
            system=self._engine.system,
            best_time=selection.best.time,
            best_config=selection.best.config,
            configs_evaluated=len(configs),
            tuning_seconds=self._engine.clock.now - start,
            extras={
                "prompt_tokens": prompt.tokens,
                "rounds": selection.rounds,
                "meta": selection.meta,
                "compression_coverage": (
                    prompt.compression.coverage if prompt.compression else None
                ),
            },
        )
        for time, best_time in selection.trace:
            result.record(time, best_time)
        result.best_time = selection.best.time
        return result
