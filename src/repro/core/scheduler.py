"""Query scheduling to minimize expected index-creation cost.

Implements the paper's §5.2 cost model (Equation 1) and the §5.3
dynamic-programming scheduler (Algorithm 4, Selinger-style enumeration
over query subsets), plus a brute-force oracle used by tests and the
greedy/arbitrary orders used by the scheduler ablation.

Queries are identified by opaque hashable handles; the caller supplies
``index_map`` (handle -> set of index keys potentially useful for that
query) and ``index_cost`` (index key -> creation seconds).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Mapping, Sequence

from repro.errors import SchedulerError

QueryHandle = Hashable

#: Hard cap on DP input size (paper §5.4: "we strictly limit the input
#: to our algorithm to a manageable size of 13 queries").
MAX_DP_INPUT = 13


def marginal_index_cost(
    query: QueryHandle,
    created: frozenset,
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> float:
    """z_i(Q): cost of indexes query ``i`` needs beyond those created."""
    needed = index_map.get(query, frozenset())
    return sum(index_cost[index] for index in needed - created)


def expected_cost(
    order: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> float:
    """Equation 1: expected index-creation cost under uniform interruption.

    With interruption equally likely after each of the ``n`` positions,
    the index cost of the query at position ``j`` (1-based) is paid in
    the ``n - j + 1`` scenarios where execution reaches it, each with
    probability ``1/n``.
    """
    n = len(order)
    if n == 0:
        return 0.0
    created: frozenset = frozenset()
    total = 0.0
    for position, query in enumerate(order, start=1):
        z = marginal_index_cost(query, created, index_map, index_cost)
        total += z * (n - position + 1)
        created = created | index_map.get(query, frozenset())
    return total / n


def compute_order_dp(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Algorithm 4: optimal order by dynamic programming over subsets.

    The DP accumulates the *unnormalized* Equation-1 cost: appending a
    query to a prefix of size ``k`` (making position ``k+1`` of ``n``)
    adds ``z * (n - k)``.  The principle of optimality (Theorem 5.2)
    makes prefix-optimal solutions composable.
    """
    n = len(queries)
    if n == 0:
        return []
    if n > MAX_DP_INPUT:
        raise SchedulerError(
            f"DP scheduler input of {n} exceeds the cap of {MAX_DP_INPUT}; "
            "cluster queries first (paper §5.4)"
        )
    handles = list(queries)
    if len(set(handles)) != n:
        raise SchedulerError("duplicate query handles in scheduler input")

    index_sets = [index_map.get(handle, frozenset()) for handle in handles]

    # States are bitmasks over query positions.
    dp_cost: dict[int, float] = {}
    dp_order: dict[int, tuple[int, ...]] = {}
    created_for: dict[int, frozenset] = {0: frozenset()}

    for i in range(n):
        mask = 1 << i
        weight = n  # position 1 of n
        dp_cost[mask] = sum(index_cost[index] for index in index_sets[i]) * weight
        dp_order[mask] = (i,)
        created_for[mask] = frozenset(index_sets[i])

    full = (1 << n) - 1
    for size in range(2, n + 1):
        for subset in _masks_of_size(n, size):
            best_cost = float("inf")
            best_order: tuple[int, ...] | None = None
            weight = n - (size - 1)  # appended query lands at position `size`
            for i in range(n):
                bit = 1 << i
                if not subset & bit:
                    continue
                rest = subset ^ bit
                created = created_for[rest]
                z = sum(
                    index_cost[index] for index in index_sets[i] - created
                )
                cost = dp_cost[rest] + z * weight
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_order = dp_order[rest] + (i,)
            assert best_order is not None
            dp_cost[subset] = best_cost
            dp_order[subset] = best_order
            created_for[subset] = frozenset().union(
                *(index_sets[i] for i in range(n) if subset & (1 << i))
            )
    return [handles[i] for i in dp_order[full]]


def brute_force_order(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Exhaustive oracle: minimize Equation 1 over all permutations."""
    if len(queries) > 8:
        raise SchedulerError("brute force is limited to 8 queries")
    best_order = list(queries)
    best_cost = expected_cost(best_order, index_map, index_cost)
    for permutation in itertools.permutations(queries):
        cost = expected_cost(permutation, index_map, index_cost)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_order = list(permutation)
    return best_order


def greedy_order(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Cheapest-marginal-index-first heuristic (scheduler ablation)."""
    remaining = list(queries)
    order: list[QueryHandle] = []
    created: frozenset = frozenset()
    while remaining:
        next_query = min(
            remaining,
            key=lambda handle: (
                marginal_index_cost(handle, created, index_map, index_cost),
                str(handle),
            ),
        )
        remaining.remove(next_query)
        order.append(next_query)
        created = created | index_map.get(next_query, frozenset())
    return order


def _masks_of_size(n: int, size: int):
    """All n-bit masks with exactly ``size`` bits set, via Gosper's hack."""
    mask = (1 << size) - 1
    limit = 1 << n
    while mask < limit:
        yield mask
        lowest = mask & -mask
        ripple = mask + lowest
        mask = ripple | (((mask ^ ripple) >> 2) // lowest)
