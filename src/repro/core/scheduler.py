"""Query scheduling to minimize expected index-creation cost.

Implements the paper's §5.2 cost model (Equation 1) and the §5.3
dynamic-programming scheduler (Algorithm 4, Selinger-style enumeration
over query subsets), plus a brute-force oracle used by tests and the
greedy/arbitrary orders used by the scheduler ablation.

Queries are identified by opaque hashable handles; the caller supplies
``index_map`` (handle -> set of index keys potentially useful for that
query) and ``index_cost`` (index key -> creation seconds).

Two DP implementations are provided:

- :func:`compute_order_dp` -- the production bitmask core.  Index sets
  are encoded as integers over a canonical (str-sorted) index universe,
  DP state lives in flat arrays of size ``2^n`` indexed by subset mask,
  order reconstruction uses parent pointers instead of per-subset tuple
  copies, and marginal costs are memoized per ``(query, needed-mask)``.
  When the index universe fits in 63 bits and numpy is available the
  inner loop is vectorized over subsets of equal cardinality.
- :func:`compute_order_dp_reference` -- the original dict/frozenset
  formulation, kept as an executable specification for property tests
  and for the perf-regression harness (``scripts/bench.py``).

Both sum floating-point costs in the same canonical order (ascending
str-sorted index universe), so they produce bit-identical orders and
the result never depends on ``PYTHONHASHSEED`` (set iteration order).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Mapping, Sequence

try:  # numpy accelerates the subset layers; pure python works without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep of the repo
    _np = None

from repro.errors import SchedulerError

QueryHandle = Hashable

#: Hard cap on DP input size (paper §5.4: "we strictly limit the input
#: to our algorithm to a manageable size of 13 queries").
MAX_DP_INPUT = 13

#: Strict-improvement threshold shared by every implementation, so all
#: of them break cost ties identically (first candidate in ascending
#: position order wins).
_EPS = 1e-12

#: Vectorize layers only when the subset count is worth the numpy
#: call overhead.
_VECTOR_MIN_QUERIES = 9


def marginal_index_cost(
    query: QueryHandle,
    created: frozenset,
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> float:
    """z_i(Q): cost of indexes query ``i`` needs beyond those created.

    Summation runs in canonical (str-sorted) index order so the value is
    independent of set iteration order (``PYTHONHASHSEED``).
    """
    needed = index_map.get(query, frozenset())
    return sum(index_cost[index] for index in sorted(needed - created, key=str))


def expected_cost(
    order: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> float:
    """Equation 1: expected index-creation cost under uniform interruption.

    With interruption equally likely after each of the ``n`` positions,
    the index cost of the query at position ``j`` (1-based) is paid in
    the ``n - j + 1`` scenarios where execution reaches it, each with
    probability ``1/n``.
    """
    n = len(order)
    if n == 0:
        return 0.0
    created: frozenset = frozenset()
    total = 0.0
    for position, query in enumerate(order, start=1):
        z = marginal_index_cost(query, created, index_map, index_cost)
        total += z * (n - position + 1)
        created = created | index_map.get(query, frozenset())
    return total / n


def _checked_handles(
    queries: Sequence[QueryHandle],
) -> list[QueryHandle]:
    handles = list(queries)
    n = len(handles)
    if n > MAX_DP_INPUT:
        raise SchedulerError(
            f"DP scheduler input of {n} exceeds the cap of {MAX_DP_INPUT}; "
            "cluster queries first (paper §5.4)"
        )
    if len(set(handles)) != n:
        raise SchedulerError("duplicate query handles in scheduler input")
    return handles


def _encode_bitmasks(
    handles: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> tuple[list[int], list[float]]:
    """Encode per-query index sets as ints over a canonical universe.

    The universe contains only indexes that some query actually needs,
    sorted by ``str`` -- so bit order equals canonical summation order
    and encodings are stable across processes.
    """
    index_sets = [index_map.get(handle, frozenset()) for handle in handles]
    universe = sorted({index for s in index_sets for index in s}, key=str)
    bit_of = {index: bit for bit, index in enumerate(universe)}
    qmasks = [
        sum(1 << bit_of[index] for index in index_set)
        for index_set in index_sets
    ]
    bit_costs = [float(index_cost[index]) for index in universe]
    return qmasks, bit_costs


def compute_order_dp(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Algorithm 4: optimal order by dynamic programming over subsets.

    The DP accumulates the *unnormalized* Equation-1 cost: appending a
    query to a prefix of size ``k`` (making position ``k+1`` of ``n``)
    adds ``z * (n - k)``.  The principle of optimality (Theorem 5.2)
    makes prefix-optimal solutions composable.

    This is the bitmask core: states are integer subset masks, DP cost
    and parent-pointer tables are flat arrays of size ``2^n``, and the
    "created indexes" of every subset is an int OR over member masks.
    """
    n = len(queries)
    if n == 0:
        return []
    handles = _checked_handles(queries)
    qmasks, bit_costs = _encode_bitmasks(handles, index_map, index_cost)

    if (
        _np is not None
        and len(bit_costs) <= 63
        and n >= _VECTOR_MIN_QUERIES
    ):
        parents = _dp_parents_vectorized(n, qmasks, bit_costs)
    else:
        parents = _dp_parents_scalar(n, qmasks, bit_costs)

    # Parent-pointer reconstruction: walk back from the full mask.
    order: list[int] = []
    mask = (1 << n) - 1
    while mask:
        i = parents[mask]
        order.append(i)
        mask ^= 1 << i
    order.reverse()
    return [handles[i] for i in order]


def _mask_cost(mask: int, bit_costs: list[float], memo: dict[int, float]) -> float:
    """Sum of bit costs in ascending-bit (canonical) order, memoized."""
    cached = memo.get(mask)
    if cached is not None:
        return cached
    total = 0.0
    remaining = mask
    while remaining:
        low = remaining & -remaining
        total += bit_costs[low.bit_length() - 1]
        remaining ^= low
    memo[mask] = total
    return total


def _dp_parents_scalar(
    n: int, qmasks: list[int], bit_costs: list[float]
) -> list[int]:
    """Pure-python bitmask DP; works for index universes of any size."""
    size = 1 << n
    dp_cost = [0.0] * size
    parents = [-1] * size
    created = [0] * size
    zmemo: dict[int, float] = {0: 0.0}

    # Masks in increasing numeric order: every proper submask of a mask
    # is numerically smaller, so dependencies are always ready.  The
    # popcount gives the position weight ``n - (size - 1)``.
    bits = [1 << i for i in range(n)]
    for mask in range(1, size):
        low = mask & -mask
        rest_of_low = mask ^ low
        created[mask] = created[rest_of_low] | qmasks[low.bit_length() - 1]
        weight = n - mask.bit_count() + 1
        best_cost = float("inf")
        best_i = -1
        for i in range(n):
            bit = bits[i]
            if not mask & bit:
                continue
            rest = mask ^ bit
            needed = qmasks[i] & ~created[rest]
            cost = dp_cost[rest] + _mask_cost(needed, bit_costs, zmemo) * weight
            if cost < best_cost - _EPS:
                best_cost = cost
                best_i = i
        dp_cost[mask] = best_cost
        parents[mask] = best_i
    return parents


def _dp_parents_vectorized(
    n: int, qmasks: list[int], bit_costs: list[float]
) -> list[int]:
    """Numpy bitmask DP, processing subsets layer-by-layer (popcount).

    Produces bit-identical costs to the scalar core: marginal costs are
    accumulated bit-by-bit in ascending (canonical) order, and the
    ascending-``i`` strict-improvement update replicates the scalar
    tie-breaking exactly.
    """
    size = 1 << n
    masks = _np.arange(size, dtype=_np.int64)
    popcount = _np.zeros(size, dtype=_np.int64)
    for i in range(n):
        popcount += (masks >> i) & 1

    qmask_arr = _np.array(qmasks, dtype=_np.int64)
    costs = _np.array(bit_costs, dtype=_np.float64)
    n_bits = len(bit_costs)

    # created[mask] = OR of member query masks, built layer by layer
    # from each mask's lowest set bit.
    created = _np.zeros(size, dtype=_np.int64)
    dp_cost = _np.zeros(size, dtype=_np.float64)
    parents = _np.full(size, -1, dtype=_np.int64)

    for layer in range(1, n + 1):
        layer_masks = masks[popcount == layer]
        low = layer_masks & -layer_masks
        low_index = _np.zeros(len(layer_masks), dtype=_np.int64)
        for i in range(n):
            low_index[low == (1 << i)] = i
        created[layer_masks] = (
            created[layer_masks ^ low] | qmask_arr[low_index]
        )

        weight = float(n - layer + 1)
        best_cost = _np.full(len(layer_masks), _np.inf, dtype=_np.float64)
        best_i = _np.full(len(layer_masks), -1, dtype=_np.int64)
        for i in range(n):
            has_i = (layer_masks >> i) & 1 == 1
            sub_masks = layer_masks[has_i]
            if len(sub_masks) == 0:
                continue
            rest = sub_masks ^ (1 << i)
            needed = qmask_arr[i] & ~created[rest]
            # Ascending-bit accumulation == canonical summation order.
            z = _np.zeros(len(sub_masks), dtype=_np.float64)
            qm = int(qmask_arr[i])
            for bit in range(n_bits):
                if not qm & (1 << bit):
                    continue
                z += costs[bit] * ((needed >> bit) & 1)
            cand = dp_cost[rest] + z * weight
            improve = cand < best_cost[has_i] - _EPS
            slot = _np.flatnonzero(has_i)[improve]
            best_cost[slot] = cand[improve]
            best_i[slot] = i
        dp_cost[layer_masks] = best_cost
        parents[layer_masks] = best_i
    return parents.tolist()


def compute_order_dp_reference(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """The pre-bitmask Algorithm 4 (dict/frozenset states, tuple orders).

    Kept as the executable specification: property tests assert the
    bitmask core reproduces its output exactly, and ``scripts/bench.py``
    measures the speedup against it.  Costs are summed in canonical
    (str-sorted) index order, matching the bitmask encoding.
    """
    n = len(queries)
    if n == 0:
        return []
    handles = _checked_handles(queries)
    index_sets = [index_map.get(handle, frozenset()) for handle in handles]

    # States are bitmasks over query positions.
    dp_cost: dict[int, float] = {}
    dp_order: dict[int, tuple[int, ...]] = {}
    created_for: dict[int, frozenset] = {0: frozenset()}

    for i in range(n):
        mask = 1 << i
        weight = n  # position 1 of n
        dp_cost[mask] = (
            sum(index_cost[index] for index in sorted(index_sets[i], key=str))
            * weight
        )
        dp_order[mask] = (i,)
        created_for[mask] = frozenset(index_sets[i])

    full = (1 << n) - 1
    for size in range(2, n + 1):
        for subset in _masks_of_size(n, size):
            best_cost = float("inf")
            best_order: tuple[int, ...] | None = None
            weight = n - (size - 1)  # appended query lands at position `size`
            for i in range(n):
                bit = 1 << i
                if not subset & bit:
                    continue
                rest = subset ^ bit
                created = created_for[rest]
                z = sum(
                    index_cost[index]
                    for index in sorted(index_sets[i] - created, key=str)
                )
                cost = dp_cost[rest] + z * weight
                if cost < best_cost - _EPS:
                    best_cost = cost
                    best_order = dp_order[rest] + (i,)
            assert best_order is not None
            dp_cost[subset] = best_cost
            dp_order[subset] = best_order
            created_for[subset] = frozenset().union(
                *(index_sets[i] for i in range(n) if subset & (1 << i))
            )
    return [handles[i] for i in dp_order[full]]


def brute_force_order(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Exhaustive oracle: minimize Equation 1 over all permutations."""
    if len(queries) > 8:
        raise SchedulerError("brute force is limited to 8 queries")
    best_order = list(queries)
    best_cost = expected_cost(best_order, index_map, index_cost)
    for permutation in itertools.permutations(queries):
        cost = expected_cost(permutation, index_map, index_cost)
        if cost < best_cost - _EPS:
            best_cost = cost
            best_order = list(permutation)
    return best_order


def greedy_order(
    queries: Sequence[QueryHandle],
    index_map: Mapping[QueryHandle, frozenset],
    index_cost: Mapping[Hashable, float],
) -> list[QueryHandle]:
    """Cheapest-marginal-index-first heuristic (scheduler ablation)."""
    remaining = list(queries)
    order: list[QueryHandle] = []
    created: frozenset = frozenset()
    while remaining:
        next_query = min(
            remaining,
            key=lambda handle: (
                marginal_index_cost(handle, created, index_map, index_cost),
                str(handle),
            ),
        )
        remaining.remove(next_query)
        order.append(next_query)
        created = created | index_map.get(next_query, frozenset())
    return order


def _masks_of_size(n: int, size: int):
    """All n-bit masks with exactly ``size`` bits set, via Gosper's hack."""
    mask = (1 << size) - 1
    limit = 1 << n
    while mask < limit:
        yield mask
        lowest = mask & -mask
        ripple = mask + lowest
        mask = ripple | (((mask ^ ripple) >> 2) // lowest)
