"""Worker plumbing for parallel configuration selection.

The :class:`~repro.core.selector.ParallelConfigurationSelector` fans one
selection phase's per-candidate evaluations over a pool.  Each worker
drives an **isolated** forked engine: it rebuilds the engine from a
picklable :class:`~repro.db.engine.EngineState` snapshot, runs
Algorithm 3 on a zero-based :class:`~repro.db.clock.RecordingClock`, and
ships back the resulting ``ConfigMeta`` fields plus the exact sequence
of clock advances.  The selector replays those advances onto the main
engine's clock in canonical candidate order, so the merged clock (and
with it every trace timestamp) is bit-identical to a serial run --
float addition order is preserved, not just float sums.

Three executors share this module's task protocol:

- ``process`` (default): ``ProcessPoolExecutor``; the context is shipped
  once per worker process through the pool initializer.  The ``fork``
  start method is preferred; under ``spawn`` the child processes import
  ``repro`` afresh, so :func:`ensure_pool_env` pins ``PYTHONPATH`` and
  ``PYTHONHASHSEED`` in ``os.environ`` before the pool is created.
- ``thread``: ``ThreadPoolExecutor``; workers share the parent's catalog
  object (and with it the shared analysis/plan caches).
- ``serial``: runs tasks inline, in order -- the degenerate pool used
  for ``workers <= 1`` and in equivalence tests.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.db import engine as engine_module
from repro.db.clock import RecordingClock
from repro.db.engine import EngineState
from repro.errors import ConfigurationError
from repro.workloads.base import Query

_EXECUTOR_KINDS = ("process", "thread", "serial")


@dataclass(slots=True)
class WorkerContext:
    """Everything a worker needs to rebuild the evaluation environment.

    Shipped once per worker process via the pool initializer (pickled
    under ``spawn``, inherited under ``fork``); per-task payloads then
    only carry the small :class:`EvalTask` deltas.
    """

    engine_cls: type
    catalog: object
    hardware: object
    workload: tuple[Query, ...]
    evaluator_options: dict[str, object] = field(default_factory=dict)
    #: Snapshot of ``repro.db.engine.CACHES_ENABLED`` at selector start,
    #: so spawned workers mirror the parent's cache regime.
    caches_enabled: bool = True
    #: Mirrors the parent engine's ``realtime_factor`` onto workers, so
    #: latency-realistic benchmark runs wait in the pool, not the parent.
    realtime_factor: float = 0.0
    #: The parent engine's installed fault plan (picklable), so chaos
    #: faults fire identically on worker engines.
    fault_plan: object | None = None


@dataclass(frozen=True, slots=True)
class EvalTask:
    """One speculative ``Update`` call (Algorithm 2, lines 16-25)."""

    position: int
    config: Configuration
    #: Names of the configuration's not-yet-completed queries; workers
    #: re-materialize them from the context workload in workload order,
    #: matching the serial ``_pending`` ordering.
    pending: frozenset[str]
    timeout: float
    #: Predicted engine state (settings after the speculated settings
    #: threading of earlier candidates; base physical design).
    state: EngineState
    #: ``ConfigMeta`` start values, copied from the shared meta table.
    meta_time: float
    meta_complete: bool
    meta_index_time: float
    meta_completed: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class EvalOutcome:
    """The worker-side result of one :class:`EvalTask`."""

    position: int
    time: float
    is_complete: bool
    index_time: float
    completed: tuple[str, ...]
    #: Individual clock advances, in order, for bit-exact replay.
    advances: tuple[float, ...]
    #: Execution seconds of each completed query, in execution order.
    #: The merge replays Algorithm 3's ``remaining_time`` cascade over
    #: these to decide -- with the exact float operations the serial
    #: path would use -- whether a completed speculative run would also
    #: complete under a smaller actual timeout.
    executions: tuple[float, ...] = ()
    #: Quarantine fields mirrored from the worker-side ``ConfigMeta``.
    failed: bool = False
    failure: str = ""
    #: Whether the candidate's settings were actually applied (an
    #: inapplicable script fails validation *before* touching the
    #: engine; the fold must then leave the main engine untouched too).
    settings_applied: bool = True


# -- worker side -------------------------------------------------------------------

#: Per-process context installed by the pool initializer (process pools).
_PROCESS_CTX: WorkerContext | None = None

#: Persistent per-thread evaluation state: building an engine and
#: evaluator is much more expensive than restoring state, so each worker
#: thread/process keeps one pair alive across tasks.
_WORKER_STATE = threading.local()


def _init_worker(ctx: WorkerContext) -> None:
    global _PROCESS_CTX
    _PROCESS_CTX = ctx
    engine_module.CACHES_ENABLED = ctx.caches_enabled


def _worker_state(ctx: WorkerContext):
    entry = getattr(_WORKER_STATE, "entry", None)
    if entry is None or entry[0] is not ctx:
        engine = ctx.engine_cls(ctx.catalog, ctx.hardware)
        engine.realtime_factor = ctx.realtime_factor
        engine.fault_plan = ctx.fault_plan
        evaluator = ConfigurationEvaluator(engine, **ctx.evaluator_options)
        entry = (ctx, engine, evaluator)
        _WORKER_STATE.entry = entry
    return entry[1], entry[2]


def evaluate_task(task: EvalTask, ctx: WorkerContext | None = None) -> EvalOutcome:
    """Run one speculative evaluation on an isolated worker engine."""
    if ctx is None:
        ctx = _PROCESS_CTX
    if ctx is None:  # pragma: no cover - initializer always ran
        raise ConfigurationError("worker context was never initialized")
    engine, evaluator = _worker_state(ctx)
    clock = RecordingClock(0.0)
    engine.restore_state(task.state, clock=clock)
    pending = [query for query in ctx.workload if query.name in task.pending]
    meta = ConfigMeta(
        time=task.meta_time,
        is_complete=task.meta_complete,
        index_time=task.meta_index_time,
        completed_queries=set(task.meta_completed),
    )
    executions: list[float] = []
    raw_execute = type(engine).execute
    raw_apply = type(engine).apply_config
    settings_applied: list[bool] = []

    def _logging_execute(query, timeout=None):
        result = raw_execute(engine, query, timeout=timeout)
        if result.complete:
            executions.append(result.execution_time)
        return result

    def _logging_apply(settings):
        result = raw_apply(engine, settings)
        settings_applied.append(True)
        return result

    engine.execute = _logging_execute
    engine.apply_config = _logging_apply
    try:
        evaluator.evaluate(task.config, pending, task.timeout, meta)
    finally:
        del engine.execute
        del engine.apply_config
    return EvalOutcome(
        position=task.position,
        time=meta.time,
        is_complete=meta.is_complete,
        index_time=meta.index_time,
        completed=tuple(sorted(meta.completed_queries)),
        advances=tuple(clock.advances),
        executions=tuple(executions),
        failed=meta.failed,
        failure=meta.failure,
        settings_applied=bool(settings_applied),
    )


# -- parent side -------------------------------------------------------------------


def ensure_pool_env() -> None:
    """Pin child-process environment before a process pool is created.

    Under the ``spawn`` start method worker processes re-import ``repro``
    from scratch, so the interpreter they run must (a) find the package
    -- ``PYTHONPATH`` gains the directory containing ``repro`` -- and
    (b) hash strings the same way every run -- ``PYTHONHASHSEED`` is
    pinned (to its current value, or 0 when unset/random).  Mutating
    ``os.environ`` is inherited by children; the parent's own hashing
    was fixed at startup and is unaffected.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
    hash_seed = os.environ.get("PYTHONHASHSEED", "")
    if not hash_seed or hash_seed == "random":
        os.environ["PYTHONHASHSEED"] = "0"


def _preferred_mp_context(requested: str | None):
    import multiprocessing

    if requested is not None:
        return multiprocessing.get_context(requested)
    methods = multiprocessing.get_all_start_methods()
    # fork shares the already-imported interpreter state: no re-import,
    # no context pickling, much cheaper worker start-up.
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class TaskRunner:
    """Runs batches of :class:`EvalTask` on the configured executor.

    ``run`` preserves task order in its result list and maps skipped
    slots (``None`` tasks) to ``None`` outcomes.  The underlying pool is
    created lazily on first use and reused across phases; call
    :meth:`close` (or use as a context manager) when selection ends.
    """

    def __init__(
        self,
        ctx: WorkerContext,
        *,
        workers: int = 0,
        executor: str = "process",
        mp_context: str | None = None,
    ) -> None:
        if executor not in _EXECUTOR_KINDS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {_EXECUTOR_KINDS}"
            )
        self._ctx = ctx
        self._workers = max(1, int(workers))
        self._kind = "serial" if self._workers <= 1 else executor
        self._mp_context = mp_context
        self._pool: Executor | None = None

    @property
    def kind(self) -> str:
        return self._kind

    def _ensure_pool(self) -> Executor | None:
        if self._kind == "serial":
            return None
        if self._pool is None:
            if self._kind == "process":
                ensure_pool_env()
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=_preferred_mp_context(self._mp_context),
                    initializer=_init_worker,
                    initargs=(self._ctx,),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
        return self._pool

    def stream(self, tasks: list[EvalTask | None]):
        """Yield ``(task, outcome)`` pairs in canonical task order.

        Live tasks are pipelined through the pool with a bounded
        in-flight window, so workers evaluate candidate *i+w* while the
        parent folds candidate *i*.  Closing the generator early (the
        selector does when a round completes) cancels not-yet-started
        work: the serial algorithm stops a round at its first completion,
        and a bounded window keeps the speculative overshoot past that
        point to at most the window size instead of the whole round.
        ``None`` tasks yield ``None`` outcomes in place.
        """
        if self._kind == "serial":
            for task in tasks:
                outcome = None if task is None else evaluate_task(task, self._ctx)
                yield task, outcome
            return
        live = iter([task for task in tasks if task is not None])
        pool = self._ensure_pool()
        futures: dict[int, object] = {}

        def submit_next() -> None:
            task = next(live, None)
            if task is None:
                return
            if self._kind == "thread":
                futures[task.position] = pool.submit(evaluate_task, task, self._ctx)
            else:
                futures[task.position] = pool.submit(evaluate_task, task)

        try:
            for _ in range(self._workers + 2):
                submit_next()
            for task in tasks:
                if task is None:
                    yield task, None
                    continue
                outcome = futures.pop(task.position).result()
                submit_next()
                yield task, outcome
        finally:
            # Early close: drop whatever had not started yet.  Already
            # running tasks finish on their own and are discarded; the
            # next phase's submissions simply queue behind them.
            for future in futures.values():
                future.cancel()

    def run(self, tasks: list[EvalTask | None]) -> list[EvalOutcome | None]:
        return [outcome for _, outcome in self.stream(tasks)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
