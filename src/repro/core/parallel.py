"""Worker plumbing for parallel configuration selection.

The :class:`~repro.core.selector.ParallelConfigurationSelector` fans one
selection phase's per-candidate evaluations over a pool.  Each worker
drives an **isolated** forked engine: it rebuilds the engine from a
picklable :class:`~repro.db.engine.EngineState` snapshot, runs
Algorithm 3 on a zero-based :class:`~repro.db.clock.RecordingClock`, and
ships back the resulting ``ConfigMeta`` fields plus the exact sequence
of clock advances.  The selector replays those advances onto the main
engine's clock in canonical candidate order, so the merged clock (and
with it every trace timestamp) is bit-identical to a serial run --
float addition order is preserved, not just float sums.

Three executors share this module's task protocol:

- ``process`` (default): ``ProcessPoolExecutor``; the context is shipped
  once per worker process through the pool initializer.  The ``fork``
  start method is preferred; under ``spawn`` the child processes import
  ``repro`` afresh, so :func:`ensure_pool_env` pins ``PYTHONPATH`` and
  ``PYTHONHASHSEED`` in ``os.environ`` before the pool is created.
- ``thread``: ``ThreadPoolExecutor``; workers share the parent's catalog
  object (and with it the shared analysis/plan caches).
- ``serial``: runs tasks inline, in order -- the degenerate pool used
  for ``workers <= 1`` and in equivalence tests.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import Configuration
from repro.core.evaluator import ConfigMeta, ConfigurationEvaluator
from repro.core.rounds import (
    ExecutionStrategy,
    SelectionState,
    TuningObserver,
)
from repro.db import engine as engine_module
from repro.db.clock import RecordingClock
from repro.db.engine import EngineState
from repro.errors import ConfigurationError
from repro.workloads.base import Query

_EXECUTOR_KINDS = ("process", "thread", "serial")


@dataclass(slots=True)
class WorkerContext:
    """Everything a worker needs to rebuild the evaluation environment.

    Shipped once per worker process via the pool initializer (pickled
    under ``spawn``, inherited under ``fork``); per-task payloads then
    only carry the small :class:`EvalTask` deltas.
    """

    engine_cls: type
    catalog: object
    hardware: object
    workload: tuple[Query, ...]
    evaluator_options: dict[str, object] = field(default_factory=dict)
    #: Snapshot of ``repro.db.engine.CACHES_ENABLED`` at selector start,
    #: so spawned workers mirror the parent's cache regime.
    caches_enabled: bool = True
    #: Mirrors the parent engine's ``realtime_factor`` onto workers, so
    #: latency-realistic benchmark runs wait in the pool, not the parent.
    realtime_factor: float = 0.0
    #: The parent engine's installed fault plan (picklable), so chaos
    #: faults fire identically on worker engines.
    fault_plan: object | None = None


@dataclass(frozen=True, slots=True)
class EvalTask:
    """One speculative ``Update`` call (Algorithm 2, lines 16-25)."""

    position: int
    config: Configuration
    #: Names of the configuration's not-yet-completed queries; workers
    #: re-materialize them from the context workload in workload order,
    #: matching the serial ``_pending`` ordering.
    pending: frozenset[str]
    timeout: float
    #: Predicted engine state (settings after the speculated settings
    #: threading of earlier candidates; base physical design).
    state: EngineState
    #: ``ConfigMeta`` start values, copied from the shared meta table.
    meta_time: float
    meta_complete: bool
    meta_index_time: float
    meta_completed: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class EvalOutcome:
    """The worker-side result of one :class:`EvalTask`."""

    position: int
    time: float
    is_complete: bool
    index_time: float
    completed: tuple[str, ...]
    #: Individual clock advances, in order, for bit-exact replay.
    advances: tuple[float, ...]
    #: Execution seconds of each completed query, in execution order.
    #: The merge replays Algorithm 3's ``remaining_time`` cascade over
    #: these to decide -- with the exact float operations the serial
    #: path would use -- whether a completed speculative run would also
    #: complete under a smaller actual timeout.
    executions: tuple[float, ...] = ()
    #: Quarantine fields mirrored from the worker-side ``ConfigMeta``.
    failed: bool = False
    failure: str = ""
    #: Whether the candidate's settings were actually applied (an
    #: inapplicable script fails validation *before* touching the
    #: engine; the fold must then leave the main engine untouched too).
    settings_applied: bool = True


# -- worker side -------------------------------------------------------------------

#: Per-process context installed by the pool initializer (process pools).
_PROCESS_CTX: WorkerContext | None = None

#: Persistent per-thread evaluation state: building an engine and
#: evaluator is much more expensive than restoring state, so each worker
#: thread/process keeps one pair alive across tasks.
_WORKER_STATE = threading.local()


def _init_worker(ctx: WorkerContext) -> None:
    global _PROCESS_CTX
    _PROCESS_CTX = ctx
    engine_module.CACHES_ENABLED = ctx.caches_enabled


def _worker_state(ctx: WorkerContext):
    entry = getattr(_WORKER_STATE, "entry", None)
    if entry is None or entry[0] is not ctx:
        engine = ctx.engine_cls(ctx.catalog, ctx.hardware)
        engine.realtime_factor = ctx.realtime_factor
        engine.fault_plan = ctx.fault_plan
        evaluator = ConfigurationEvaluator(engine, **ctx.evaluator_options)
        entry = (ctx, engine, evaluator)
        _WORKER_STATE.entry = entry
    return entry[1], entry[2]


def evaluate_task(task: EvalTask, ctx: WorkerContext | None = None) -> EvalOutcome:
    """Run one speculative evaluation on an isolated worker engine."""
    if ctx is None:
        ctx = _PROCESS_CTX
    if ctx is None:  # pragma: no cover - initializer always ran
        raise ConfigurationError("worker context was never initialized")
    engine, evaluator = _worker_state(ctx)
    clock = RecordingClock(0.0)
    engine.restore_state(task.state, clock=clock)
    pending = [query for query in ctx.workload if query.name in task.pending]
    meta = ConfigMeta(
        time=task.meta_time,
        is_complete=task.meta_complete,
        index_time=task.meta_index_time,
        completed_queries=set(task.meta_completed),
    )
    executions: list[float] = []
    raw_execute = type(engine).execute
    raw_execute_many = type(engine).execute_many
    raw_apply = type(engine).apply_config
    settings_applied: list[bool] = []

    def _logging_execute(query, timeout=None):
        result = raw_execute(engine, query, timeout=timeout)
        if result.complete:
            executions.append(result.execution_time)
        return result

    def _logging_execute_many(queries, timeout=None):
        # The batched evaluate path routes whole segments through
        # ``execute_many``; its ``times`` are exactly the completed
        # per-query execution seconds the scalar hook above would have
        # logged, in the same order.
        batch = raw_execute_many(engine, queries, timeout=timeout)
        executions.extend(float(value) for value in batch.times)
        return batch

    def _logging_apply(settings):
        result = raw_apply(engine, settings)
        settings_applied.append(True)
        return result

    engine.execute = _logging_execute
    engine.execute_many = _logging_execute_many
    engine.apply_config = _logging_apply
    try:
        evaluator.evaluate(task.config, pending, task.timeout, meta)
    finally:
        del engine.execute
        del engine.execute_many
        del engine.apply_config
    return EvalOutcome(
        position=task.position,
        time=meta.time,
        is_complete=meta.is_complete,
        index_time=meta.index_time,
        completed=tuple(sorted(meta.completed_queries)),
        advances=tuple(clock.advances),
        executions=tuple(executions),
        failed=meta.failed,
        failure=meta.failure,
        settings_applied=bool(settings_applied),
    )


# -- parent side -------------------------------------------------------------------


def ensure_pool_env() -> None:
    """Pin child-process environment before a process pool is created.

    Under the ``spawn`` start method worker processes re-import ``repro``
    from scratch, so the interpreter they run must (a) find the package
    -- ``PYTHONPATH`` gains the directory containing ``repro`` -- and
    (b) hash strings the same way every run -- ``PYTHONHASHSEED`` is
    pinned (to its current value, or 0 when unset/random).  Mutating
    ``os.environ`` is inherited by children; the parent's own hashing
    was fixed at startup and is unaffected.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
    hash_seed = os.environ.get("PYTHONHASHSEED", "")
    if not hash_seed or hash_seed == "random":
        os.environ["PYTHONHASHSEED"] = "0"


def preferred_mp_context(requested: str | None = None):
    """The multiprocessing context process pools should use.

    ``fork`` when available (shares the already-imported interpreter
    state: no re-import, no context pickling, much cheaper worker
    start-up), else ``spawn``.  Shared by the selection pool here, the
    batch-level ``tune_many(executor="process")`` pool, and the
    service's process workers.
    """
    import multiprocessing

    if requested is not None:
        return multiprocessing.get_context(requested)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: Backwards-compatible private alias (pre-PR-10 spelling).
_preferred_mp_context = preferred_mp_context


class TaskRunner:
    """Runs batches of :class:`EvalTask` on the configured executor.

    ``run`` preserves task order in its result list and maps skipped
    slots (``None`` tasks) to ``None`` outcomes.  The underlying pool is
    created lazily on first use and reused across phases; call
    :meth:`close` (or use as a context manager) when selection ends.
    """

    def __init__(
        self,
        ctx: WorkerContext,
        *,
        workers: int = 0,
        executor: str = "process",
        mp_context: str | None = None,
    ) -> None:
        if executor not in _EXECUTOR_KINDS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {_EXECUTOR_KINDS}"
            )
        self._ctx = ctx
        self._workers = max(1, int(workers))
        self._kind = "serial" if self._workers <= 1 else executor
        self._mp_context = mp_context
        self._pool: Executor | None = None

    @property
    def kind(self) -> str:
        return self._kind

    def _ensure_pool(self) -> Executor | None:
        if self._kind == "serial":
            return None
        if self._pool is None:
            if self._kind == "process":
                ensure_pool_env()
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=_preferred_mp_context(self._mp_context),
                    initializer=_init_worker,
                    initargs=(self._ctx,),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
        return self._pool

    def stream(self, tasks: list[EvalTask | None]):
        """Yield ``(task, outcome)`` pairs in canonical task order.

        Live tasks are pipelined through the pool with a bounded
        in-flight window, so workers evaluate candidate *i+w* while the
        parent folds candidate *i*.  Closing the generator early (the
        selector does when a round completes) cancels not-yet-started
        work: the serial algorithm stops a round at its first completion,
        and a bounded window keeps the speculative overshoot past that
        point to at most the window size instead of the whole round.
        ``None`` tasks yield ``None`` outcomes in place.
        """
        if self._kind == "serial":
            for task in tasks:
                outcome = None if task is None else evaluate_task(task, self._ctx)
                yield task, outcome
            return
        live = iter([task for task in tasks if task is not None])
        pool = self._ensure_pool()
        futures: dict[int, object] = {}

        def submit_next() -> None:
            task = next(live, None)
            if task is None:
                return
            if self._kind == "thread":
                futures[task.position] = pool.submit(evaluate_task, task, self._ctx)
            else:
                futures[task.position] = pool.submit(evaluate_task, task)

        try:
            for _ in range(self._workers + 2):
                submit_next()
            for task in tasks:
                if task is None:
                    yield task, None
                    continue
                outcome = futures.pop(task.position).result()
                submit_next()
                yield task, outcome
        finally:
            # Early close: drop whatever had not started yet.  Already
            # running tasks finish on their own and are discarded; the
            # next phase's submissions simply queue behind them.
            for future in futures.values():
                future.cancel()

    def run(self, tasks: list[EvalTask | None]) -> list[EvalOutcome | None]:
        return [outcome for _, outcome in self.stream(tasks)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the parallel execution strategy ------------------------------------------------


class ParallelExecution(ExecutionStrategy):
    """Algorithm 2 with per-phase candidate evaluations fanned over a pool.

    **Speculate / merge / recompute.**  Each phase -- one round of the
    main loop, or the final candidates pass -- first computes the
    canonical throughput order, then *speculates* every ``Update`` call
    in that order: for candidate *i* it predicts the engine state the
    serial algorithm would present (base settings merged with the
    coerced settings of candidates ``1..i-1``, the unchanged physical
    design -- evaluation is net-zero on indexes) and the effective
    timeout, and ships both to an isolated worker.  Workers run
    Algorithm 3 on forked engines with zero-based recording clocks.

    The *merge* folds outcomes back in canonical order.  A speculative
    outcome is folded only when it provably equals what a serial
    ``Update`` would have produced:

    - the predicted start settings match the live engine's settings
      (detects mispredicted settings threading, e.g. an earlier
      candidate that was skipped serially but speculated as run), and
    - the predicted timeout matches the actual one exactly, **or** the
      speculative run completed and replaying Algorithm 3's
      ``remaining_time`` cascade over its per-query execution times --
      the exact float subtractions and comparisons the serial path would
      perform -- shows every budget check still passing under the actual
      timeout (a completed run is step-for-step identical under any
      timeout its cascade fits).

    A fold applies the candidate's settings to the main engine without
    restart cost, then replays the worker's individual clock advances in
    order -- the restart advance is the first of them -- so clock floats
    accumulate in exactly the serial order.  Any outcome failing the
    checks is discarded and *recomputed* via the driver's serial
    ``update`` on the main engine.  During the geometric rounds the
    predictions are exact by construction (no candidate is complete
    before the first completion, so no ``Update`` is skipped and every
    timeout equals the round timeout); recomputes only arise in the
    final candidates pass when an early candidate improves ``best``.

    Results are **byte-identical** to :class:`SerialExecution` -- same
    ``SelectionResult`` floats, trace, and rounds for the same seed --
    which the equivalence tests and ``scripts/bench.py`` assert.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        executor: str = "process",
        mp_context: str | None = None,
    ) -> None:
        self._workers = max(1, int(workers))
        self._executor = executor
        self._mp_context = mp_context
        self._runner: TaskRunner | None = None

    def begin(self, driver, workload, state) -> None:
        super().begin(driver, workload, state)
        engine = driver.engine
        ctx = WorkerContext(
            engine_cls=type(engine),
            catalog=engine.catalog,
            hardware=engine.hardware,
            workload=tuple(workload),
            evaluator_options=driver.evaluator.worker_options(),
            caches_enabled=engine_module.CACHES_ENABLED,
            realtime_factor=engine.realtime_factor,
            fault_plan=engine.fault_plan,
        )
        self._runner = TaskRunner(
            ctx,
            workers=self._workers,
            executor=self._executor,
            mp_context=self._mp_context,
        )

    def finish(self) -> None:
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def run_round(self, ordered, offset, workload, state, observer):
        tasks = self._speculate(ordered, workload, state)
        stream = self._runner.stream(tasks)
        winner = None
        try:
            for position, (config, (task, outcome)) in enumerate(
                zip(ordered, stream), start=offset
            ):
                self._merge(
                    config, task, outcome, workload, state, observer, position
                )
                if state.meta[config.name].is_complete:
                    winner = config
                    break
        finally:
            # The serial algorithm stops a round at its first
            # completion; closing the stream cancels speculative work
            # past the break point.
            stream.close()
        return winner

    def run_final(self, ordered, offset, workload, state, observer) -> None:
        if ordered:
            # Evaluate the throughput leader inline on the live engine:
            # it is the likeliest candidate to improve ``best``, and
            # speculating the rest only *after* its result is folded
            # gives them near-exact timeout predictions -- without this,
            # every remaining candidate is speculated against the stale
            # pre-phase ``best`` and the pool burns its time on timeouts
            # the serial path never grants.
            state.stats["inline"] += 1
            self.driver.update(ordered[0], workload, state, observer, offset)
        rest = ordered[1:]
        tasks = self._speculate(rest, workload, state)
        for position, (config, (task, outcome)) in enumerate(
            zip(rest, self._runner.stream(tasks)), start=offset + 1
        ):
            self._merge(config, task, outcome, workload, state, observer, position)

    # -- speculation ----------------------------------------------------------------

    def _speculate(
        self,
        ordered: list[Configuration],
        workload: list[Query],
        state: SelectionState,
    ) -> list[EvalTask | None]:
        """Build one task per candidate the serial pass would evaluate.

        ``None`` marks candidates the serial pass is predicted to skip;
        those slots never reach the pool.
        """
        driver = self.driver
        base_state = driver.engine.capture_state()
        settings = dict(base_state.settings)
        tasks: list[EvalTask | None] = []
        for position, config in enumerate(ordered):
            config_meta = state.meta[config.name]
            pending = driver.pending(workload, config_meta)
            if config_meta.failed:
                tasks.append(None)
                continue
            if config_meta.is_complete and not pending:
                tasks.append(None)
                continue
            predicted_timeout = driver.effective_timeout(state, config_meta)
            if predicted_timeout is None:
                tasks.append(None)
                continue
            tasks.append(
                EvalTask(
                    position=position,
                    config=config,
                    pending=frozenset(query.name for query in pending),
                    timeout=predicted_timeout,
                    state=EngineState(
                        settings=tuple(sorted(settings.items())),
                        indexes=base_state.indexes,
                        clock=0.0,
                    ),
                    meta_time=config_meta.time,
                    meta_complete=config_meta.is_complete,
                    meta_index_time=config_meta.index_time,
                    meta_completed=tuple(sorted(config_meta.completed_queries)),
                )
            )
            # Thread the predicted settings: a run (not skipped) Update
            # leaves the candidate's coerced settings applied.
            settings.update(driver.engine.coerced_settings(config.settings))
        return tasks

    # -- merge ----------------------------------------------------------------------

    def _merge(
        self,
        config: Configuration,
        task: EvalTask | None,
        outcome: EvalOutcome | None,
        workload: list[Query],
        state: SelectionState,
        observer: TuningObserver,
        position: int,
    ) -> None:
        """Fold one speculative outcome, or recompute it serially."""
        driver = self.driver
        config_meta = state.meta[config.name]
        if config_meta.failed:
            state.stats["skipped"] += 1
            return
        if config_meta.is_complete and not driver.pending(workload, config_meta):
            state.stats["skipped"] += 1
            return
        actual_timeout = driver.effective_timeout(state, config_meta)
        if actual_timeout is None:
            state.stats["skipped"] += 1
            return

        if not self._fold_is_valid(task, outcome, actual_timeout):
            # Misprediction (an earlier candidate changed ``best`` or the
            # settings threading): fall back to the serial Update on the
            # live engine.
            state.stats["recomputed"] += 1
            driver.update(config, workload, state, observer, position)
            return
        state.stats["folded"] += 1

        # Mirror ``config.apply_settings`` minus the restart advance --
        # the worker recorded that advance, and replaying the recording
        # preserves the serial order of clock-float additions.  When the
        # script itself is inapplicable the serial apply raises before
        # mutating anything, so the fold leaves the settings untouched
        # too (the worker recorded the same failure and no advances).
        if outcome.settings_applied:
            driver.engine.set_many(config.settings)
        clock = driver.engine.clock
        for seconds in outcome.advances:
            clock.advance(seconds)

        config_meta.time = outcome.time
        config_meta.is_complete = outcome.is_complete
        config_meta.index_time = outcome.index_time
        config_meta.completed_queries = set(outcome.completed)
        config_meta.failed = outcome.failed
        config_meta.failure = outcome.failure

        driver.fold(config, config_meta, state, observer, position)

    def _fold_is_valid(
        self,
        task: EvalTask | None,
        outcome: EvalOutcome | None,
        actual_timeout: float,
    ) -> bool:
        if task is None or outcome is None:
            return False
        live_settings = tuple(sorted(self.driver.engine.config.items()))
        if task.state.settings != live_settings:
            return False
        if task.timeout == actual_timeout:
            return True
        if not outcome.is_complete:
            return False
        # The speculative run completed under the predicted timeout.  It
        # is step-for-step identical under the actual timeout iff every
        # per-query budget check still passes -- decided by replaying
        # Algorithm 3's ``remaining_time`` cascade with the *exact*
        # float operations ``evaluate``/``execute`` would perform.  (A
        # summed comparison is not enough: the serial cascade subtracts
        # sequentially, so at exact ties -- duplicate candidates make
        # ``best.time - meta.time`` hit the run length to the bit -- a
        # differently-associated sum can disagree with it by one ulp.)
        remaining = actual_timeout
        for seconds in outcome.executions:
            if remaining <= 0 or seconds > remaining:
                return False
            remaining -= seconds
        return True
