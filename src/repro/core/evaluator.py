"""Configuration evaluation (paper §5.1, Algorithm 3).

``ConfigurationEvaluator.evaluate`` runs one configuration's
not-yet-completed queries under a timeout:

- parameter settings are applied up front (a restart),
- indexes are created **lazily**, right before the first query that
  could use them, so a timeout never pays for indexes of queries that
  never run,
- queries are executed in the order chosen by the DP scheduler over
  index-dependency clusters (§5.3-5.4), minimizing expected index cost,
- indexes created here are implicitly dropped when evaluation ends
  (pre-existing indexes are left alone), and
- per-configuration metadata -- completed query time, completion flag,
  cumulative index time, completed query set -- is updated in place,
  exactly the ``ConfigMeta`` of the paper's Table 2.

Selection (Algorithm 2) calls ``evaluate`` for the same configurations
round after round while the pending-query set only shrinks, so the
expensive pure derivations -- query-index maps, index-creation-cost
maps, clustering plus the 2^n-state DP order -- are memoized, keyed by
``(configuration signature, engine state signature, pending queries)``.
A cache hit returns exactly what recomputation would: every input that
could change the result is part of the key, so the memoization is
bit-transparent (same seed => identical ``TuningResult``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache import MISS, active_cache
from repro.core.clustering import cluster_queries
from repro.core.config import Configuration
from repro.core.scheduler import MAX_DP_INPUT, compute_order_dp, greedy_order
from repro.db import planner as planner_module
from repro.db.engine import DatabaseEngine
from repro.db.indexes import Index
from repro.db.resources import ResourceBudget
from repro.errors import (
    BudgetInfeasibleError,
    ConfigurationError,
    ConfigurationRejectedError,
    EngineFaultError,
)
from repro.workloads.base import Query, workload_identity

#: Safety valve: drop memoized derivations if a pathological workload
#: would otherwise grow them without bound.
_MAX_CACHE_ENTRIES = 4096


@dataclass(slots=True)
class ConfigMeta:
    """Per-configuration bookkeeping (paper Table 2)."""

    time: float = 0.0
    is_complete: bool = False
    index_time: float = 0.0
    completed_queries: set[str] = field(default_factory=set)
    #: Quarantine flag: evaluation hit an engine fault or the script
    #: proved inapplicable.  A failed configuration is excluded from all
    #: later selection rounds (paper §4: invalid configurations are
    #: discarded, not propagated).  Partial progress -- completed
    #: queries and their time -- is preserved for reporting.
    failed: bool = False
    #: Human-readable failure cause, carrying the injected fault's
    #: ``(seed, site, key)`` replay label when chaos testing.
    failure: str = ""

    def throughput(self) -> float:
        """Completed queries per second of completed-query time."""
        if self.time <= 0.0:
            return 0.0
        return len(self.completed_queries) / self.time

    def reject_error(self) -> ConfigurationRejectedError:
        """The typed error describing why this configuration failed."""
        return ConfigurationRejectedError(self.failure or "configuration failed")


class ConfigurationEvaluator:
    """Evaluates candidate configurations on the live engine."""

    def __init__(
        self,
        engine: DatabaseEngine,
        *,
        use_scheduler: bool = True,
        lazy_indexes: bool = True,
        max_dp_input: int = MAX_DP_INPUT,
        cluster_seed: int = 0,
        enable_caches: bool = True,
        budget: ResourceBudget | None = None,
    ) -> None:
        self._engine = engine
        self._use_scheduler = use_scheduler
        self._lazy_indexes = lazy_indexes
        self._max_dp_input = max_dp_input
        self._cluster_seed = cluster_seed
        self._enable_caches = enable_caches
        self._budget = budget
        # query-name tuple + config signature -> {name: relevant indexes}
        self._index_map_cache: dict[tuple, dict[str, frozenset]] = {}
        # config signature + engine signature -> {index: creation seconds}
        self._index_cost_cache: dict[tuple, dict[Index, float]] = {}
        # query-name tuple + config signature + engine signature -> order
        self._order_cache: dict[tuple, list[str]] = {}

    def worker_options(self) -> dict[str, object]:
        """Constructor options mirroring this evaluator onto a worker engine.

        The parallel selector builds one evaluator per pool worker; these
        options make the worker evaluator behaviorally identical (same
        scheduler/laziness/clustering regime, same cache policy).
        """
        return {
            "use_scheduler": self._use_scheduler,
            "lazy_indexes": self._lazy_indexes,
            "max_dp_input": self._max_dp_input,
            "cluster_seed": self._cluster_seed,
            "enable_caches": self._enable_caches,
            "budget": self._budget,
        }

    # -- resource feasibility ---------------------------------------------------------

    def _check_budget(self, config: Configuration) -> None:
        """Reject a candidate whose footprint exceeds the resource budget.

        Raises :class:`BudgetInfeasibleError` -- a
        :class:`ConfigurationError` -- so infeasible candidates take the
        same quarantine path as inapplicable scripts.  The footprint is a
        pure function of (engine class, hardware, catalog, settings,
        indexes), and the check runs *before* any settings are applied,
        so serial and worker evaluations fail identically with zero
        clock advance.
        """
        if self._budget is None:
            return
        footprint = self._engine.resource_footprint(
            config.settings, config.indexes
        )
        violation = self._budget.violation(footprint)
        if violation:
            raise BudgetInfeasibleError(
                f"configuration {config.name!r} infeasible under budget: "
                f"{violation}"
            )

    # -- cache keys -----------------------------------------------------------------

    @staticmethod
    def _config_key(config: Configuration) -> tuple:
        """Cache identity of a configuration (see ``content_key``)."""
        return config.content_key()

    @staticmethod
    def _evict_if_full(cache: dict) -> None:
        """Deterministic oldest-first partial eviction.

        Dicts preserve insertion order, so dropping from the front
        evicts the longest-resident derivations while the configurations
        of the current selection -- inserted most recently -- keep
        hitting.  Clearing wholesale here (the previous behaviour) made
        one pathological config stream evict every warm entry at once.
        """
        while len(cache) >= _MAX_CACHE_ENTRIES:
            del cache[next(iter(cache))]

    # -- index relevance ------------------------------------------------------------

    def query_index_map(
        self, queries: list[Query], config: Configuration
    ) -> dict[str, frozenset]:
        """Map each query name to the config indexes it could use.

        An index is potentially relevant when its indexed columns
        overlap the columns in the query's predicates (paper §5.1).
        Memoized per (pending queries, configuration content): the
        relevance relation reads only the analyzer facts and the config
        index list, neither of which changes within a selection.
        """
        key = None
        if self._enable_caches:
            key = (
                workload_identity(queries).names,
                self._config_key(config),
            )
            cached = self._index_map_cache.get(key)
            if cached is not None:
                return cached

        result: dict[str, frozenset] = {}
        for query in queries:
            predicate_columns = {
                predicate.qualified_column for predicate in query.info.filters
            }
            for condition in query.info.join_conditions:
                predicate_columns.update(condition.columns)
            relevant = frozenset(
                index
                for index in config.indexes
                if any(
                    column in predicate_columns
                    for column in index.qualified_columns()
                )
            )
            result[query.name] = relevant

        if key is not None:
            self._evict_if_full(self._index_map_cache)
            self._index_map_cache[key] = result
        return result

    # -- index creation costs ---------------------------------------------------------

    def index_cost_map(self, config: Configuration) -> dict[Index, float]:
        """Estimated creation seconds per recommended index.

        Memoized per (configuration content, engine state): the engine
        signature covers both the knob settings (which size the
        maintenance memory) and the current physical design (already
        present indexes cost zero).
        """
        key = None
        if self._enable_caches:
            key = (self._config_key(config), self._engine.config_signature)
            cached = self._index_cost_cache.get(key)
            if cached is not None:
                return cached
        result = {
            index: self._engine.index_creation_seconds(index)
            for index in config.indexes
        }
        if key is not None:
            self._evict_if_full(self._index_cost_cache)
            self._index_cost_cache[key] = result
        return result

    # -- ordering -----------------------------------------------------------------------

    def plan_order(
        self, queries: list[Query], config: Configuration
    ) -> list[Query]:
        """Choose the execution order (Algorithm 4 over clusters).

        The computed order is memoized keyed by (pending queries,
        configuration content, engine state signature); repeated
        ``evaluate`` calls across selection rounds rerun clustering and
        the exponential DP only when an input actually changed.
        """
        if not self._use_scheduler or len(queries) <= 1:
            return list(queries)

        key = None
        if self._enable_caches:
            key = (
                workload_identity(queries).names,
                self._config_key(config),
                self._engine.config_signature,
            )
            cached = self._order_cache.get(key)
            if cached is not None:
                by_name = {query.name: query for query in queries}
                return [by_name[name] for name in cached]

        # Persistent tier: the clustering + DP order is the single most
        # expensive pure derivation in a tune, and it is fully
        # determined by content the key below spells out.
        persistent = active_cache() if key is not None else None
        material = None
        if persistent is not None:
            engine = self._engine
            material = (
                engine.system,
                (
                    engine.hardware.memory_gb,
                    engine.hardware.cores,
                    engine.hardware.disk_mb_per_s,
                ),
                engine.catalog.content_fingerprint(),
                engine.content_key(),
                self._config_key(config),
                workload_identity(queries).content,
                self._cluster_seed,
                self._max_dp_input,
            )
            value = persistent.fetch("order", material)
            if value is not MISS:
                names = list(value)
                self._evict_if_full(self._order_cache)
                self._order_cache[key] = names
                by_name = {query.name: query for query in queries}
                return [by_name[name] for name in names]

        index_map = self.query_index_map(queries, config)
        index_cost = self.index_cost_map(config)

        clusters = cluster_queries(
            [query.name for query in queries],
            index_map,
            max_clusters=self._max_dp_input,
            seed=self._cluster_seed,
        )
        cluster_handles = list(range(len(clusters)))
        cluster_index_map = {
            handle: clusters[handle].indexes for handle in cluster_handles
        }
        if len(cluster_handles) <= self._max_dp_input:
            ordered_handles = compute_order_dp(
                cluster_handles, cluster_index_map, index_cost
            )
        else:  # pragma: no cover - cluster_queries respects the cap
            ordered_handles = greedy_order(
                cluster_handles, cluster_index_map, index_cost
            )

        by_name = {query.name: query for query in queries}
        ordered: list[Query] = []
        for handle in ordered_handles:
            for name in clusters[handle].queries:
                ordered.append(by_name[name])

        if key is not None:
            self._evict_if_full(self._order_cache)
            names = [query.name for query in ordered]
            self._order_cache[key] = names
            if persistent is not None:
                persistent.store("order", material, tuple(names))
        return ordered

    # -- evaluation (Algorithm 3) ----------------------------------------------------------

    def evaluate(
        self,
        config: Configuration,
        queries: list[Query],
        timeout: float,
        meta: ConfigMeta,
    ) -> None:
        """Run pending queries for ``config`` under ``timeout`` seconds.

        Advances the engine clock by reconfiguration, index creation and
        query execution time; updates ``meta`` in place.

        An :class:`EngineFaultError` (query crash, OOM kill, interrupted
        index build) or an inapplicable script quarantines the
        configuration: ``meta.failed`` is set and the fault recorded,
        while partial progress -- queries completed *before* the fault
        and their times -- is preserved, so selection never re-runs them
        (Algorithm 2's resumability).  The error never propagates.

        Two implementations share this contract bit for bit: the
        batched path consumes whole index-stable segments through
        ``engine.execute_many``; the scalar per-query loop is the
        retained reference, selected by flipping
        ``repro.db.planner.VECTORIZED_ENABLED`` off (the same switch
        discipline as the vectorized planner, and what
        ``scripts/bench.py`` reference mode does).
        """
        if meta.failed:
            # Quarantined configurations are never re-evaluated.
            return
        if planner_module.VECTORIZED_ENABLED:
            self._evaluate_batched(config, queries, timeout, meta)
        else:
            self._evaluate_scalar(config, queries, timeout, meta)

    def _evaluate_batched(
        self,
        config: Configuration,
        queries: list[Query],
        timeout: float,
        meta: ConfigMeta,
    ) -> None:
        """Segment-batched Algorithm 3 (the production fast path).

        The query order decomposes into *segments*: maximal runs whose
        queries need no new lazy index, so the engine's (settings,
        index set) signature -- and with it every plan and noise draw --
        is constant across the run.  Each segment executes in one
        ``execute_many`` call; ``ConfigMeta`` is updated in bulk via the
        same ``np.cumsum`` left-to-right addition chain the scalar
        ``meta.time += s`` loop performs, so the result is bit-identical
        to :meth:`_evaluate_scalar`.
        """
        engine = self._engine
        remaining_time = timeout
        created_here: list[Index] = []
        preexisting = {index.key for index in engine.indexes}

        # One consolidated realtime wait per evaluation (no-op in pure
        # simulation): per-operation microsleeps would pay scheduler
        # wake-up latency dozens of times per Update.
        with engine.deferred_realtime():
            try:
                self._check_budget(config)
                config.apply_settings(engine)
                meta.is_complete = True

                index_map = self.query_index_map(queries, config)
                ordered = self.plan_order(queries, config)

                if not self._lazy_indexes:
                    # Ablation: build every recommended index up front.
                    for index in config.indexes:
                        if index.key not in preexisting:
                            meta.index_time += engine.create_index(index)
                            created_here.append(index)

                position = 0
                total = len(ordered)
                # With no relevant indexes anywhere the lazy-creation
                # scan and the boundary scan are both no-ops: the whole
                # order is one segment.
                no_index_work = not any(index_map.values())
                while position < total:
                    if self._lazy_indexes and not no_index_work:
                        for index in sorted(
                            index_map[ordered[position].name], key=str
                        ):
                            if index.key in preexisting or engine.has_index(index):
                                continue
                            meta.index_time += engine.create_index(index)
                            created_here.append(index)

                    end = total if no_index_work else self._segment_end(
                        ordered, position, index_map, preexisting
                    )
                    batch = engine.execute_many(
                        ordered[position:end], timeout=remaining_time
                    )
                    if batch.completed:
                        meta.time = float(
                            np.cumsum(
                                np.concatenate(((meta.time,), batch.times))
                            )[-1]
                        )
                        for query in ordered[position : position + batch.completed]:
                            meta.completed_queries.add(query.name)
                    remaining_time = batch.remaining
                    if batch.fault is not None:
                        # The completed prefix is banked above, exactly
                        # like the scalar loop before the fault raised.
                        raise batch.fault
                    if not batch.complete:
                        meta.is_complete = False
                        break
                    position = end
            except (EngineFaultError, ConfigurationError) as failure:
                meta.is_complete = False
                meta.failed = True
                meta.failure = str(failure)
            finally:
                # Indexes created by this evaluation are implicitly dropped so
                # other configurations start from a clean slate (§5.1).
                for index in created_here:
                    engine.drop_index(index)

    def _evaluate_scalar(
        self,
        config: Configuration,
        queries: list[Query],
        timeout: float,
        meta: ConfigMeta,
    ) -> None:
        """The retained per-query reference loop (Algorithm 3 verbatim)."""
        engine = self._engine
        remaining_time = timeout
        created_here: list[Index] = []
        preexisting = {index.key for index in engine.indexes}

        with engine.deferred_realtime():
            try:
                self._check_budget(config)
                config.apply_settings(engine)
                meta.is_complete = True

                index_map = self.query_index_map(queries, config)
                ordered = self.plan_order(queries, config)

                if not self._lazy_indexes:
                    # Ablation: build every recommended index up front.
                    for index in config.indexes:
                        if index.key not in preexisting:
                            meta.index_time += engine.create_index(index)
                            created_here.append(index)

                batch_end = 0
                for position, query in enumerate(ordered):
                    if self._lazy_indexes:
                        for index in sorted(index_map[query.name], key=str):
                            if index.key in preexisting or engine.has_index(index):
                                continue
                            meta.index_time += engine.create_index(index)
                            created_here.append(index)

                    if planner_module.VECTORIZED_ENABLED and position >= batch_end:
                        batch_end = self._plan_ahead(
                            ordered, position, index_map, preexisting
                        )

                    result = engine.execute(query, timeout=remaining_time)
                    if not result.complete:
                        meta.is_complete = False
                        break
                    remaining_time -= result.execution_time
                    meta.time += result.execution_time
                    meta.completed_queries.add(query.name)
            except (EngineFaultError, ConfigurationError) as failure:
                meta.is_complete = False
                meta.failed = True
                meta.failure = str(failure)
            finally:
                # Indexes created by this evaluation are implicitly dropped so
                # other configurations start from a clean slate (§5.1).
                for index in created_here:
                    engine.drop_index(index)

    def _segment_end(
        self,
        ordered: list[Query],
        position: int,
        index_map: dict[str, frozenset],
        preexisting: set,
    ) -> int:
        """Exclusive end of the index-stable segment starting at ``position``.

        Called *after* the indexes for ``ordered[position]`` exist, so
        the scan extends exactly to the next query whose relevant
        indexes include one not yet built -- the point where the engine
        signature would change.  Without lazy indexes every index is
        built up front and the whole order is one segment.
        """
        engine = self._engine
        end = position + 1
        if self._lazy_indexes:
            while end < len(ordered):
                needs_index = any(
                    index.key not in preexisting and not engine.has_index(index)
                    for index in index_map[ordered[end].name]
                )
                if needs_index:
                    break
                end += 1
        else:
            end = len(ordered)
        return end

    def _plan_ahead(
        self,
        ordered: list[Query],
        position: int,
        index_map: dict[str, frozenset],
        preexisting: set,
    ) -> int:
        """Warm the plan cache for the upcoming index-stable query run.

        Plans depend on the engine's (settings, index set) signature,
        which only changes at lazy index creations, so the run of
        queries from ``position`` up to the next query needing a new
        index can be costed in one vectorized ``plan_many`` batch.
        Planning is a pure derivation -- no clock advance, no fault
        sites -- so warming ahead of queries that may later time out is
        only wall-clock work, never a behaviour change.  Returns the
        exclusive end of the warmed segment.
        """
        end = self._segment_end(ordered, position, index_map, preexisting)
        self._engine.plan_many(ordered[position:end])
        return end
