"""Configuration evaluation (paper §5.1, Algorithm 3).

``ConfigurationEvaluator.evaluate`` runs one configuration's
not-yet-completed queries under a timeout:

- parameter settings are applied up front (a restart),
- indexes are created **lazily**, right before the first query that
  could use them, so a timeout never pays for indexes of queries that
  never run,
- queries are executed in the order chosen by the DP scheduler over
  index-dependency clusters (§5.3-5.4), minimizing expected index cost,
- indexes created here are implicitly dropped when evaluation ends
  (pre-existing indexes are left alone), and
- per-configuration metadata -- completed query time, completion flag,
  cumulative index time, completed query set -- is updated in place,
  exactly the ``ConfigMeta`` of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clustering import cluster_queries
from repro.core.config import Configuration
from repro.core.scheduler import MAX_DP_INPUT, compute_order_dp, greedy_order
from repro.db.engine import DatabaseEngine
from repro.db.indexes import Index
from repro.workloads.base import Query


@dataclass(slots=True)
class ConfigMeta:
    """Per-configuration bookkeeping (paper Table 2)."""

    time: float = 0.0
    is_complete: bool = False
    index_time: float = 0.0
    completed_queries: set[str] = field(default_factory=set)

    def throughput(self) -> float:
        """Completed queries per second of completed-query time."""
        if self.time <= 0.0:
            return 0.0
        return len(self.completed_queries) / self.time


class ConfigurationEvaluator:
    """Evaluates candidate configurations on the live engine."""

    def __init__(
        self,
        engine: DatabaseEngine,
        *,
        use_scheduler: bool = True,
        lazy_indexes: bool = True,
        max_dp_input: int = MAX_DP_INPUT,
        cluster_seed: int = 0,
    ) -> None:
        self._engine = engine
        self._use_scheduler = use_scheduler
        self._lazy_indexes = lazy_indexes
        self._max_dp_input = max_dp_input
        self._cluster_seed = cluster_seed

    # -- index relevance ------------------------------------------------------------

    def query_index_map(
        self, queries: list[Query], config: Configuration
    ) -> dict[str, frozenset]:
        """Map each query name to the config indexes it could use.

        An index is potentially relevant when its indexed columns
        overlap the columns in the query's predicates (paper §5.1).
        """
        result: dict[str, frozenset] = {}
        for query in queries:
            predicate_columns = {
                predicate.qualified_column for predicate in query.info.filters
            }
            for condition in query.info.join_conditions:
                predicate_columns.update(condition.columns)
            relevant = frozenset(
                index
                for index in config.indexes
                if any(
                    column in predicate_columns
                    for column in index.qualified_columns()
                )
            )
            result[query.name] = relevant
        return result

    # -- ordering -----------------------------------------------------------------------

    def plan_order(
        self, queries: list[Query], config: Configuration
    ) -> list[Query]:
        """Choose the execution order (Algorithm 4 over clusters)."""
        if not self._use_scheduler or len(queries) <= 1:
            return list(queries)

        index_map = self.query_index_map(queries, config)
        index_cost = {
            index: self._engine.index_creation_seconds(index)
            for index in config.indexes
        }

        clusters = cluster_queries(
            [query.name for query in queries],
            index_map,
            max_clusters=self._max_dp_input,
            seed=self._cluster_seed,
        )
        cluster_handles = list(range(len(clusters)))
        cluster_index_map = {
            handle: clusters[handle].indexes for handle in cluster_handles
        }
        if len(cluster_handles) <= self._max_dp_input:
            ordered_handles = compute_order_dp(
                cluster_handles, cluster_index_map, index_cost
            )
        else:  # pragma: no cover - cluster_queries respects the cap
            ordered_handles = greedy_order(
                cluster_handles, cluster_index_map, index_cost
            )

        by_name = {query.name: query for query in queries}
        ordered: list[Query] = []
        for handle in ordered_handles:
            for name in clusters[handle].queries:
                ordered.append(by_name[name])
        return ordered

    # -- evaluation (Algorithm 3) ----------------------------------------------------------

    def evaluate(
        self,
        config: Configuration,
        queries: list[Query],
        timeout: float,
        meta: ConfigMeta,
    ) -> None:
        """Run pending queries for ``config`` under ``timeout`` seconds.

        Advances the engine clock by reconfiguration, index creation and
        query execution time; updates ``meta`` in place.
        """
        engine = self._engine
        remaining_time = timeout
        created_here: list[Index] = []
        preexisting = {index.key for index in engine.indexes}

        config.apply_settings(engine)
        meta.is_complete = True

        index_map = self.query_index_map(queries, config)
        ordered = self.plan_order(queries, config)

        if not self._lazy_indexes:
            # Ablation: build every recommended index up front.
            for index in config.indexes:
                if index.key not in preexisting:
                    meta.index_time += engine.create_index(index)
                    created_here.append(index)

        try:
            for query in ordered:
                if self._lazy_indexes:
                    for index in sorted(index_map[query.name], key=str):
                        if index.key in preexisting or engine.has_index(index):
                            continue
                        meta.index_time += engine.create_index(index)
                        created_here.append(index)

                result = engine.execute(query, timeout=remaining_time)
                if not result.complete:
                    meta.is_complete = False
                    break
                remaining_time -= result.execution_time
                meta.time += result.execution_time
                meta.completed_queries.add(query.name)
        finally:
            # Indexes created by this evaluation are implicitly dropped so
            # other configurations start from a clean slate (§5.1).
            for index in created_here:
                engine.drop_index(index)
