"""Stable, content-addressed cache keys.

Every persistent artifact is addressed by a SHA-256 digest of a
*canonical rendering* of its exact inputs.  The rendering must be
stable across processes, interpreter hash seeds, and platforms, so it
is built from ``repr`` of primitives plus explicit, sorted composite
forms -- never from ``hash()`` or dict iteration order.

Key material is ordinary Python data (strings, numbers, tuples, dicts,
...).  Anything the renderer does not recognise raises ``TypeError``
loudly: a silently lossy key is a correctness bug, not a cache miss.
"""

from __future__ import annotations

import hashlib
from typing import Any

#: Format version for both the key address space and the on-disk entry
#: layout.  Bumping it retires every existing entry at once (old files
#: live under a different ``v<N>/`` directory and old digests can never
#: collide with current ones) -- the same discipline as
#: ``session/codec.py``'s ``CODEC_VERSION``.
CACHE_FORMAT_VERSION = 1


def stable_key(value: Any) -> str:
    """Render ``value`` as a canonical, process-independent string."""
    if value is None or isinstance(value, (bool, int, float)):
        # repr() of floats is exact (shortest round-trip repr), so two
        # floats render identically iff they are the same double.
        return repr(value)
    if isinstance(value, str):
        return "s:" + repr(value)
    if isinstance(value, bytes):
        return "b:" + value.hex()
    if isinstance(value, (tuple, list)):
        inner = ",".join(stable_key(item) for item in value)
        return f"[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(stable_key(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{stable_key(key)}=>{stable_key(item)}"
            for key, item in sorted(
                value.items(), key=lambda pair: stable_key(pair[0])
            )
        )
        return f"{{d:{inner}}}"
    raise TypeError(f"cannot build a stable cache key from {type(value)!r}")


def digest_key(kind: str, material: Any) -> str:
    """SHA-256 hex digest addressing one artifact of ``kind``.

    The cache format version is folded into every digest so a format
    bump invalidates the whole address space at once.
    """
    rendered = f"v{CACHE_FORMAT_VERSION}|{kind}|{stable_key(material)}"
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
